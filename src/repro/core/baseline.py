"""The Baseline approach (§3.2).

Baseline represents a set of models by exactly three kinds of data —
metadata, model architecture, and parameters — and addresses O1
(redundant model data) and O3 (write overhead):

* metadata and architecture are saved **once per set** (they are shared),
* the parameters of all models are concatenated, in model order, into a
  **single binary artifact** (raw float32, no per-model framing), and
* the whole save is one document write plus one file write, regardless
  of the number of models.

Recovery reads the descriptor document (which pins the parameter schema)
and slices each model's parameters out of the artifact sequentially.

The module also exposes :func:`write_full_set` / :func:`read_full_set`,
the "Baseline logic" that the Update and Provenance approaches reuse for
their initial (and snapshot) saves, exactly as the paper describes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

import numpy as np

from repro.architectures.registry import get_architecture
from repro.core.approach import SETS_COLLECTION, SaveApproach, SaveContext
from repro.core.model_set import ModelSet
from repro.core.parallel import parallel_map
from repro.core.save_info import SetMetadata, UpdateInfo
from repro.errors import RecoveryError
from repro.nn.serialization import (
    StateSchema,
    bytes_to_parameters,
    parameters_to_bytes,
)
from repro.observability import trace as _trace
from repro.storage.hashing import hash_bytes


def write_full_set(
    context: SaveContext,
    model_set: ModelSet,
    set_id: str,
    doc_type: str,
    metadata: SetMetadata | None,
    extra_fields: dict[str, Any] | None = None,
) -> str:
    """Persist a full set representation (Baseline's save logic).

    Writes one parameter artifact (all models concatenated) and one
    descriptor document.  ``extra_fields`` lets callers (Update's initial
    save) piggyback additional per-set data onto the same document.
    """
    metadata = metadata if metadata is not None else SetMetadata()
    # Per-model serialization is independent, so it runs on the context's
    # worker lanes; concatenation order is model order either way, and the
    # put is striped across the same lanes.
    if _trace.active():

        def serialize_one(indexed):
            index, state = indexed
            with _trace.span("model", key=index, kind="serialize"):
                return parameters_to_bytes(state)

        with _trace.span("serialize", kind="serialize"):
            blobs = parallel_map(
                serialize_one, list(enumerate(model_set.states)), context.workers
            )
    else:
        blobs = parallel_map(parameters_to_bytes, model_set.states, context.workers)
    payload = b"".join(blobs)
    with _trace.span("store-put", kind="store-write", artifact=f"{set_id}-params"):
        params_artifact = context.file_store.put(
            payload,
            artifact_id=f"{set_id}-params",
            category="parameters",
            workers=context.workers,
        )
    spec = get_architecture(model_set.architecture)
    document: dict[str, Any] = {
        "type": doc_type,
        "architecture": model_set.architecture,
        "architecture_code": spec.source_code,
        "num_models": len(model_set),
        "schema": model_set.schema.to_json(),
        "params_artifact": params_artifact,
        "metadata": metadata.to_json(),
    }
    if extra_fields:
        document.update(extra_fields)
    with _trace.span("metadata", kind="metadata"):
        context.document_store.insert(SETS_COLLECTION, document, doc_id=set_id)
    return set_id


def write_full_set_streaming(
    context: SaveContext,
    states,
    architecture: str,
    num_models: int,
    set_id: str,
    doc_type: str,
    metadata: SetMetadata | None,
    extra_fields: dict[str, Any] | None = None,
    per_state=None,
) -> str:
    """Streaming variant of :func:`write_full_set`.

    ``states`` is any iterable of parameter dictionaries; models are
    appended to the parameter artifact one at a time, so peak memory is
    one model, not the whole set.  ``per_state(index, state)`` lets a
    caller piggyback per-model work on the single pass (the Update
    approach hashes each model here).  The declared ``num_models`` is
    validated against the iterable's actual length.
    """
    from repro.errors import ArchitectureMismatchError

    metadata = metadata if metadata is not None else SetMetadata()
    schema: StateSchema | None = None
    count = 0
    with context.file_store.open_writer(
        f"{set_id}-params", category="parameters", workers=context.workers
    ) as writer:
        for state in states:
            if schema is None:
                schema = StateSchema.from_json(
                    StateSchema.from_state_dict(state).to_json()
                )
            else:
                entries = tuple(
                    (name, tuple(arr.shape)) for name, arr in state.items()
                )
                if entries != schema.entries:
                    raise ArchitectureMismatchError(
                        f"model {count} does not match the set schema"
                    )
            with _trace.span("model", key=count, kind="serialize"):
                writer.write(parameters_to_bytes(state))
                if per_state is not None:
                    per_state(count, state)
            count += 1
        if schema is None or count != num_models:
            writer.abort()
            raise ValueError(
                f"declared num_models={num_models} but the iterable yielded "
                f"{count} models"
            )
        with _trace.span("store-put", kind="store-write", artifact=f"{set_id}-params"):
            params_artifact = writer.close()

    spec = get_architecture(architecture)
    document: dict[str, Any] = {
        "type": doc_type,
        "architecture": architecture,
        "architecture_code": spec.source_code,
        "num_models": num_models,
        "schema": schema.to_json(),
        "params_artifact": params_artifact,
        "metadata": metadata.to_json(),
    }
    if extra_fields:
        document.update(extra_fields)
    with _trace.span("metadata", kind="metadata"):
        context.document_store.insert(SETS_COLLECTION, document, doc_id=set_id)
    return set_id


def read_single_model(
    context: SaveContext, document: dict, set_id: str, model_index: int
):
    """Read one model's parameters out of a full-set artifact.

    Uses a byte-range read: one model of a 5000-model FFNN-48 set costs
    a ~20 KB read instead of the ~100 MB full artifact.
    """
    num_models = int(document["num_models"])
    if not 0 <= model_index < num_models:
        raise IndexError(
            f"model index {model_index} out of range for set {set_id!r} "
            f"({num_models} models)"
        )
    schema = StateSchema.from_json(document["schema"])
    with _trace.span(
        "store-fetch", kind="store-read", artifact=document["params_artifact"]
    ):
        raw = context.file_store.get_range(
            document["params_artifact"],
            offset=model_index * schema.num_bytes,
            length=schema.num_bytes,
        )
    with _trace.span("decode", kind="decode"):
        return bytes_to_parameters(raw, schema)


def read_full_set(context: SaveContext, document: dict, set_id: str) -> ModelSet:
    """Reconstruct a set saved by :func:`write_full_set`."""
    schema = StateSchema.from_json(document["schema"])
    num_models = int(document["num_models"])
    with _trace.span(
        "store-fetch", kind="store-read", artifact=document["params_artifact"]
    ):
        payload = context.file_store.get(
            document["params_artifact"], workers=context.workers
        )
    expected = num_models * schema.num_bytes
    if len(payload) != expected:
        raise RecoveryError(
            f"set {set_id!r}: parameter artifact has {len(payload)} bytes, "
            f"expected {expected}"
        )

    def decode_one(index: int):
        return bytes_to_parameters(payload, schema, offset=index * schema.num_bytes)

    if _trace.active():

        def decode_traced(index: int):
            with _trace.span("model", key=index, kind="decode"):
                return decode_one(index)

        with _trace.span("decode", kind="decode"):
            states = parallel_map(decode_traced, range(num_models), context.workers)
    else:
        states = parallel_map(decode_one, range(num_models), context.workers)
    return ModelSet(str(document["architecture"]), states)


# ---------------------------------------------------------------------------
# content-addressed (deduplicated) set representation
# ---------------------------------------------------------------------------

def _layer_bytes(array: np.ndarray, dtype: str) -> bytes:
    """One layer tensor's serialized chunk bytes (the dedup unit)."""
    values = np.asarray(array, dtype=np.float32)
    if dtype == "float16":
        values = values.astype(np.float16)
    return values.tobytes()


def _layer_from_bytes(raw: bytes, shape: "tuple[int, ...]", dtype: str) -> np.ndarray:
    size = int(np.prod(shape)) if shape else 1
    if dtype == "float16":
        values = np.frombuffer(raw, dtype=np.float16, count=size)
        return values.astype(np.float32).reshape(shape)
    return np.frombuffer(raw, dtype=np.float32, count=size).reshape(shape).copy()


def write_chunked_set(
    context: SaveContext,
    states,
    architecture: str,
    num_models: int,
    set_id: str,
    doc_type: str,
    metadata: SetMetadata | None,
    extra_fields: dict[str, Any] | None = None,
    digests: "list[list[str]] | None" = None,
    dtype: str = "float32",
    store_digests_in_doc: bool = True,
) -> "list[list[str]]":
    """Persist a set through the content-addressed chunk layer.

    Every layer tensor becomes one chunk keyed by the SHA-256 of its
    serialized bytes; chunks already held by the context's
    :class:`~repro.storage.chunk_index.ChunkStore` — identical layers
    across the models of this set, across derivation chains, or across
    unrelated sets — are elided, charging only metadata cost.  ``states``
    is any iterable of parameter dictionaries, consumed in a single pass
    with bounded memory.  ``digests`` supplies precomputed full-length
    per-layer hashes (the Update hash pass) so the bytes are never hashed
    twice; when omitted the digests are computed here, once.  Returns the
    digest matrix actually used, one row per model.
    """
    from repro.errors import ArchitectureMismatchError

    metadata = metadata if metadata is not None else SetMetadata()
    chunk_store = context.chunk_store()
    schema: StateSchema | None = None
    matrix: list[list[str]] = []
    count = 0
    with chunk_store.open_ingest(
        f"{set_id}-chunks", category="parameters", workers=context.workers
    ) as session:
        for state in states:
            if schema is None:
                schema = StateSchema.from_json(
                    StateSchema.from_state_dict(state).to_json()
                )
            else:
                entries = tuple(
                    (name, tuple(arr.shape)) for name, arr in state.items()
                )
                if entries != schema.entries:
                    raise ArchitectureMismatchError(
                        f"model {count} does not match the set schema"
                    )
            row: list[str] = []
            with _trace.span("model", key=count, kind="serialize"):
                for layer, name in enumerate(schema.layer_names()):
                    with _trace.span(
                        "chunk", key=layer, kind="serialize", layer=name
                    ):
                        if digests is not None and dtype == "float32":
                            digest = digests[count][layer]
                            session.add(
                                digest, lambda n=name: _layer_bytes(state[n], dtype)
                            )
                        else:
                            payload = _layer_bytes(state[name], dtype)
                            digest = hash_bytes(payload)
                            session.add(digest, payload)
                        row.append(digest)
            matrix.append(row)
            count += 1
        if schema is None or count != num_models:
            session.abort()
            raise ValueError(
                f"declared num_models={num_models} but the iterable yielded "
                f"{count} models"
            )
        with _trace.span("chunk-commit", kind="store-write"):
            session.close()

    spec = get_architecture(architecture)
    document: dict[str, Any] = {
        "type": doc_type,
        "storage": "chunked",
        "architecture": architecture,
        "architecture_code": spec.source_code,
        "num_models": num_models,
        "schema": schema.to_json(),
        "metadata": metadata.to_json(),
    }
    if dtype != "float32":
        document["param_dtype"] = dtype
    if store_digests_in_doc:
        document["chunk_digests"] = matrix
    if extra_fields:
        document.update(extra_fields)
    with _trace.span("metadata", kind="metadata"):
        context.document_store.insert(SETS_COLLECTION, document, doc_id=set_id)
    return matrix


def _chunked_digests(context: SaveContext, document: dict, set_id: str) -> list:
    """The digest matrix of a chunked set (from its descriptor or, for
    Update sets, from the hash-info document that doubles as one)."""
    if "chunk_digests" in document:
        return document["chunk_digests"]
    from repro.core.update import HASH_COLLECTION

    return context.document_store.get(HASH_COLLECTION, set_id)["hashes"]


def read_chunked_set(context: SaveContext, document: dict, set_id: str) -> ModelSet:
    """Reconstruct a set saved by :func:`write_chunked_set`.

    Single-fetch fan-out: each *unique* chunk is fetched once (vectored
    range reads per pack artifact) and copied into every referencing
    (model, layer) slot; assembly parallelizes across the worker lanes.
    """
    schema = StateSchema.from_json(document["schema"])
    num_models = int(document["num_models"])
    dtype = str(document.get("param_dtype", "float32"))
    matrix = _chunked_digests(context, document, set_id)
    if len(matrix) != num_models:
        raise RecoveryError(
            f"set {set_id!r}: digest matrix has {len(matrix)} rows, "
            f"expected {num_models}"
        )
    with _trace.span("chunk-fetch", kind="store-read"):
        values = context.chunk_store().fetch(
            (digest for row in matrix for digest in row), workers=context.workers
        )
    entries = schema.entries

    def build_state(model_index: int) -> "OrderedDict[str, np.ndarray]":
        row = matrix[model_index]
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for layer, (name, shape) in enumerate(entries):
            state[name] = _layer_from_bytes(values[row[layer]], shape, dtype)
        return state

    if _trace.active():

        def build_traced(model_index: int):
            with _trace.span("model", key=model_index, kind="decode"):
                return build_state(model_index)

        with _trace.span("decode", kind="decode"):
            states = parallel_map(build_traced, range(num_models), context.workers)
    else:
        states = parallel_map(build_state, range(num_models), context.workers)
    return ModelSet(str(document["architecture"]), states)


def read_chunked_model(
    context: SaveContext, document: dict, set_id: str, model_index: int
):
    """Read one model of a chunked set (only its chunks are fetched)."""
    num_models = int(document["num_models"])
    if not 0 <= model_index < num_models:
        raise IndexError(
            f"model index {model_index} out of range for set {set_id!r} "
            f"({num_models} models)"
        )
    schema = StateSchema.from_json(document["schema"])
    dtype = str(document.get("param_dtype", "float32"))
    row = _chunked_digests(context, document, set_id)[model_index]
    with _trace.span("chunk-fetch", kind="store-read"):
        values = context.chunk_store().fetch(row, workers=context.workers)
    with _trace.span("decode", kind="decode"):
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for layer, (name, shape) in enumerate(schema.entries):
            state[name] = _layer_from_bytes(values[row[layer]], shape, dtype)
        return state


class BaselineApproach(SaveApproach):
    """Full-snapshot, set-oriented saving (the paper's Baseline)."""

    name = "baseline"

    def save_initial(
        self, model_set: ModelSet, metadata: SetMetadata | None = None
    ) -> str:
        set_id = self.context.next_set_id(self.name)
        if self.context.dedup:
            write_chunked_set(
                self.context,
                model_set.states,
                model_set.architecture,
                len(model_set),
                set_id,
                doc_type=self.name,
                metadata=metadata,
            )
            return set_id
        return write_full_set(
            self.context, model_set, set_id, doc_type=self.name, metadata=metadata
        )

    def save_initial_streaming(
        self,
        architecture: str,
        states,
        num_models: int,
        metadata: SetMetadata | None = None,
    ) -> str:
        set_id = self.context.next_set_id(self.name)
        if self.context.dedup:
            # write_chunked_set consumes the iterable in one bounded pass.
            write_chunked_set(
                self.context,
                states,
                architecture,
                num_models,
                set_id,
                doc_type=self.name,
                metadata=metadata,
            )
            return set_id
        return write_full_set_streaming(
            self.context,
            states,
            architecture,
            num_models,
            set_id,
            doc_type=self.name,
            metadata=metadata,
        )

    def save_derived(
        self,
        model_set: ModelSet,
        base_set_id: str,
        update_info: UpdateInfo | None = None,
        metadata: SetMetadata | None = None,
    ) -> str:
        # Baseline takes no advantage of the relation to the base set: it
        # always saves complete representations (its storage consumption
        # therefore does not change across use cases, Figure 3).  The base
        # reference is recorded for lineage only.  With dedup on, the
        # chunk layer recovers the redundancy anyway: unchanged layers
        # are elided because their chunks already exist.
        set_id = self.context.next_set_id(self.name)
        if self.context.dedup:
            write_chunked_set(
                self.context,
                model_set.states,
                model_set.architecture,
                len(model_set),
                set_id,
                doc_type=self.name,
                metadata=metadata,
                extra_fields={"base_set": base_set_id},
            )
            return set_id
        return write_full_set(
            self.context,
            model_set,
            set_id,
            doc_type=self.name,
            metadata=metadata,
            extra_fields={"base_set": base_set_id},
        )

    def recover(self, set_id: str) -> ModelSet:
        document = self.context.set_document(set_id)
        self._require_type(document, self.name, set_id)
        if document.get("storage") == "chunked":
            return read_chunked_set(self.context, document, set_id)
        return read_full_set(self.context, document, set_id)

    def recover_model(self, set_id: str, model_index: int):
        document = self.context.set_document(set_id)
        self._require_type(document, self.name, set_id)
        if document.get("storage") == "chunked":
            return read_chunked_model(self.context, document, set_id, model_index)
        return read_single_model(self.context, document, set_id, model_index)
