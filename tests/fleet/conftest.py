"""Fleet test fixtures: registry isolation and a small shared set."""

from __future__ import annotations

import pytest

from repro.core.model_set import ModelSet
from repro.observability.metrics import global_registry


@pytest.fixture(autouse=True)
def clean_registry():
    """Fleet tests register per-shard providers on the process-wide
    registry; drop them afterwards so tests stay independent."""
    global_registry().reset()
    yield
    global_registry().reset()


@pytest.fixture(scope="session")
def tiny_set() -> ModelSet:
    """4 FFNN-48 models; session-scoped, treat as read-only."""
    return ModelSet.build("FFNN-48", num_models=4, seed=11)
