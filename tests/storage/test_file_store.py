"""Tests for the binary artifact store."""

import pytest

from repro.errors import ArtifactNotFoundError, DuplicateArtifactError
from repro.storage.file_store import FileStore
from repro.storage.hardware import M1_PROFILE


class TestPutGet:
    def test_roundtrip_with_explicit_id(self):
        store = FileStore()
        store.put(b"hello", artifact_id="greeting")
        assert store.get("greeting") == b"hello"

    def test_content_addressing_without_id(self):
        store = FileStore()
        artifact_id = store.put(b"payload")
        assert artifact_id.startswith("sha256-")
        assert store.get(artifact_id) == b"payload"

    def test_same_content_same_derived_id(self):
        store = FileStore()
        assert store.put(b"x") == store.put(b"x")

    def test_duplicate_explicit_id_rejected(self):
        store = FileStore()
        store.put(b"a", artifact_id="one")
        with pytest.raises(DuplicateArtifactError):
            store.put(b"b", artifact_id="one")

    def test_missing_artifact_raises(self):
        store = FileStore()
        with pytest.raises(ArtifactNotFoundError):
            store.get("ghost")
        with pytest.raises(ArtifactNotFoundError):
            store.size("ghost")

    def test_empty_payload(self):
        store = FileStore()
        store.put(b"", artifact_id="empty")
        assert store.get("empty") == b""


class TestInspection:
    def test_exists_size_ids_len(self):
        store = FileStore()
        store.put(b"abc", artifact_id="z")
        store.put(b"defg", artifact_id="a")
        assert store.exists("z") and not store.exists("q")
        assert store.size("a") == 4
        assert store.ids() == ["a", "z"]
        assert len(store) == 2

    def test_total_bytes(self):
        store = FileStore()
        store.put(b"abc", artifact_id="x")
        store.put(b"de", artifact_id="y")
        assert store.total_bytes() == 5


class TestAccounting:
    def test_write_counters(self):
        store = FileStore()
        store.put(b"12345", artifact_id="x", category="parameters")
        assert store.stats.writes == 1
        assert store.stats.bytes_written == 5
        assert store.stats.bytes_by_category == {"parameters": 5}

    def test_read_counters(self):
        store = FileStore()
        store.put(b"12345", artifact_id="x")
        store.get("x")
        assert store.stats.reads == 1
        assert store.stats.bytes_read == 5

    def test_inspection_not_charged(self):
        store = FileStore()
        store.put(b"12345", artifact_id="x")
        store.exists("x")
        store.size("x")
        store.ids()
        assert store.stats.reads == 0

    def test_latency_charged_per_profile(self):
        store = FileStore(profile=M1_PROFILE)
        payload = b"x" * 1_000_000
        store.put(payload, artifact_id="big")
        expected = M1_PROFILE.file_write_cost(len(payload))
        assert store.stats.simulated_write_s == pytest.approx(expected)
        store.get("big")
        assert store.stats.simulated_read_s == pytest.approx(
            M1_PROFILE.file_read_cost(len(payload))
        )

    def test_zero_latency_profile_charges_nothing(self):
        store = FileStore()
        store.put(b"x" * 100, artifact_id="x")
        assert store.stats.simulated_write_s == 0.0


class TestDiskSpill:
    def test_artifacts_written_to_directory(self, tmp_path):
        store = FileStore(directory=tmp_path)
        store.put(b"on-disk", artifact_id="file1")
        assert (tmp_path / "file1.bin").read_bytes() == b"on-disk"

    def test_reads_come_from_disk(self, tmp_path):
        store = FileStore(directory=tmp_path)
        store.put(b"payload", artifact_id="file1")
        # Tamper with the file to prove reads hit the disk copy.
        (tmp_path / "file1.bin").write_bytes(b"tampered")
        assert store.get("file1") == b"tampered"

    def test_spill_mode_keeps_only_size_index_in_memory(self, tmp_path):
        store = FileStore(directory=tmp_path)
        store.put(b"x" * 4096, artifact_id="big")
        # The bytes live on disk exclusively; memory holds just the index.
        assert store._blobs == {}
        assert store._sizes == {"big": 4096}
        assert store.size("big") == 4096
        assert store.total_bytes() == 4096
        store.delete("big")
        assert store._sizes == {}
        assert not (tmp_path / "big.bin").exists()

    def test_streaming_writer_spills_without_joining(self, tmp_path):
        store = FileStore(directory=tmp_path)
        with store.open_writer("streamed") as writer:
            for _ in range(8):
                writer.write(b"chunk" * 100)
            # Chunks go straight to the temp file, never a joined buffer.
            assert writer._chunks is None
        assert store._blobs == {}
        assert store.get("streamed") == b"chunk" * 800
        # The temp file was renamed away, not left behind.
        assert list(tmp_path.glob(".writer-*.tmp")) == []

    def test_streaming_writer_content_addresses_incrementally(self, tmp_path):
        reference = FileStore()
        expected = reference.put(b"alpha" + b"beta")
        store = FileStore(directory=tmp_path)
        with store.open_writer(None) as writer:
            writer.write(b"alpha")
            writer.write(b"beta")
        assert store.ids() == [expected]

    def test_aborted_writer_leaves_no_trace(self, tmp_path):
        store = FileStore(directory=tmp_path)
        writer = store.open_writer("doomed")
        writer.write(b"partial")
        writer.abort()
        assert store.ids() == []
        assert list(tmp_path.iterdir()) == []


class TestGetRanges:
    def test_vectored_read_returns_each_slice(self):
        store = FileStore()
        store.put(b"0123456789", artifact_id="digits")
        assert store.get_ranges("digits", [(0, 3), (5, 2), (9, 1)]) == [
            b"012",
            b"56",
            b"9",
        ]

    def test_counts_as_one_read_of_the_summed_bytes(self):
        store = FileStore()
        store.put(b"0123456789", artifact_id="digits")
        reads_before = store.stats.reads
        store.get_ranges("digits", [(0, 3), (5, 2)])
        assert store.stats.reads == reads_before + 1
        assert store.stats.bytes_read == 5

    def test_empty_range_list_is_uncharged(self):
        store = FileStore()
        store.put(b"0123456789", artifact_id="digits")
        assert store.get_ranges("digits", []) == []
        assert store.stats.reads == 0

    def test_out_of_bounds_range_rejected(self):
        store = FileStore()
        store.put(b"0123456789", artifact_id="digits")
        with pytest.raises(ValueError):
            store.get_ranges("digits", [(0, 3), (8, 5)])
        with pytest.raises(ValueError):
            store.get_ranges("digits", [(-1, 3)])

    def test_spill_mode_reads_from_disk(self, tmp_path):
        store = FileStore(directory=tmp_path)
        store.put(b"0123456789", artifact_id="digits")
        assert store.get_ranges("digits", [(2, 4), (8, 2)]) == [b"2345", b"89"]

    def test_worker_lanes_reduce_simulated_cost(self):
        store = FileStore(profile=M1_PROFILE)
        store.put(b"x" * 1_000_000, artifact_id="big")
        ranges = [(i * 100_000, 100_000) for i in range(10)]
        store.get_ranges("big", ranges)
        serial = store.stats.simulated_read_s
        store.get_ranges("big", ranges, workers=4)
        striped = store.stats.simulated_read_s - serial
        assert striped < serial
        # Same bytes and op count either way.
        assert store.stats.bytes_read == 2_000_000
        assert store.stats.reads == 2


class TestStripedTransfers:
    def test_striped_put_and_get_charge_makespan(self):
        serial = FileStore(profile=M1_PROFILE)
        striped = FileStore(profile=M1_PROFILE)
        payload = b"x" * 1_000_000
        serial.put(payload, artifact_id="a")
        striped.put(payload, artifact_id="a", workers=4)
        assert striped.stats.simulated_write_s < serial.stats.simulated_write_s
        serial.get("a")
        striped.get("a", workers=4)
        assert striped.stats.simulated_read_s < serial.stats.simulated_read_s
        # Accounting stays one op / full bytes, so storage math is unchanged.
        assert striped.stats.writes == serial.stats.writes == 1
        assert striped.stats.bytes_written == serial.stats.bytes_written


class TestWriterAbandon:
    """Satellite: an abandoned spill-mode writer must never leak its
    ``.writer-*.tmp`` file — not on exception, not across reopen."""

    def test_exception_in_spill_writer_unlinks_temp(self, tmp_path):
        store = FileStore(directory=tmp_path)
        with pytest.raises(RuntimeError):
            with store.open_writer("doomed") as writer:
                writer.write(b"partial")
                raise RuntimeError("caller dies mid-stream")
        assert list(tmp_path.glob(".writer-*.tmp")) == []
        assert not store.exists("doomed")

    def test_abort_unlinks_temp(self, tmp_path):
        store = FileStore(directory=tmp_path)
        writer = store.open_writer(None)
        writer.write(b"partial")
        writer.abort()
        assert list(tmp_path.glob(".writer-*.tmp")) == []

    def test_memory_mode_abandon_stores_nothing(self):
        store = FileStore()
        with pytest.raises(RuntimeError):
            with store.open_writer("doomed") as writer:
                writer.write(b"partial")
                raise RuntimeError("boom")
        assert not store.exists("doomed")
        assert store.total_bytes() == 0

    def test_reopen_sweeps_a_crash_leftover_temp(self, tmp_path):
        store = FileStore(directory=tmp_path)
        store.put(b"real", artifact_id="kept")
        # A kill -9 between writes leaves the temp behind.
        (tmp_path / ".writer-99.tmp").write_bytes(b"garbage")
        FileStore(directory=tmp_path)
        assert list(tmp_path.glob(".writer-*.tmp")) == []
        # The real artifact's bytes are untouched by the sweep.
        assert (tmp_path / "kept.bin").read_bytes() == b"real"

    def test_persistent_writer_abort_leaves_no_temp(self, tmp_path):
        from repro.storage.persistent import PersistentFileStore

        store = PersistentFileStore(tmp_path)
        with pytest.raises(RuntimeError):
            with store.open_writer("doomed") as writer:
                writer.write(b"partial")
                raise RuntimeError("boom")
        assert list(tmp_path.glob("*.tmp")) == []
        assert not store.exists("doomed")


class TestDuplicateParity:
    """Satellite: DuplicateArtifactError semantics must be identical in
    memory and spill modes."""

    @pytest.fixture(params=["memory", "spill"])
    def store(self, request, tmp_path):
        if request.param == "memory":
            return FileStore()
        return FileStore(directory=tmp_path)

    def test_put_twice_raises_and_keeps_original(self, store):
        store.put(b"original", artifact_id="one")
        with pytest.raises(DuplicateArtifactError):
            store.put(b"other", artifact_id="one")
        assert store.get("one") == b"original"

    def test_open_writer_to_existing_id_raises(self, store):
        store.put(b"original", artifact_id="one")
        with pytest.raises(DuplicateArtifactError):
            store.open_writer("one")
        assert store.get("one") == b"original"

    def test_writer_racing_a_put_raises_at_close(self, store):
        # The id is free at open but claimed before close: the late
        # check protects the stored bytes in both modes, and a spill
        # writer must still clean up its temp file.
        writer = store.open_writer("one")
        writer.write(b"streamed")
        store.put(b"original", artifact_id="one")
        with pytest.raises(DuplicateArtifactError):
            writer.close()
        assert store.get("one") == b"original"
        if store._directory is not None:
            assert list(store._directory.glob(".writer-*.tmp")) == []

    def test_derived_id_reput_is_idempotent(self, store):
        first = store.put(b"same content")
        second = store.put(b"same content")
        assert first == second
        assert store.get(first) == b"same content"
