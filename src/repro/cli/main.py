"""Argument parsing and dispatch for ``repro-archive``.

The parser is assembled here; the verb implementations live in the
sibling modules (:mod:`repro.cli.archive`, :mod:`repro.cli.maintenance`,
:mod:`repro.cli.fleet`, :mod:`repro.cli.query`).  Dispatch order:
``trace`` runs before any archive is opened; ``deadletter``, ``query``,
and ``register`` handle fleet routing themselves; every other verb goes
through the fleet dispatcher when a ``shard-<i>/`` layout is detected
and runs against the single opened context otherwise.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.archive import (
    _cmd_compact,
    _cmd_export,
    _cmd_fsck,
    _cmd_history,
    _cmd_info,
    _cmd_lineage,
    _cmd_migrate,
    _cmd_scrub,
    _cmd_stats,
    _cmd_trace,
    _cmd_verify,
)
from repro.cli.common import PROFILES, config_from_args
from repro.cli.fleet import _cmd_deadletter, _fleet_shard_count, _run_fleet
from repro.cli.maintenance import _cmd_evict, _cmd_gc, _cmd_maintain, _cmd_warm
from repro.cli.query import _cmd_query, _cmd_register
from repro.core.manager import APPROACHES
from repro.errors import ReproError
from repro.storage.persistent import open_context


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-archive", description="Operate a durable model archive."
    )
    parser.add_argument("directory", help="archive root directory")
    parser.add_argument(
        "--approach",
        default=None,
        help="override the auto-detected approach (needed for mixed archives)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallelism of the save/recover engine (1 serial, 0 = one "
        "lane per CPU); results are byte-identical at any setting",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition the archive across N independent shard subtrees "
        "operated as one fleet (default: auto-detect the existing "
        "shard-<i>/ topology)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=None,
        help="replicate the archive across N backend subtrees (default: "
        "auto-detect the existing topology); composes under sharding — "
        "each shard carries its own replicas",
    )
    parser.add_argument(
        "--write-quorum",
        type=int,
        default=None,
        help="replica acknowledgements a write needs (default: majority)",
    )
    parser.add_argument(
        "--read-quorum",
        type=int,
        default=None,
        help="replicas a consistent document read polls (default: N-W+1)",
    )
    parser.add_argument(
        "--profile",
        dest="profile_name",
        choices=sorted(PROFILES),
        default=None,
        help="simulated-latency hardware profile charged per store "
        "operation (default: local, which charges zero)",
    )
    parser.add_argument(
        "--dedup",
        action="store_true",
        help="route parameter writes through the content-addressed chunk "
        "layer",
    )
    parser.add_argument(
        "--no-journal",
        action="store_true",
        help="skip the write-ahead save journal (saves are no longer "
        "atomic under crashes)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry transiently failing store operations up to N times "
        "with exponential backoff",
    )
    parser.add_argument(
        "--serve-cache",
        action="store_true",
        help="serve reads through the tiered recovery cache (implied by "
        "the warm and evict verbs)",
    )
    parser.add_argument(
        "--set-cache-bytes",
        type=int,
        default=None,
        metavar="N",
        help="tier-1 budget: bytes of materialized model sets kept hot",
    )
    parser.add_argument(
        "--chunk-cache-bytes",
        type=int,
        default=None,
        metavar="N",
        help="tier-2 budget: bytes of decoded chunks shared across sets",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record hierarchical spans for whatever command runs",
    )
    parser.add_argument(
        "--trace-json",
        default=None,
        metavar="PATH",
        help="write the recorded trace as a schema-validated JSON "
        "document (implies --trace)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("info", help="summarize the archive")
    subparsers.add_parser("lineage", help="print the derivation chains")

    verify = subparsers.add_parser("verify", help="audit archive integrity")
    verify.add_argument(
        "--deep", action="store_true", help="also recover sets and recheck hashes"
    )

    fsck = subparsers.add_parser(
        "fsck", help="audit archive consistency (journal, orphans, refcounts)"
    )
    fsck.add_argument(
        "--deep",
        action="store_true",
        help="also re-hash every artifact and chunk against its checksum",
    )

    scrub = subparsers.add_parser(
        "scrub",
        help="anti-entropy pass: converge every replica onto the majority "
        "state and heal missing/corrupt copies",
    )
    scrub.add_argument(
        "--shallow",
        action="store_true",
        help="trust recorded digests instead of re-hashing every copy "
        "(misses torn writes)",
    )

    history = subparsers.add_parser("history", help="one model's drift over time")
    history.add_argument("set_id")
    history.add_argument("model_index", type=int)

    compact = subparsers.add_parser(
        "compact", help="rewrite a derived set as a full snapshot"
    )
    compact.add_argument("set_id")

    gc = subparsers.add_parser("gc", help="garbage-collect old sets")
    group = gc.add_mutually_exclusive_group(required=True)
    group.add_argument("--keep-last", type=int, default=None)
    group.add_argument("--keep", nargs="+", default=None, metavar="SET_ID")

    maintain = subparsers.add_parser(
        "maintain",
        help="run background-maintenance passes: retention GC, chunk "
        "sweep, and delta-chain compaction as one atomic journal txn "
        "per shard, then repair-queue draining and an anti-entropy "
        "scrub",
    )
    maintain.add_argument(
        "--cycles",
        type=int,
        default=1,
        metavar="N",
        help="maintenance passes to run (default: one)",
    )
    maintain.add_argument(
        "--keep-last",
        type=int,
        default=None,
        metavar="K",
        help="retention policy: keep the newest K sets fleet-wide "
        "(default: no GC)",
    )
    maintain.add_argument(
        "--compact-depth",
        type=int,
        default=None,
        metavar="D",
        help="compact kept delta chains at or beyond this recovery depth "
        "(default: only the retention policy's oldest-kept compaction)",
    )
    maintain.add_argument(
        "--no-scrub",
        action="store_true",
        help="skip the anti-entropy scrub passes",
    )
    maintain.add_argument(
        "--deep",
        action="store_true",
        help="re-hash every replica copy during the scrub (catches torn "
        "writes; default trusts recorded digests)",
    )

    export = subparsers.add_parser(
        "export", help="write models as a self-contained deployment bundle"
    )
    export.add_argument("set_id")
    export.add_argument("output_dir")
    export.add_argument(
        "--models", nargs="+", type=int, default=None, metavar="INDEX"
    )
    export.add_argument(
        "--salvage",
        action="store_true",
        help="tolerate corruption: export every model that still verifies "
        "and record the skipped ones in the manifest",
    )

    migrate = subparsers.add_parser(
        "migrate", help="re-encode the archive under another approach"
    )
    migrate.add_argument("target_dir")
    migrate.add_argument(
        "--target-approach",
        default="update",
        choices=[n for n in sorted(APPROACHES) if n != "provenance"],
    )
    migrate.add_argument(
        "--dedup",
        action="store_true",
        help="store the target archive through the content-addressed "
        "chunk layer (identical layer tensors stored once)",
    )

    warm = subparsers.add_parser(
        "warm", help="pre-materialize sets into the serving cache"
    )
    warm.add_argument("set_ids", nargs="*", metavar="SET_ID")
    warm.add_argument(
        "--all", action="store_true", help="warm every set in the archive"
    )

    evict = subparsers.add_parser(
        "evict", help="drop serving-cache entries"
    )
    evict.add_argument(
        "set_ids",
        nargs="*",
        metavar="SET_ID",
        help="sets to drop from tier 1 (default: all of them)",
    )
    evict.add_argument(
        "--chunks",
        action="store_true",
        help="also empty the tier-2 decoded-chunk cache",
    )

    stats = subparsers.add_parser(
        "stats", help="storage accounting and metrics-registry export"
    )
    stats.add_argument(
        "--live",
        action="store_true",
        help="export through the process-wide metrics registry instead "
        "of printing a static storage summary",
    )
    stats.add_argument(
        "--format",
        choices=["human", "json", "prometheus"],
        default="human",
        help="registry export format for --live",
    )

    deadletter = subparsers.add_parser(
        "deadletter",
        help="inspect, replay, or purge dead-lettered ingest batches "
        "(fleet archives only)",
    )
    deadletter.add_argument(
        "action",
        choices=["list", "replay", "purge"],
        help="list parked batches, replay them through the normal ingest "
        "path, or drop them",
    )
    deadletter.add_argument(
        "--shard",
        type=int,
        default=None,
        metavar="I",
        help="restrict to entries parked for shard I",
    )
    deadletter.add_argument(
        "--ids",
        nargs="+",
        default=None,
        metavar="ENTRY_ID",
        help="purge only these entry ids",
    )

    trace = subparsers.add_parser(
        "trace",
        help="run a traced synthetic U3 update cycle in memory and print "
        "the span tree (the archive directory is not touched)",
    )
    trace.add_argument(
        "--models",
        type=int,
        default=4,
        metavar="N",
        help="models in the synthetic set",
    )
    trace.add_argument(
        "--replica-down",
        action="store_true",
        help="take the last replica down for the whole cycle (needs "
        "--replicas >= 2) to show degraded-mode traces",
    )

    query = subparsers.add_parser(
        "query",
        help="answer catalog questions from the model registry: "
        "families, versions, tags, derivation, layer-level diffs",
    )
    qsub = query.add_subparsers(dest="query_command", required=True)

    qfamilies = qsub.add_parser("families", help="list registered model families")
    qfamilies.add_argument("--json", action="store_true")

    qversions = qsub.add_parser(
        "versions", help="list a family's versions in save order"
    )
    qversions.add_argument("family")
    qversions.add_argument("--json", action="store_true")

    qderived = qsub.add_parser(
        "derived-from", help="sets saved with this set as their base"
    )
    qderived.add_argument("set_id")
    qderived.add_argument(
        "--transitive",
        action="store_true",
        help="follow the derivation DAG to every descendant",
    )
    qderived.add_argument("--json", action="store_true")

    qdiff = qsub.add_parser(
        "diff",
        help="layer-level change sets between two versions, computed "
        "from stored hash metadata without reading parameter bytes",
    )
    qdiff.add_argument("set_a")
    qdiff.add_argument("set_b")
    qdiff.add_argument("--json", action="store_true")

    qresolve = qsub.add_parser(
        "resolve", help="the set id a family tag points at"
    )
    qresolve.add_argument("family")
    qresolve.add_argument("tag", nargs="?", default="latest")
    qresolve.add_argument("--json", action="store_true")

    qtag = qsub.add_parser("tag", help="pin a named tag to a family version")
    qtag.add_argument("family")
    qtag.add_argument("tag")
    qtag.add_argument("set_id")

    register = subparsers.add_parser(
        "register",
        help="rebuild the registry from the archive's set descriptors "
        "(fleets rebuild the single root-level catalog)",
    )
    register.add_argument(
        "--rebuild",
        action="store_true",
        help="drop the current catalog and re-derive it from stored "
        "metadata (required; registration is otherwise automatic)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "trace":
        try:
            return _cmd_trace(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    commands = {
        "info": _cmd_info,
        "lineage": _cmd_lineage,
        "verify": _cmd_verify,
        "fsck": _cmd_fsck,
        "scrub": _cmd_scrub,
        "history": _cmd_history,
        "compact": _cmd_compact,
        "gc": _cmd_gc,
        "export": _cmd_export,
        "migrate": _cmd_migrate,
        "stats": _cmd_stats,
        "warm": _cmd_warm,
        "evict": _cmd_evict,
        "maintain": _cmd_maintain,
    }
    try:
        config = config_from_args(args)
        num_shards = _fleet_shard_count(args.directory, config)
        if args.command == "deadletter":
            return _cmd_deadletter(args, config, num_shards)
        if args.command == "query":
            return _cmd_query(args, config, num_shards)
        if args.command == "register":
            return _cmd_register(args, config, num_shards)
        if num_shards > 0:
            return _run_fleet(args, config, num_shards, commands)
        context = open_context(args.directory, config=config)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        result = commands[args.command](context, args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trace_path = context.config.observability.trace_path if context.config else None
    if trace_path and context.tracer is not None and context.tracer.roots:
        from repro.observability import write_trace_json

        path = write_trace_json(
            trace_path, context.tracer.roots, meta={"command": args.command}
        )
        print(f"trace written to {path}")
    return result
