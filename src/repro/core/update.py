"""The Update approach (§3.3).

Update extends Baseline by exploiting that, per update cycle, (1) not all
models are updated and (2) some models are only partially updated.  The
save procedure follows the paper's four steps:

1. save a reference to the base model set and other metadata,
2. calculate the parameter hashes for every model and layer and save them,
3. identify all changed parameters by comparing against the base set's
   hash information and document the changes in a diff list, and
4. concatenate all changed parameters into a single binary artifact.

The per-layer hash information makes change detection possible *without
loading the full representation of the previous model set* — it is real
storage overhead and is accounted as such (the paper's Figure 3 shows
Update above Baseline in U1 for exactly this reason).

Recovery is recursive: the base set chain is walked back to the nearest
full snapshot and the diffs are re-applied forward — the cause of the
staircase-shaped time-to-recover in Figure 5.  The optional
``snapshot_interval`` bounds the chain by inserting full snapshots
(the mitigation the paper sketches in §2.2); ``None`` reproduces the
paper's unbounded behaviour.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.approach import SETS_COLLECTION, SaveApproach, SaveContext
from repro.core.baseline import read_full_set, read_single_model, write_full_set
from repro.core.compression import get_codec
from repro.core.model_set import ModelSet
from repro.core.save_info import SetMetadata, UpdateInfo
from repro.errors import InvalidUpdatePlanError, RecoveryError
from repro.nn.serialization import StateSchema
from repro.storage.hashing import hash_array

#: Collection holding one hash-info document per saved set.
HASH_COLLECTION = "hash_info"


def _set_hashes(model_set: ModelSet) -> list[list[str]]:
    """Full-length per-layer hashes for every model, in schema order."""
    return [
        [hash_array(state[name], length=64) for name, _shape in model_set.schema.entries]
        for state in model_set.states
    ]


class UpdateApproach(SaveApproach):
    """Delta saving of changed layers, detected via per-layer hashes."""

    name = "update"

    def __init__(
        self,
        context: SaveContext,
        snapshot_interval: int | None = None,
        codec: str = "none",
        granularity: str = "layer",
    ) -> None:
        """Create the approach.

        Parameters
        ----------
        snapshot_interval:
            Insert a full snapshot after this many deltas, bounding the
            recovery recursion; ``None`` reproduces the paper.
        codec:
            Compression codec for delta blobs (see
            :mod:`repro.core.compression`).
        granularity:
            Diff granularity: ``"layer"`` (the paper's design — only the
            layers whose hash changed are stored) or ``"model"`` (any
            change stores the whole model; ablation A5 quantifies what
            the per-layer comparison buys for partial updates).
        """
        super().__init__(context)
        if snapshot_interval is not None and snapshot_interval <= 0:
            raise ValueError("snapshot_interval must be positive or None")
        if granularity not in ("layer", "model"):
            raise ValueError(
                f"granularity must be 'layer' or 'model', got {granularity!r}"
            )
        self.snapshot_interval = snapshot_interval
        self.codec = get_codec(codec)
        self.granularity = granularity

    # -- save --------------------------------------------------------------
    def _save_hashes(self, set_id: str, hashes: list[list[str]], schema: StateSchema) -> None:
        self.context.document_store.insert(
            HASH_COLLECTION,
            {"layers": schema.layer_names(), "hashes": hashes},
            doc_id=set_id,
            category="hash-info",
        )

    def save_initial(
        self, model_set: ModelSet, metadata: SetMetadata | None = None
    ) -> str:
        set_id = self.context.next_set_id(self.name)
        write_full_set(
            self.context,
            model_set,
            set_id,
            doc_type=self.name,
            metadata=metadata,
            extra_fields={"kind": "full", "chain_depth": 0},
        )
        self._save_hashes(set_id, _set_hashes(model_set), model_set.schema)
        return set_id

    def save_initial_streaming(
        self,
        architecture: str,
        states,
        num_models: int,
        metadata: SetMetadata | None = None,
    ) -> str:
        from repro.core.baseline import write_full_set_streaming

        set_id = self.context.next_set_id(self.name)
        hashes: list[list[str]] = []
        layer_names: list[str] = []

        def hash_state(_index: int, state) -> None:
            if not layer_names:
                layer_names.extend(state)
            hashes.append(
                [hash_array(state[name], length=64) for name in layer_names]
            )

        write_full_set_streaming(
            self.context,
            states,
            architecture,
            num_models,
            set_id,
            doc_type=self.name,
            metadata=metadata,
            extra_fields={"kind": "full", "chain_depth": 0},
            per_state=hash_state,
        )
        self.context.document_store.insert(
            HASH_COLLECTION,
            {"layers": layer_names, "hashes": hashes},
            doc_id=set_id,
            category="hash-info",
        )
        return set_id

    def save_derived(
        self,
        model_set: ModelSet,
        base_set_id: str,
        update_info: UpdateInfo | None = None,
        metadata: SetMetadata | None = None,
    ) -> str:
        base_doc = self.context.set_document(base_set_id)
        self._require_type(base_doc, self.name, base_set_id)
        if int(base_doc["num_models"]) != len(model_set):
            raise InvalidUpdatePlanError(
                f"derived set has {len(model_set)} models, base set "
                f"{base_set_id!r} has {base_doc['num_models']}"
            )
        chain_depth = int(base_doc.get("chain_depth", 0)) + 1
        if self.snapshot_interval is not None and chain_depth >= self.snapshot_interval:
            # Bound the recovery recursion with a full snapshot.
            set_id = self.context.next_set_id(self.name)
            write_full_set(
                self.context,
                model_set,
                set_id,
                doc_type=self.name,
                metadata=metadata,
                extra_fields={"kind": "full", "chain_depth": 0, "base_set": base_set_id},
            )
            self._save_hashes(set_id, _set_hashes(model_set), model_set.schema)
            return set_id

        set_id = self.context.next_set_id(self.name)
        metadata = metadata if metadata is not None else SetMetadata()

        # Step 2: hash every model and layer of the new set.
        new_hashes = _set_hashes(model_set)
        # Step 3: diff against the base set's stored hash info.
        base_hashes = self.context.document_store.get(HASH_COLLECTION, base_set_id)[
            "hashes"
        ]
        diff: list[list[Any]] = []
        all_layers = list(range(len(model_set.schema.entries)))
        for model_index, (old, new) in enumerate(zip(base_hashes, new_hashes)):
            changed = [layer for layer, (a, b) in enumerate(zip(old, new)) if a != b]
            if changed and self.granularity == "model":
                changed = all_layers
            if changed:
                diff.append([model_index, changed])
        # Step 4: concatenate all changed parameters into one artifact.
        layer_names = model_set.schema.layer_names()
        chunks: list[bytes] = []
        for model_index, changed_layers in diff:
            state = model_set.state(model_index)
            for layer in changed_layers:
                chunks.append(
                    np.ascontiguousarray(
                        state[layer_names[layer]], dtype=np.float32
                    ).tobytes()
                )
        params_artifact = self.context.file_store.put(
            self.codec.encode(b"".join(chunks)),
            artifact_id=f"{set_id}-delta",
            category="parameters",
        )

        # Step 1 (persisted last so the document can reference the blob).
        self.context.document_store.insert(
            SETS_COLLECTION,
            {
                "type": self.name,
                "kind": "delta",
                "base_set": base_set_id,
                "chain_depth": chain_depth,
                "architecture": str(base_doc["architecture"]),
                "num_models": len(model_set),
                "schema": model_set.schema.to_json(),
                "diff": diff,
                "codec": self.codec.name,
                "granularity": self.granularity,
                "params_artifact": params_artifact,
                "metadata": metadata.to_json(),
            },
            doc_id=set_id,
        )
        self._save_hashes(set_id, new_hashes, model_set.schema)
        return set_id

    # -- recover -------------------------------------------------------------
    def recover(self, set_id: str) -> ModelSet:
        # Walk the chain back to the nearest full snapshot, then re-apply
        # the deltas forward.  Iterative to keep long chains safe.
        chain: list[dict] = []
        current_id = set_id
        while True:
            document = self.context.set_document(current_id)
            self._require_type(document, self.name, current_id)
            if document["kind"] == "full":
                base = read_full_set(self.context, document, current_id)
                break
            chain.append(document)
            current_id = str(document["base_set"])

        model_set = base
        for document in reversed(chain):
            model_set = self._apply_delta(model_set, document)
        return model_set

    def recover_model(self, set_id: str, model_index: int):
        """Recover one model by walking its chain with range reads.

        Only the target model's slice of each artifact is read: the base
        snapshot contributes one model-sized range read, and each delta
        along the chain contributes at most one range read covering the
        model's changed layers (none if the model was untouched in that
        cycle).  With a compressing codec, range addressing into the blob
        is impossible and the full delta is read and decoded instead.
        """
        chain: list[dict] = []
        current_id = set_id
        while True:
            document = self.context.set_document(current_id)
            self._require_type(document, self.name, current_id)
            if document["kind"] == "full":
                state = read_single_model(
                    self.context, document, current_id, model_index
                )
                break
            chain.append(document)
            current_id = str(document["base_set"])

        for document in reversed(chain):
            self._apply_delta_to_model(state, document, model_index)
        return state

    def _apply_delta_to_model(
        self, state, document: dict, model_index: int
    ) -> None:
        schema = StateSchema.from_json(document["schema"])
        if int(document["num_models"]) <= model_index:
            raise RecoveryError(
                f"model index {model_index} out of range for delta set"
            )
        layer_entries = schema.entries
        layer_nbytes = [
            (int(np.prod(shape)) if shape else 1) * 4
            for _name, shape in layer_entries
        ]
        # Locate the target model's contiguous chunk within the blob.
        offset = 0
        target_layers: list[int] | None = None
        for diff_model, changed_layers in document["diff"]:
            chunk = sum(layer_nbytes[int(layer)] for layer in changed_layers)
            if int(diff_model) == model_index:
                target_layers = [int(layer) for layer in changed_layers]
                break
            offset += chunk
        if target_layers is None:
            return  # model untouched in this cycle
        length = sum(layer_nbytes[layer] for layer in target_layers)
        codec_name = str(document.get("codec", "none"))
        if codec_name == "none":
            payload = self.context.file_store.get_range(
                document["params_artifact"], offset=offset, length=length
            )
            cursor = 0
        else:
            payload = get_codec(codec_name).decode(
                self.context.file_store.get(document["params_artifact"])
            )
            cursor = offset
        for layer in target_layers:
            name, shape = layer_entries[layer]
            size = int(np.prod(shape)) if shape else 1
            values = np.frombuffer(payload, dtype=np.float32, count=size, offset=cursor)
            state[name] = values.reshape(shape).copy()
            cursor += size * 4

    def _apply_delta(self, base: ModelSet, document: dict) -> ModelSet:
        schema = StateSchema.from_json(document["schema"])
        if schema != base.schema:
            raise RecoveryError("delta schema does not match the base set's schema")
        payload = get_codec(str(document.get("codec", "none"))).decode(
            self.context.file_store.get(document["params_artifact"])
        )
        layer_entries = schema.entries
        derived = base.copy()
        cursor = 0
        for model_index, changed_layers in document["diff"]:
            state = derived.state(int(model_index))
            for layer in changed_layers:
                name, shape = layer_entries[int(layer)]
                size = int(np.prod(shape)) if shape else 1
                nbytes = size * 4
                if cursor + nbytes > len(payload):
                    raise RecoveryError("delta artifact is shorter than the diff list")
                values = np.frombuffer(
                    payload, dtype=np.float32, count=size, offset=cursor
                )
                state[name] = values.reshape(shape).copy()
                cursor += nbytes
        if cursor != len(payload):
            raise RecoveryError(
                f"delta artifact has {len(payload) - cursor} unused trailing bytes"
            )
        return derived
