"""Shared fixtures for the test suite.

Expensive artifacts (scenario use-case sequences, trained scenarios) are
session-scoped; anything mutated by tests is function-scoped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.battery.datagen import CellDataConfig
from repro.core.approach import SaveContext
from repro.core.model_set import ModelSet
from repro.training.pipeline import PipelineConfig
from repro.workloads.scenario import MultiModelScenario, ScenarioConfig, UseCase


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def context() -> SaveContext:
    """Fresh in-memory save context (zero-latency profile)."""
    return SaveContext.create()


@pytest.fixture(scope="session")
def small_model_set() -> ModelSet:
    """20 FFNN-48 models; session-scoped, treat as read-only."""
    return ModelSet.build("FFNN-48", num_models=20, seed=0)


@pytest.fixture(scope="session")
def tiny_data_config() -> CellDataConfig:
    return CellDataConfig(seed=5, samples_per_cell=96, cycle_duration_s=96)


@pytest.fixture(scope="session")
def synthetic_cases() -> list[UseCase]:
    """U1 + 2 update cycles over 30 models, synthetic (perturbed) updates."""
    config = ScenarioConfig(
        num_models=30,
        num_update_cycles=2,
        full_update_fraction=0.1,
        partial_update_fraction=0.1,
        seed=0,
        train_updates=False,
    )
    return list(MultiModelScenario(config).use_cases())


@pytest.fixture(scope="session")
def trained_cases(tiny_data_config: CellDataConfig) -> list[UseCase]:
    """U1 + 2 genuinely trained update cycles over 6 models."""
    config = ScenarioConfig(
        num_models=6,
        num_update_cycles=2,
        full_update_fraction=1 / 6,
        partial_update_fraction=1 / 6,
        seed=0,
        train_updates=True,
        data=tiny_data_config,
        pipeline=PipelineConfig(
            loss="mse",
            optimizer="sgd",
            learning_rate=0.01,
            momentum=0.9,
            epochs=1,
            batch_size=32,
        ),
    )
    return list(MultiModelScenario(config).use_cases())


def save_sequence(manager, cases: list[UseCase]) -> list[str]:
    """Save a use-case sequence through a manager; returns the set ids."""
    set_ids: list[str] = []
    for case in cases:
        base = set_ids[case.base_index] if case.base_index is not None else None
        set_ids.append(
            manager.save_set(
                case.model_set, base_set_id=base, update_info=case.update_info
            )
        )
    return set_ids
