"""Datasets derived from battery-pack telemetry.

Where :mod:`repro.datasets.battery` generates each cell's data from an
isolated ECM, this module trains cells from *pack* telemetry: the cell's
current is whatever the pack's parallel-group current split gave it, so
inhomogeneity effects (weak cells loafing, temperature spread) are in
the data.  References are deterministic, hence provenance-replayable.

Resolving a reference simulates the whole (small) pack; the registry
cache amortizes that across the cells of one pack/cycle.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.battery.drive_cycles import generate_drive_cycle
from repro.battery.noise import DEFAULT_NOISE_SIGMA, add_measurement_noise
from repro.battery.normalization import FeatureScaler
from repro.battery.pack import BatteryPack, PackConfig
from repro.datasets.base import ArrayDataset
from repro.datasets.registry import DatasetRef
from repro.training.seeds import derive_seed


def simulate_pack_cycle(
    config: PackConfig, update_cycle: int, duration_s: int, soh_decrement: float
):
    """Deterministically simulate one update cycle of a pack.

    SoH decreases uniformly per cycle here (per-cell rates come from the
    pack's parameter spread interacting with the load); the drive cycle
    is scaled to the pack's parallel count so per-cell currents stay in
    the single-cell range.
    """
    steps = max(duration_s, 60)
    soh = max(0.05, 1.0 - update_cycle * soh_decrement)
    pack = BatteryPack(
        config, soh_per_cell=np.full(config.num_cells, soh)
    )
    cycle = generate_drive_cycle(
        cycle_id=update_cycle, seed=config.seed, duration_s=steps
    )
    telemetry = pack.simulate(cycle.current_a * config.parallel_cells)
    return pack, telemetry


class PackCellDataset(ArrayDataset):
    """One cell's training samples extracted from pack telemetry."""

    def __init__(
        self,
        cell_index: int,
        update_cycle: int,
        pack_config: PackConfig,
        duration_s: int = 300,
        soh_decrement: float = 0.01,
    ) -> None:
        if not 0 <= cell_index < pack_config.num_cells:
            raise IndexError(
                f"cell_index {cell_index} out of range for a "
                f"{pack_config.num_cells}-cell pack"
            )
        _pack, telemetry = simulate_pack_cycle(
            pack_config, update_cycle, duration_s, soh_decrement
        )
        channels = telemetry.cell(cell_index)
        features = np.stack(
            [
                channels["current_a"],
                channels["temperature_c"],
                channels["charge_ah"],
                channels["soc"],
            ],
            axis=1,
        )
        targets = channels["voltage"][:, None]
        noise_rng = np.random.default_rng(
            derive_seed("pack-noise", pack_config.seed, cell_index, update_cycle)
        )
        features = add_measurement_noise(
            features,
            noise_rng,
            sigma=[
                DEFAULT_NOISE_SIGMA["current_a"],
                DEFAULT_NOISE_SIGMA["temperature_c"],
                DEFAULT_NOISE_SIGMA["charge_ah"],
                0.002,
            ],
        )
        targets = add_measurement_noise(
            targets, noise_rng, sigma=[DEFAULT_NOISE_SIGMA["voltage"]]
        )
        self.scaler = FeatureScaler.fit(features)
        self.target_scaler = FeatureScaler.fit(targets)
        super().__init__(
            self.scaler.transform(features).astype(np.float32),
            self.target_scaler.transform(targets).astype(np.float32),
        )
        self.cell_index = cell_index
        self.update_cycle = update_cycle


def pack_dataset_ref(
    cell_index: int,
    update_cycle: int,
    pack_config: PackConfig,
    duration_s: int = 300,
    soh_decrement: float = 0.01,
) -> DatasetRef:
    """Reference fully determining one cell's pack-telemetry dataset."""
    return DatasetRef(
        kind="pack-cell",
        params={
            "cell_index": int(cell_index),
            "update_cycle": int(update_cycle),
            "series_groups": int(pack_config.series_groups),
            "parallel_cells": int(pack_config.parallel_cells),
            "pack_seed": int(pack_config.seed),
            "parameter_spread": float(pack_config.parameter_spread),
            "duration_s": int(duration_s),
            "soh_decrement": float(soh_decrement),
        },
    )


def resolve_pack_ref(params: dict[str, Any]) -> PackCellDataset:
    """Resolver registered under the ``pack-cell`` kind."""
    config = PackConfig(
        series_groups=int(params["series_groups"]),
        parallel_cells=int(params["parallel_cells"]),
        seed=int(params["pack_seed"]),
        parameter_spread=float(params["parameter_spread"]),
    )
    return PackCellDataset(
        cell_index=int(params["cell_index"]),
        update_cycle=int(params["update_cycle"]),
        pack_config=config,
        duration_s=int(params["duration_s"]),
        soh_decrement=float(params["soh_decrement"]),
    )
