"""Battery-pack simulation: many inhomogeneous cells in series/parallel.

The paper's motivating deployment is one DL model per cell of an
electric-car battery, "consist[ing] of thousands of individual cells"
(§1), citing Neupert & Kowal's pack-inhomogeneity study.  This module
simulates that pack so the multi-model workload has a physically
grounded source:

* a pack is ``series_groups`` groups in series, each of
  ``parallel_cells`` cells in parallel,
* every cell is an independently perturbed, independently aged
  :class:`~repro.battery.ecm.SecondOrderECM`,
* within a parallel group, the group current splits so all branches see
  the same terminal voltage — weaker (higher-resistance, lower-OCV)
  cells carry less current, exactly the inhomogeneity effect the cited
  study measures, and
* per-cell telemetry (current, temperature, charge, SoC, voltage) is
  recorded, which is what the per-cell models train on.

The current split solves the linearized branch equations per time step:
with branch model ``V = ocv_i - I_i * R_i - pol_i`` and the constraint
``sum(I_i) = I_group``, the exact split is

.. code-block:: text

    I_i = ((ocv_i - pol_i) - V) / R_i
    V   = (sum((ocv_j - pol_j) / R_j) - I_group) / sum(1 / R_j)

which is exact for the resistive part and first-order for the RC
polarization within one 1 Hz step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.battery.ecm import CellParameters, open_circuit_voltage


@dataclass(frozen=True)
class PackConfig:
    """Geometry and spread of a simulated pack.

    A compact EV-style default: 96 series groups of 4 parallel cells
    (384 cells).  ``parameter_spread`` is the relative manufacturing
    spread applied per cell; ``soh`` optionally ages cells individually.
    """

    series_groups: int = 96
    parallel_cells: int = 4
    seed: int = 0
    parameter_spread: float = 0.05

    def __post_init__(self) -> None:
        if self.series_groups <= 0 or self.parallel_cells <= 0:
            raise ValueError("pack geometry must be positive")
        if not 0.0 <= self.parameter_spread < 1.0:
            raise ValueError("parameter_spread must be in [0, 1)")

    @property
    def num_cells(self) -> int:
        return self.series_groups * self.parallel_cells


@dataclass
class PackTelemetry:
    """Per-cell time series recorded during a pack simulation.

    All arrays have shape ``(steps, num_cells)``; cells are indexed
    ``group * parallel_cells + branch``.  ``pack_voltage`` has shape
    ``(steps,)``.
    """

    current_a: np.ndarray
    voltage: np.ndarray
    temperature_c: np.ndarray
    charge_ah: np.ndarray
    soc: np.ndarray
    pack_voltage: np.ndarray = field(default_factory=lambda: np.empty(0))

    def cell(self, cell_index: int) -> dict[str, np.ndarray]:
        """One cell's telemetry as named channels."""
        return {
            "current_a": self.current_a[:, cell_index],
            "voltage": self.voltage[:, cell_index],
            "temperature_c": self.temperature_c[:, cell_index],
            "charge_ah": self.charge_ah[:, cell_index],
            "soc": self.soc[:, cell_index],
        }


class _CellState:
    """Integrator state of one cell inside the pack."""

    __slots__ = ("params", "soc", "temp", "v1", "v2")

    def __init__(self, params: CellParameters, initial_soc: float) -> None:
        self.params = params
        self.soc = initial_soc
        self.temp = params.ambient_temp_c
        self.v1 = 0.0
        self.v2 = 0.0

    @property
    def polarization(self) -> float:
        return self.v1 + self.v2

    def effective_r0(self) -> float:
        return self.params.r0_ohm * (
            1.0 + 0.003 * (self.temp - self.params.ambient_temp_c)
        )

    def step(self, amps: float, dt_s: float) -> float:
        """Advance one time step under branch current ``amps``.

        Returns the cell's terminal voltage at the step.
        """
        params = self.params
        tau1 = params.r1_ohm * params.c1_farad
        tau2 = params.r2_ohm * params.c2_farad
        self.v1 += dt_s * (amps / params.c1_farad - self.v1 / tau1)
        self.v2 += dt_s * (amps / params.c2_farad - self.v2 / tau2)
        r0 = self.effective_r0()
        terminal = (
            float(open_circuit_voltage(self.soc)) - amps * r0 - self.v1 - self.v2
        )
        self.soc = min(
            1.0, max(0.0, self.soc - amps * dt_s / (3600.0 * params.capacity_ah))
        )
        heat_w = amps * amps * (r0 + params.r1_ohm + params.r2_ohm)
        cool_w = params.cooling_w_per_k * (self.temp - params.ambient_temp_c)
        self.temp += dt_s * (heat_w - cool_w) / params.thermal_mass_j_per_k
        return terminal


class BatteryPack:
    """Series/parallel pack of individually perturbed and aged cells."""

    def __init__(
        self,
        config: PackConfig | None = None,
        soh_per_cell: np.ndarray | list[float] | None = None,
    ) -> None:
        self.config = config if config is not None else PackConfig()
        num_cells = self.config.num_cells
        if soh_per_cell is None:
            soh = np.ones(num_cells)
        else:
            soh = np.asarray(soh_per_cell, dtype=np.float64)
            if soh.shape != (num_cells,):
                raise ValueError(
                    f"soh_per_cell must have shape ({num_cells},), got {soh.shape}"
                )
            if np.any((soh <= 0) | (soh > 1)):
                raise ValueError("per-cell SoH must be in (0, 1]")
        self.soh_per_cell = soh
        base = CellParameters()
        self._cells: list[_CellState] = []
        for index in range(num_cells):
            rng = np.random.default_rng(
                np.random.SeedSequence([self.config.seed, index, 0x9ACC])
            )
            params = base.perturbed(rng, spread=self.config.parameter_spread)
            self._cells.append(_CellState(params.aged(float(soh[index])), 0.95))

    @property
    def num_cells(self) -> int:
        return self.config.num_cells

    def cell_parameters(self, cell_index: int) -> CellParameters:
        """The (perturbed, aged) ECM parameters of one cell."""
        return self._cells[cell_index].params

    def simulate(
        self, pack_current_a: np.ndarray, dt_s: float = 1.0
    ) -> PackTelemetry:
        """Integrate the pack response to a pack-level current profile.

        ``pack_current_a`` is the current through the series string
        (positive = discharge); each parallel group splits it per the
        branch equations in the module docstring.
        """
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        current = np.asarray(pack_current_a, dtype=np.float64)
        steps = current.shape[0]
        parallel = self.config.parallel_cells
        num_cells = self.num_cells

        cell_current = np.empty((steps, num_cells))
        cell_voltage = np.empty((steps, num_cells))
        cell_temp = np.empty((steps, num_cells))
        cell_charge = np.empty((steps, num_cells))
        cell_soc = np.empty((steps, num_cells))
        pack_voltage = np.empty(steps)

        for step in range(steps):
            group_current = current[step]
            total_v = 0.0
            for group in range(self.config.series_groups):
                cells = self._cells[group * parallel : (group + 1) * parallel]
                # Exact resistive split with frozen polarization/OCV.
                inv_r = np.array([1.0 / c.effective_r0() for c in cells])
                emf = np.array(
                    [
                        float(open_circuit_voltage(c.soc)) - c.polarization
                        for c in cells
                    ]
                )
                group_v = (float(np.dot(emf, inv_r)) - group_current) / float(
                    inv_r.sum()
                )
                branch = (emf - group_v) * inv_r
                for offset, (cell, amps) in enumerate(zip(cells, branch)):
                    index = group * parallel + offset
                    terminal = cell.step(float(amps), dt_s)
                    cell_current[step, index] = amps
                    cell_voltage[step, index] = terminal
                    cell_temp[step, index] = cell.temp
                    cell_charge[step, index] = cell.soc * cell.params.capacity_ah
                    cell_soc[step, index] = cell.soc
                total_v += group_v
            pack_voltage[step] = total_v

        return PackTelemetry(
            current_a=cell_current,
            voltage=cell_voltage,
            temperature_c=cell_temp,
            charge_ah=cell_charge,
            soc=cell_soc,
            pack_voltage=pack_voltage,
        )

    # -- pack analytics --------------------------------------------------------
    def imbalance_report(
        self, telemetry: PackTelemetry, min_current_a: float = 0.25
    ) -> dict[str, float]:
        """Inhomogeneity metrics over a simulation run.

        ``current_spread`` is the mean, over loaded time steps, of the
        within-group relative current spread — the headline inhomogeneity
        figure of the cited study.  Steps with |group current| below
        ``min_current_a`` (stops, coasting) are excluded: tiny circulating
        currents there would make the relative spread meaningless.
        """
        parallel = self.config.parallel_cells
        groups = telemetry.current_a.reshape(
            telemetry.current_a.shape[0], self.config.series_groups, parallel
        )
        mean_current = np.abs(groups.mean(axis=2))
        loaded = mean_current >= min_current_a
        spread = np.zeros_like(mean_current)
        np.divide(
            groups.max(axis=2) - groups.min(axis=2),
            mean_current,
            out=spread,
            where=loaded,
        )
        current_spread = float(spread[loaded].mean()) if loaded.any() else 0.0
        return {
            "current_spread": current_spread,
            "temperature_spread_c": float(
                (telemetry.temperature_c.max(axis=1)
                 - telemetry.temperature_c.min(axis=1)).mean()
            ),
            "soc_spread": float(
                (telemetry.soc.max(axis=1) - telemetry.soc.min(axis=1)).mean()
            ),
        }
