"""Tests for the second-order equivalent circuit model."""

import numpy as np
import pytest

from repro.battery.ecm import (
    CellParameters,
    SecondOrderECM,
    open_circuit_voltage,
)


class TestOpenCircuitVoltage:
    def test_monotonically_increasing_in_soc(self):
        soc = np.linspace(0, 1, 101)
        ocv = open_circuit_voltage(soc)
        assert np.all(np.diff(ocv) >= 0)

    def test_range_matches_nmc_cell(self):
        assert open_circuit_voltage(0.0) == pytest.approx(3.0)
        assert open_circuit_voltage(1.0) == pytest.approx(4.2)


class TestCellParameters:
    def test_perturbed_stays_within_spread(self):
        base = CellParameters()
        jittered = base.perturbed(np.random.default_rng(0), spread=0.05)
        assert abs(jittered.capacity_ah - base.capacity_ah) <= 0.05 * base.capacity_ah
        assert abs(jittered.r0_ohm - base.r0_ohm) <= 0.05 * base.r0_ohm

    def test_perturbed_is_deterministic(self):
        base = CellParameters()
        a = base.perturbed(np.random.default_rng(5))
        b = base.perturbed(np.random.default_rng(5))
        assert a == b

    def test_aging_reduces_capacity_and_raises_resistance(self):
        base = CellParameters()
        aged = base.aged(0.8)
        assert aged.capacity_ah == pytest.approx(base.capacity_ah * 0.8)
        assert aged.r0_ohm == pytest.approx(base.r0_ohm / 0.8)

    def test_aged_rejects_invalid_soh(self):
        with pytest.raises(ValueError):
            CellParameters().aged(0.0)
        with pytest.raises(ValueError):
            CellParameters().aged(1.5)


class TestSimulation:
    def test_output_lengths_match_input(self):
        ecm = SecondOrderECM()
        result = ecm.simulate(np.ones(100))
        for series in (
            result.voltage,
            result.temperature_c,
            result.charge_ah,
            result.soc,
        ):
            assert series.shape == (100,)

    def test_discharge_reduces_soc_and_charge(self):
        ecm = SecondOrderECM()
        result = ecm.simulate(np.full(600, 2.0), initial_soc=0.9)
        assert result.soc[-1] < 0.9
        assert np.all(np.diff(result.soc) <= 1e-12)
        assert result.charge_ah[-1] < result.charge_ah[0]

    def test_charging_current_raises_soc(self):
        ecm = SecondOrderECM()
        result = ecm.simulate(np.full(600, -2.0), initial_soc=0.5)
        assert result.soc[-1] > 0.5

    def test_terminal_voltage_sags_under_load(self):
        ecm = SecondOrderECM()
        rest = ecm.simulate(np.zeros(10), initial_soc=0.8)
        load = ecm.simulate(np.full(10, 5.0), initial_soc=0.8)
        assert load.voltage[0] < rest.voltage[0]

    def test_temperature_rises_under_sustained_load(self):
        ecm = SecondOrderECM()
        result = ecm.simulate(np.full(1800, 4.0))
        assert result.temperature_c[-1] > result.temperature_c[0] + 1.0

    def test_temperature_relaxes_to_ambient_at_rest(self):
        ecm = SecondOrderECM()
        result = ecm.simulate(np.zeros(3600), initial_temp_c=40.0)
        ambient = ecm.parameters.ambient_temp_c
        assert abs(result.temperature_c[-1] - ambient) < abs(40.0 - ambient)

    def test_aged_cell_sags_more(self):
        current = np.full(60, 3.0)
        fresh = SecondOrderECM(soh=1.0).simulate(current, initial_soc=0.8)
        aged = SecondOrderECM(soh=0.8).simulate(current, initial_soc=0.8)
        assert aged.voltage.mean() < fresh.voltage.mean()

    def test_soc_clamped_to_unit_interval(self):
        ecm = SecondOrderECM()
        # Massive discharge would push SoC below zero without clamping.
        result = ecm.simulate(np.full(7200, 10.0), initial_soc=0.2)
        assert np.all((result.soc >= 0.0) & (result.soc <= 1.0))

    def test_deterministic(self):
        current = np.sin(np.linspace(0, 10, 500)) * 2 + 2
        a = SecondOrderECM().simulate(current)
        b = SecondOrderECM().simulate(current)
        assert np.array_equal(a.voltage, b.voltage)

    def test_rejects_bad_arguments(self):
        ecm = SecondOrderECM()
        with pytest.raises(ValueError):
            ecm.simulate(np.ones(10), dt_s=0.0)
        with pytest.raises(ValueError):
            ecm.simulate(np.ones(10), initial_soc=1.5)

    def test_rc_polarization_builds_up(self):
        # Under a current step, the RC branches make voltage keep sagging
        # after the instantaneous IR drop.
        ecm = SecondOrderECM()
        result = ecm.simulate(np.full(300, 3.0), initial_soc=0.8)
        assert result.voltage[120] < result.voltage[1]
