"""Acceptance crash matrix: kill a save at *every* fault point.

For each approach x {initial, derived} x dedup {off, on}, the matrix
enumerates the save's mutating operations with a dry run, then replays
the save once per operation with an injected process kill at exactly
that point.  After each crash, journal recovery (the same code path
``MultiModelManager.open`` runs) must leave the archive on the previous
consistent state: the torn set rolled back, prior sets byte-identical,
and the fsck audit clean — no dangling artifacts, no refcount drift.

The in-memory sweeps cover the full matrix cheaply; the persistent
sweeps additionally exercise a real process boundary (reopen from disk)
and the parallel engine (``workers=4``).

``REPRO_FAULT_SEED`` offsets every injector seed, changing which crash
mode (before / after / torn) fires at each point — CI sweeps the matrix
under more than one schedule without the test code hardcoding them.
"""

import os
import shutil

import pytest

from repro.battery.datagen import CellDataConfig
from repro.config import ArchiveConfig
from repro.core.approach import SaveContext
from repro.core.fsck import ArchiveFsck
from repro.core.manager import APPROACHES, MultiModelManager
from repro.core.model_set import ModelSet
from repro.core.save_info import ModelUpdate, UpdateInfo
from repro.datasets.battery import battery_dataset_ref
from repro.errors import SimulatedCrashError
from repro.storage.faults import FaultInjector, inject_faults
from repro.storage.journal import attach_journal
from repro.training.pipeline import PipelineConfig, TrainingPipeline

NUM_MODELS = 3
SEED_BASE = int(os.environ.get("REPRO_FAULT_SEED", "0"))
_DATA_CONFIG = CellDataConfig(seed=4, samples_per_cell=64, cycle_duration_s=64)
_PIPELINES = {
    "full": PipelineConfig(
        learning_rate=0.01, momentum=0.9, epochs=1, batch_size=32, shuffle_seed=8
    )
}


def base_models():
    return ModelSet.build("FFNN-48", num_models=NUM_MODELS, seed=0)


@pytest.fixture(scope="module")
def model_sets():
    """(base, derived-by-mutation, derived-by-training, update_info)."""
    models = base_models()
    mutated = models.copy()
    mutated.state(0)["0.bias"][:] += 1.0
    mutated.state(2)["4.weight"][:] *= 1.25

    info = UpdateInfo(
        pipelines=_PIPELINES,
        updates=(ModelUpdate(1, battery_dataset_ref(1, 1, _DATA_CONFIG), "full"),),
    )
    trained = models.copy()
    from repro.datasets.registry import default_registry

    registry = default_registry()
    for update in info.updates:
        model = trained.build_model(update.model_index)
        dataset = registry.resolve(update.dataset_ref)
        TrainingPipeline(info.pipelines[update.pipeline_key]).train(model, dataset)
        trained.states[update.model_index] = model.state_dict()
    return models, mutated, trained, info


def make_manager(approach, dedup):
    context = SaveContext.create(ArchiveConfig(dedup=dedup))
    attach_journal(context)
    return MultiModelManager.with_approach(approach, context=context)


def derived_args(approach, model_sets):
    """(derived set, update_info) appropriate for the approach."""
    _models, mutated, trained, info = model_sets
    if approach == "provenance":
        return trained, info
    return mutated, None


def run_sweep(approach, dedup, phase, model_sets, workers=1):
    """Crash an identical save at every fault point; verify each aftermath."""
    models = model_sets[0]
    derived, info = derived_args(approach, model_sets)

    # Dry run: count the target save's fault points and record what a
    # clean save recovers to (lossy approaches round, e.g. fp16).
    probe = make_manager(approach, dedup)
    probe.context.workers = workers
    probe_base = probe.save_set(models) if phase == "derived" else None
    injector = inject_faults(probe.context, FaultInjector())
    if phase == "initial":
        probe_id = probe.save_set(models)
    else:
        probe_id = probe.save_set(derived, base_set_id=probe_base, update_info=info)
    ops = injector.ops
    assert ops > 0, f"{approach} {phase} save has no mutating operations"
    ref_target = probe.recover_set(probe_id)
    ref_base = probe.recover_set(probe_base) if probe_base else None

    for point in range(ops):
        manager = make_manager(approach, dedup)
        manager.context.workers = workers
        expected_sets = []
        if phase == "derived":
            base_id = manager.save_set(models)
            expected_sets = [base_id]
        inject_faults(
            manager.context, FaultInjector(seed=SEED_BASE + point, crash_at=point)
        )
        with pytest.raises(SimulatedCrashError):
            if phase == "initial":
                manager.save_set(models)
            else:
                manager.save_set(
                    derived, base_set_id=expected_sets[0], update_info=info
                )

        # The "reopen": exactly what MultiModelManager.open runs.
        report = manager.context.journal.recover()
        assert not report.clean, f"crash at op {point} left no journal entry"
        assert manager.list_sets() == expected_sets, (
            f"crash at op {point} left a torn set behind"
        )
        if expected_sets:
            assert manager.recover_set(expected_sets[0]).equals(ref_base)
        fsck = ArchiveFsck(manager.context).run()
        assert fsck.ok, f"crash at op {point}: {fsck.summary()}"

        # The archive is fully usable again: the same save now succeeds.
        if point == ops - 1:
            if phase == "initial":
                retry_id = manager.save_set(models)
            else:
                retry_id = manager.save_set(
                    derived, base_set_id=expected_sets[0], update_info=info
                )
            assert manager.recover_set(retry_id).equals(ref_target)


@pytest.mark.parametrize("dedup", [False, True], ids=["plain", "dedup"])
@pytest.mark.parametrize("approach", sorted(APPROACHES))
class TestCrashMatrixInMemory:
    def test_initial_save(self, approach, dedup, model_sets):
        run_sweep(approach, dedup, "initial", model_sets)

    def test_derived_save(self, approach, dedup, model_sets):
        run_sweep(approach, dedup, "derived", model_sets)


class TestCrashMatrixPersistent:
    """Real process boundary: the crashed archive is reopened from disk."""

    @pytest.mark.parametrize(
        "approach,dedup",
        [("baseline", False), ("update", True), ("mmlib-base", False)],
    )
    def test_every_fault_point_rolls_back_on_reopen(
        self, tmp_path, approach, dedup, model_sets
    ):
        models = model_sets[0]
        derived, info = derived_args(approach, model_sets)

        template = tmp_path / "template"
        manager = MultiModelManager.open(str(template), approach, ArchiveConfig(dedup=dedup))
        base_id = manager.save_set(models)

        probe_dir = tmp_path / "probe"
        shutil.copytree(template, probe_dir)
        probe = MultiModelManager.open(str(probe_dir), approach, ArchiveConfig(dedup=dedup))
        injector = inject_faults(probe.context, FaultInjector())
        probe.save_set(derived, base_set_id=base_id, update_info=info)
        ops = injector.ops
        assert ops > 0

        for point in range(ops):
            workdir = tmp_path / f"crash-{point}"
            shutil.copytree(template, workdir)
            victim = MultiModelManager.open(str(workdir), approach, ArchiveConfig(dedup=dedup))
            inject_faults(
                victim.context, FaultInjector(seed=SEED_BASE + point, crash_at=point)
            )
            with pytest.raises(SimulatedCrashError):
                victim.save_set(derived, base_set_id=base_id, update_info=info)

            reopened = MultiModelManager.open(str(workdir), approach, ArchiveConfig(dedup=dedup))
            assert not reopened.recovery_report.clean
            assert reopened.list_sets() == [base_id]
            assert reopened.recover_set(base_id).equals(models)
            fsck = ArchiveFsck(reopened.context).run()
            assert fsck.ok, f"crash at op {point}: {fsck.summary()}"

    def test_parallel_engine_crashes_roll_back(self, tmp_path, model_sets):
        """workers=4: fault ordinals interleave nondeterministically, but
        every aftermath must still recover to the base state."""
        models = model_sets[0]
        derived, _ = derived_args("update", model_sets)

        template = tmp_path / "template"
        manager = MultiModelManager.open(
            str(template), "update", ArchiveConfig(dedup=True, workers=4)
        )
        base_id = manager.save_set(models)

        probe_dir = tmp_path / "probe"
        shutil.copytree(template, probe_dir)
        probe = MultiModelManager.open(
            str(probe_dir), "update", ArchiveConfig(dedup=True, workers=4)
        )
        injector = inject_faults(probe.context, FaultInjector())
        probe.save_set(derived, base_set_id=base_id)
        ops = injector.ops
        assert ops > 0

        for point in range(ops):
            workdir = tmp_path / f"crash-{point}"
            shutil.copytree(template, workdir)
            victim = MultiModelManager.open(
                str(workdir), "update", ArchiveConfig(dedup=True, workers=4)
            )
            inject_faults(
                victim.context, FaultInjector(seed=SEED_BASE + point, crash_at=point)
            )
            with pytest.raises(SimulatedCrashError):
                victim.save_set(derived, base_set_id=base_id)

            reopened = MultiModelManager.open(
                str(workdir), "update", ArchiveConfig(dedup=True, workers=4)
            )
            assert reopened.list_sets() == [base_id]
            assert reopened.recover_set(base_id).equals(models)
            assert ArchiveFsck(reopened.context).run().ok
