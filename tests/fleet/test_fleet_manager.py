"""FleetManager contracts: routing, reopen, observability, guards."""

import hashlib

import numpy as np
import pytest

from repro.config import ArchiveConfig, ObservabilityConfig
from repro.core.manager import MultiModelManager
from repro.errors import ConfigError, DocumentNotFoundError, StorageError
from repro.fleet import FleetManager, IngestQueue, shard_for
from repro.observability.metrics import global_registry
from repro.storage.persistent import detect_shards, open_context


def perturbed(model_set, delta=0.5):
    out = model_set.copy()
    for name in out.states[0]:
        out.states[0][name] = (out.states[0][name] + delta).astype(
            out.states[0][name].dtype
        )
    return out


class TestRouting:
    def test_shard_for_is_stable_sha256(self):
        digest = hashlib.sha256(b"set-update-000007").digest()
        expected = int.from_bytes(digest[:8], "big") % 4
        assert shard_for("set-update-000007", 4) == expected
        # Repeatable, and single-shard fleets always route to 0.
        assert shard_for("set-update-000007", 4) == expected
        assert shard_for("anything", 1) == 0

    def test_initial_saves_route_by_id_hash(self, tiny_set):
        fleet = FleetManager.with_approach("update", ArchiveConfig(shards=4))
        for _ in range(8):
            set_id = fleet.save_set(tiny_set)
            assert fleet.shard_of(set_id) == shard_for(set_id, 4)

    def test_derived_saves_follow_their_base_shard(self, tiny_set):
        fleet = FleetManager.with_approach("update", ArchiveConfig(shards=4))
        base = fleet.save_set(tiny_set)
        current, chain = base, [base]
        for step in range(5):
            current = fleet.save_set(
                perturbed(tiny_set, 0.1 * (step + 1)), base_set_id=current
            )
            chain.append(current)
        shards = {fleet.shard_of(set_id) for set_id in chain}
        assert len(shards) == 1  # the whole chain is shard-local
        assert fleet.root_of(current) == base

    def test_recover_round_trips_and_recover_model(self, tiny_set):
        fleet = FleetManager.with_approach("update", ArchiveConfig(shards=3))
        derived = perturbed(tiny_set)
        base = fleet.save_set(tiny_set)
        set_id = fleet.save_set(derived, base_set_id=base)
        assert fleet.recover_set(set_id).equals(derived)
        np.testing.assert_array_equal(
            fleet.recover_model(set_id, 0)[next(iter(derived.state(0)))],
            derived.state(0)[next(iter(derived.state(0)))],
        )

    def test_unknown_set_raises(self, tiny_set):
        fleet = FleetManager.with_approach("update", ArchiveConfig(shards=2))
        with pytest.raises(DocumentNotFoundError):
            fleet.recover_set("set-update-999999")
        with pytest.raises(DocumentNotFoundError):
            fleet.save_set(tiny_set, base_set_id="set-update-999999")

    def test_list_find_and_totals_aggregate_shards(self, tiny_set):
        fleet = FleetManager.with_approach("update", ArchiveConfig(shards=4))
        ids = [fleet.save_set(tiny_set) for _ in range(6)]
        assert fleet.list_sets() == sorted(ids)
        assert fleet.find_sets(approach="update") == sorted(ids)
        assert fleet.total_stored_bytes() == sum(
            m.total_stored_bytes() for m in fleet.shards
        )

    def test_delete_sets_routes_and_forgets(self, tiny_set):
        fleet = FleetManager.with_approach("update", ArchiveConfig(shards=2))
        ids = [fleet.save_set(tiny_set) for _ in range(4)]
        reports = fleet.delete_sets(ids[:2])
        deleted = [s for r in reports.values() for s in r.deleted_sets]
        assert sorted(deleted) == sorted(ids[:2])
        assert fleet.list_sets() == sorted(ids[2:])
        with pytest.raises(DocumentNotFoundError):
            fleet.recover_set(ids[0])


class TestDurability:
    def test_reopen_detects_topology_and_resumes_ids(self, tmp_path, tiny_set):
        fleet = FleetManager.open(
            tmp_path / "fleet", "update", ArchiveConfig(shards=3)
        )
        ids = [fleet.save_set(tiny_set) for _ in range(5)]
        placement = {set_id: fleet.shard_of(set_id) for set_id in ids}

        reopened = FleetManager.open(tmp_path / "fleet", "update")
        assert reopened.num_shards == 3
        assert reopened.list_sets() == sorted(ids)
        # Placement is rebuilt identically (routing is a pure id hash).
        assert {s: reopened.shard_of(s) for s in ids} == placement
        assert reopened.recover_set(ids[-1]).equals(tiny_set)
        # The fleet id counter resumes after the highest stored id.
        new_id = reopened.save_set(tiny_set)
        assert new_id == f"set-update-{len(ids):06d}"

    def test_detect_shards(self, tmp_path, tiny_set):
        assert detect_shards(tmp_path) == 0
        FleetManager.open(tmp_path / "f", "update", ArchiveConfig(shards=2))
        assert detect_shards(tmp_path / "f") == 2
        (tmp_path / "f" / "shard-xyz").mkdir()  # non-numeric: ignored
        assert detect_shards(tmp_path / "f") == 2

    def test_resharding_is_refused(self, tmp_path, tiny_set):
        FleetManager.open(tmp_path / "f", "update", ArchiveConfig(shards=2))
        with pytest.raises(ConfigError, match="resharding"):
            FleetManager.open(tmp_path / "f", "update", ArchiveConfig(shards=4))

    def test_plain_archive_is_refused(self, tmp_path, tiny_set):
        manager = MultiModelManager.open(str(tmp_path / "plain"), "update")
        manager.save_set(tiny_set)
        with pytest.raises(StorageError, match="plain single archive"):
            FleetManager.open(tmp_path / "plain", "update")

    def test_single_archive_open_refuses_fleet_layout(self, tmp_path, tiny_set):
        FleetManager.open(tmp_path / "f", "update", ArchiveConfig(shards=2))
        with pytest.raises(StorageError, match="fleet"):
            open_context(str(tmp_path / "f"))
        with pytest.raises(StorageError, match="fleet"):
            MultiModelManager.open(str(tmp_path / "f"), "update")

    def test_manager_refuses_sharded_config(self):
        with pytest.raises(ConfigError, match="FleetManager"):
            MultiModelManager.with_approach("update", ArchiveConfig(shards=2))

    def test_replication_composes_under_sharding(self, tmp_path, tiny_set):
        config = ArchiveConfig(shards=2, replicas=3)
        fleet = FleetManager.open(tmp_path / "fr", "update", config)
        set_id = fleet.save_set(tiny_set)
        shard_dir = tmp_path / "fr" / f"shard-{fleet.shard_of(set_id)}"
        assert (shard_dir / "replica-0").is_dir()
        assert (shard_dir / "replica-2").is_dir()
        reopened = FleetManager.open(tmp_path / "fr", "update")
        assert reopened.recover_set(set_id).equals(tiny_set)


class TestObservability:
    def config(self):
        return ArchiveConfig(
            shards=2,
            observability=ObservabilityConfig(tracing=True, metrics=True),
        )

    def test_fleet_spans_wrap_shard_saves(self, tiny_set):
        fleet = FleetManager.with_approach("update", self.config())
        set_id = fleet.save_set(tiny_set)
        root = fleet.tracer.last_root
        assert root.name == "fleet"
        assert root.key == set_id  # deterministic root identity
        (shard_span,) = root.sorted_children()
        assert shard_span.name == f"shard-{fleet.shard_of(set_id)}"
        assert shard_span.sorted_children()[0].name == "save_set"

    def test_coalesce_span_between_envelope_and_save(self, tiny_set):
        fleet = FleetManager.with_approach("update", self.config())
        base = fleet.save_set(tiny_set)
        with IngestQueue(fleet, flush_max_updates=2, workers=0) as queue:
            queue.submit(base, 0, tiny_set.state(0))
            queue.submit(base, 1, tiny_set.state(1))
        save_roots = [r for r in fleet.tracer.roots if r.attrs.get("op") == "save"]
        envelope = save_roots[-1]
        (shard_span,) = envelope.sorted_children()
        (coalesce,) = [
            child
            for child in shard_span.sorted_children()
            if child.name == "coalesce"
        ]
        assert coalesce.attrs == {"updates": 2, "models": 2}
        assert coalesce.sorted_children()[0].name == "save_set"

    def test_per_shard_metrics_and_lock_wait_counters(self, tiny_set):
        fleet = FleetManager.with_approach("update", self.config())
        ids = [fleet.save_set(tiny_set) for _ in range(4)]
        values = global_registry().collect()
        assert values["fleet_shards"] == 2
        per_shard = [values[f"fleet_shard_{i}_sets"] for i in range(2)]
        assert sum(per_shard) == len(ids)
        for index in range(2):
            assert f"fleet_shard_{index}_lock_wait_s_total" in values
            assert values[f"fleet_shard_{index}_lock_wait_s"] >= 0.0
            assert values[f"fleet_shard_{index}_file_store_bytes_written"] > 0
        assert sum(
            values[f"fleet_shard_{i}_stored_bytes"] for i in range(2)
        ) == fleet.total_stored_bytes()
