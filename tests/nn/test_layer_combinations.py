"""Deeper coverage: layer combinations, geometry edge cases, and
end-to-end gradient checks through composed networks."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    MSELoss,
    ReLU,
    Sequential,
    SGD,
    Tanh,
)
from tests.nn.test_layers import numerical_gradient


class TestConvGeometry:
    @pytest.mark.parametrize(
        "kernel,stride,padding,in_hw,out_hw",
        [
            (3, 1, 0, 8, 6),
            (3, 1, 1, 8, 8),
            (3, 2, 1, 8, 4),
            (5, 1, 2, 8, 8),
            (2, 2, 0, 8, 4),
            (1, 1, 0, 8, 8),
        ],
    )
    def test_output_geometry(self, rng, kernel, stride, padding, in_hw, out_hw):
        layer = Conv2d(2, 3, kernel_size=kernel, stride=stride, padding=padding,
                       rng=rng)
        out = layer(rng.normal(size=(1, 2, in_hw, in_hw)).astype(np.float32))
        assert out.shape == (1, 3, out_hw, out_hw)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1), (1, 2)])
    def test_gradcheck_across_geometries(self, rng, stride, padding):
        layer = Conv2d(1, 2, kernel_size=3, stride=stride, padding=padding,
                       rng=rng)
        x = rng.normal(size=(2, 1, 6, 6)).astype(np.float32)

        def loss():
            return float(np.sum(layer(x) ** 2))

        out = layer(x)
        layer.zero_grad()
        grad_in = layer.backward(2.0 * out)
        assert np.allclose(
            grad_in, numerical_gradient(loss, x), rtol=3e-2, atol=3e-2
        )
        assert np.allclose(
            layer.weight.grad,
            numerical_gradient(loss, layer.weight.data),
            rtol=3e-2,
            atol=3e-2,
        )

    def test_kernel_one_equals_per_pixel_linear(self, rng):
        conv = Conv2d(3, 2, kernel_size=1, rng=rng)
        x = rng.normal(size=(1, 3, 4, 4)).astype(np.float32)
        out = conv(x)
        flat_w = conv.weight.data.reshape(2, 3)
        manual = np.einsum("oc,bchw->bohw", flat_w, x) + conv.bias.data[
            None, :, None, None
        ]
        assert np.allclose(out, manual, atol=1e-5)


class TestPoolingGeometry:
    def test_maxpool_stride_smaller_than_kernel(self, rng):
        pool = MaxPool2d(3, stride=1)
        x = rng.normal(size=(1, 1, 5, 5)).astype(np.float32)
        out = pool(x)
        assert out.shape == (1, 1, 3, 3)
        assert out[0, 0, 0, 0] == x[0, 0, :3, :3].max()

    def test_overlapping_maxpool_gradcheck(self, rng):
        pool = MaxPool2d(2, stride=1)
        x = rng.normal(size=(1, 2, 4, 4)).astype(np.float32)

        def loss():
            return float(np.sum(pool(x) ** 2))

        out = pool(x)
        grad = pool.backward(2.0 * out)
        assert np.allclose(
            grad, numerical_gradient(loss, x), rtol=3e-2, atol=3e-2
        )

    def test_avgpool_gradcheck(self, rng):
        pool = AvgPool2d(2)
        x = rng.normal(size=(2, 1, 4, 4)).astype(np.float32)

        def loss():
            return float(np.sum(pool(x) ** 2))

        out = pool(x)
        grad = pool.backward(2.0 * out)
        assert np.allclose(
            grad, numerical_gradient(loss, x), rtol=2e-2, atol=2e-2
        )


class TestComposedNetworks:
    def test_cnn_head_gradcheck(self, rng):
        model = Sequential(
            Conv2d(1, 2, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(2 * 3 * 3, 4, rng=rng),
            Tanh(),
            Linear(4, 2, rng=rng),
        )
        x = rng.normal(size=(3, 1, 6, 6)).astype(np.float32)

        def loss():
            return float(np.sum(model(x) ** 2))

        out = model(x)
        model.zero_grad()
        grad_in = model.backward(2.0 * out)
        assert np.allclose(
            grad_in, numerical_gradient(loss, x), rtol=4e-2, atol=4e-2
        )
        first_conv = model[0]
        assert np.allclose(
            first_conv.weight.grad,
            numerical_gradient(loss, first_conv.weight.data),
            rtol=4e-2,
            atol=4e-2,
        )

    def test_deep_mlp_trains_xor(self):
        # A classic non-linear task end-to-end through the framework.
        x = np.array(
            [[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.float32
        )
        y = np.array([[0], [1], [1], [0]], dtype=np.float32)
        rng = np.random.default_rng(3)
        model = Sequential(
            Linear(2, 8, rng=rng), Tanh(), Linear(8, 8, rng=rng), Tanh(),
            Linear(8, 1, rng=rng),
        )
        loss = MSELoss()
        optimizer = SGD(model, lr=0.2, momentum=0.9)
        for _step in range(400):
            value = loss(model(x), y)
            model.zero_grad()
            model.backward(loss.backward())
            optimizer.step()
        assert value < 0.01
        prediction = model(x)
        assert np.all((prediction > 0.5) == (y > 0.5))

    def test_gradient_flow_through_frozen_layers(self, rng):
        # Only training the last layer still needs correct gradient
        # propagation *through* the earlier layers to reach it -- but
        # here we check the converse: updating only the first layer
        # requires grads flowing all the way back.
        model = Sequential(
            Linear(3, 4, rng=rng), Tanh(), Linear(4, 1, rng=rng)
        )
        first = model[0]
        optimizer = SGD([first.weight, first.bias], lr=0.1)
        x = rng.normal(size=(8, 3)).astype(np.float32)
        y = rng.normal(size=(8, 1)).astype(np.float32)
        loss = MSELoss()
        last_before = model[2].weight.data.copy()
        first_before = first.weight.data.copy()
        for _step in range(5):
            value = loss(model(x), y)
            model.zero_grad()
            model.backward(loss.backward())
            optimizer.step()
        assert not np.array_equal(first.weight.data, first_before)
        assert np.array_equal(model[2].weight.data, last_before)


class TestOptimizerInteractions:
    def test_momentum_plus_weight_decay(self):
        from repro.nn import Parameter

        param = Parameter(np.array([1.0], dtype=np.float32))
        optimizer = SGD([param], lr=0.1, momentum=0.5, weight_decay=0.1)
        param.grad[:] = 0.0
        optimizer.step()  # grad = 0 + wd*1.0 = 0.1; v = 0.1; p = 1 - 0.01
        assert np.isclose(param.data[0], 0.99, atol=1e-6)
        param.grad[:] = 0.0
        optimizer.step()  # grad = wd*0.99 = 0.099; v = 0.05+0.099 = 0.149
        assert np.isclose(param.data[0], 0.99 - 0.1 * 0.149, atol=1e-5)

    def test_adam_step_size_shrinks_near_optimum(self):
        from repro.nn import Adam, Parameter

        param = Parameter(np.array([1.0], dtype=np.float32))
        optimizer = Adam([param], lr=0.1)
        steps = []
        for _step in range(50):
            previous = float(param.data[0])
            param.grad[:] = 2.0 * param.data  # d/dp of p^2
            optimizer.step()
            steps.append(abs(float(param.data[0]) - previous))
        # Converging: late steps much smaller than early ones.
        assert np.mean(steps[-5:]) < 0.5 * np.mean(steps[:5])
        assert abs(float(param.data[0])) < 0.5
