"""Content-addressed dedup benchmark: storage, TTS/TTR, and GC reclaim.

Runs the paper's default scenario (one U1 save plus three U3 update
cycles) twice per approach — chunk-layer dedup off and on — against the
same seeded model sets and the same simulated hardware profile, and
quantifies three claims:

* **storage** — with dedup on, the U3 cycles append only the chunks that
  actually changed, so parameter bytes drop sharply versus Baseline's
  full snapshots (and the *cross-model* duplicates within U1 are elided
  too);
* **time-to-save** — elided chunks cost no file-store operation, so the
  simulated TTS of the U3 cycles drops deterministically on
  transfer-dominated profiles;
* **recovery & GC** — recovered sets are byte-identical with the knob on
  or off, and after garbage-collecting everything but the newest set the
  sweep reclaims exactly the zero-reference chunk bytes.

Everything asserted on is deterministic: seeded scenario, simulated
store charges, content digests.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Sequence

from repro.bench.metrics import measure_recover, measure_save
from repro.config import ArchiveConfig, ObservabilityConfig
from repro.core.manager import MultiModelManager
from repro.core.model_set import ModelSet
from repro.core.retention import RetentionManager
from repro.nn.serialization import parameters_to_bytes
from repro.storage.hardware import ARCHIVE_PROFILE, HardwareProfile
from repro.workloads.scenario import MultiModelScenario, ScenarioConfig, UseCase

#: Approaches that support the dedup knob.
APPROACHES = ("baseline", "update", "baseline-fp16")


def build_cases(
    num_models: int,
    cycles: int,
    seed: int = 0,
    architecture: str = "FFNN-48",
) -> list[UseCase]:
    """U1 plus ``cycles`` U3 updates, each touching a fraction of models."""
    config = ScenarioConfig(
        num_models=num_models,
        architecture=architecture,
        num_update_cycles=cycles,
        full_update_fraction=0.05,
        partial_update_fraction=0.10,
        seed=seed,
    )
    return list(MultiModelScenario(config).use_cases())


def set_digest(model_set: ModelSet) -> str:
    """Content hash of a recovered set, for byte-identity checks."""
    hasher = hashlib.sha256()
    for state in model_set.states:
        hasher.update(parameters_to_bytes(state))
    return hasher.hexdigest()


def _run_one(
    approach: str,
    cases: list[UseCase],
    profile: HardwareProfile,
    dedup: bool,
    workers: int,
    trace_roots: "list | None" = None,
) -> dict[str, Any]:
    """Save the scenario under one (approach, dedup) setting and measure."""
    manager = MultiModelManager.with_approach(
        approach,
        ArchiveConfig(
            profile=profile,
            workers=workers,
            dedup=dedup,
            observability=ObservabilityConfig(tracing=trace_roots is not None),
        ),
    )
    file_store = manager.context.file_store
    set_ids: list[str] = []
    u1_sim = u3_sim = 0.0
    u1_file_bytes = u3_file_bytes = 0
    for case in cases:
        base_id = set_ids[case.base_index] if case.base_index is not None else None
        before = file_store.total_bytes()
        set_id, measurement = measure_save(
            manager, case.model_set, base_set_id=base_id, update_info=case.update_info
        )
        set_ids.append(set_id)
        added = file_store.total_bytes() - before
        if case.base_index is None:
            u1_sim += measurement.simulated_s
            u1_file_bytes += added
        else:
            u3_sim += measurement.simulated_s
            u3_file_bytes += added
    recovered, recover_measurement = measure_recover(manager, set_ids[-1])
    stats = file_store.stats
    result: dict[str, Any] = {
        "file_bytes_total": file_store.total_bytes(),
        "stored_bytes_total": manager.total_stored_bytes(),
        "u1_file_bytes": u1_file_bytes,
        "u3_file_bytes": u3_file_bytes,
        "u1_simulated_tts_s": u1_sim,
        "u3_simulated_tts_s": u3_sim,
        "simulated_ttr_s": recover_measurement.simulated_s,
        "ttr_s": recover_measurement.total_s,
        "digest": set_digest(recovered),
        "chunks_total": stats.chunks_total,
        "chunks_deduped": stats.chunks_deduped,
        "dedup_ratio": stats.dedup_ratio,
    }
    if dedup:
        result["gc"] = _measure_gc(manager, set_ids)
    if trace_roots is not None:
        trace_roots.extend(manager.context.tracer.roots)
    return result


def _measure_gc(manager: MultiModelManager, set_ids: list[str]) -> dict[str, Any]:
    """Garbage-collect all but the newest set; check exact reclamation.

    The sweep must reclaim exactly the chunks referenced *only* by the
    doomed sets — no more (chunks shared with the survivor stay) and no
    less (nothing dead lingers) — and the survivor must still recover.
    """
    retention = RetentionManager(manager.context)
    chunk_store = manager.context.chunk_store()
    store = manager.context.document_store
    from repro.core.approach import SETS_COLLECTION

    survivor_digests: set[str] = set()
    doomed_digests: set[str] = set()
    for set_id in set_ids:
        document = store._collections[SETS_COLLECTION][set_id]
        matrix = retention._chunk_digest_matrix(document, set_id)
        target = survivor_digests if set_id == set_ids[-1] else doomed_digests
        target.update(digest for row in matrix for digest in row)
    only_doomed = doomed_digests - survivor_digests
    predicted_chunks = len(only_doomed)
    predicted_bytes = sum(chunk_store.chunk_length(d) for d in only_doomed)

    bytes_before = chunk_store.stored_bytes()
    report = retention.collect(keep=[set_ids[-1]])
    survivor_digest = set_digest(manager.recover_set(set_ids[-1]))
    return {
        "deleted_sets": len(report.deleted_sets),
        "chunks_reclaimed": report.chunks_reclaimed,
        "predicted_chunks": predicted_chunks,
        "predicted_bytes": predicted_bytes,
        "chunk_bytes_before": bytes_before,
        "chunk_bytes_after": chunk_store.stored_bytes(),
        "dead_bytes_after": chunk_store.dead_bytes(),
        "exact": (
            report.chunks_reclaimed == predicted_chunks
            and chunk_store.stored_bytes() == bytes_before - predicted_bytes
            and chunk_store.dead_bytes() == 0
        ),
        "survivor_digest": survivor_digest,
    }


def run_dedup_benchmark(
    num_models: int = 100,
    cycles: int = 3,
    approaches: Sequence[str] = APPROACHES,
    profile: HardwareProfile = ARCHIVE_PROFILE,
    workers: int = 1,
    seed: int = 0,
    trace_path: "str | Path | None" = None,
) -> dict[str, Any]:
    """Run the on/off sweep for every approach; JSON-serializable report.

    ``trace_path`` additionally runs every sweep under span recording and
    writes one schema-conforming trace document (every ``save_set`` /
    ``recover_set`` root with its per-phase breakdown) to that path; the
    CI trace job validates it against ``benchmarks/trace_schema.json``.
    """
    cases = build_cases(num_models, cycles, seed=seed)
    trace_roots: "list | None" = [] if trace_path is not None else None
    report: dict[str, Any] = {
        "config": {
            "num_models": num_models,
            "cycles": cycles,
            "approaches": list(approaches),
            "profile": profile.name,
            "workers": workers,
            "seed": seed,
        },
        "approaches": {},
    }
    for approach in approaches:
        off = _run_one(
            approach, cases, profile, dedup=False, workers=workers,
            trace_roots=trace_roots,
        )
        on = _run_one(
            approach, cases, profile, dedup=True, workers=workers,
            trace_roots=trace_roots,
        )
        u3_off, u3_on = off["u3_file_bytes"], on["u3_file_bytes"]
        report["approaches"][approach] = {
            "off": off,
            "on": on,
            "u3_storage_reduction": 1 - u3_on / u3_off if u3_off else 0.0,
            "total_storage_reduction": (
                1 - on["file_bytes_total"] / off["file_bytes_total"]
                if off["file_bytes_total"]
                else 0.0
            ),
            "u3_simulated_tts_speedup": (
                off["u3_simulated_tts_s"] / on["u3_simulated_tts_s"]
                if on["u3_simulated_tts_s"]
                else float("inf")
            ),
            "recovery_identical": off["digest"] == on["digest"],
        }
    if trace_path is not None:
        from repro.observability import write_trace_json

        report["trace_path"] = str(
            write_trace_json(
                trace_path,
                trace_roots,
                meta={"benchmark": "dedup", **report["config"]},
            )
        )
    return report


def write_report(report: dict[str, Any], path: str | Path) -> Path:
    """Write the report as JSON next to the other benchmark results."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def format_report(report: dict[str, Any]) -> str:
    """Human-readable summary of one sweep."""
    lines = [
        "Dedup chunk store — {num_models} models, {cycles} U3 cycles, "
        "{profile} profile".format(**report["config"]),
    ]
    for approach, entry in report["approaches"].items():
        off, on = entry["off"], entry["on"]
        lines.append(
            f"  {approach:>13}: file bytes {off['file_bytes_total']:,} -> "
            f"{on['file_bytes_total']:,} "
            f"(U3 reduction {entry['u3_storage_reduction']:.1%}), "
            f"U3 sim TTS x{entry['u3_simulated_tts_speedup']:.2f}, "
            f"dedup ratio {on['dedup_ratio']:.1%}, "
            f"identical={entry['recovery_identical']}"
        )
        gc = on.get("gc")
        if gc:
            lines.append(
                f"  {'':>13}  gc: {gc['chunks_reclaimed']} chunks reclaimed, "
                f"{gc['chunk_bytes_before']:,} -> {gc['chunk_bytes_after']:,} "
                f"chunk bytes, exact={gc['exact']}"
            )
    return "\n".join(lines)
