"""E2 — §4.2 update-rate sweep: 10% / 20% / 30%.

Only Update's storage should respond to the update rate; MMlib-base and
Baseline always snapshot everything, and Provenance adds only a few
hundred extra dataset references.
"""

from benchmarks.conftest import BENCH_NUM_MODELS
from repro.bench.runner import ExperimentSettings, run_experiment


def test_update_rate_sweep(benchmark):
    settings = ExperimentSettings(num_models=BENCH_NUM_MODELS, cycles=2, runs=1)

    def run():
        return run_experiment("update-rates", settings).data["per_rate"]

    per_rate = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["per_rate_mb"] = {
        rate: {k: round(v, 4) for k, v in values.items()}
        for rate, values in per_rate.items()
    }

    # Update scales with the rate ("correlates to the update rate").
    assert per_rate["30%"]["update"] > 2.0 * per_rate["10%"]["update"]
    assert per_rate["20%"]["update"] > 1.4 * per_rate["10%"]["update"]
    # Baseline and MMlib-base are rate-independent.
    for approach in ("baseline", "mmlib-base"):
        values = [per_rate[r][approach] for r in ("10%", "20%", "30%")]
        assert max(values) - min(values) < 0.01 * max(values)
    # Provenance grows only by the extra references — negligible.
    assert per_rate["30%"]["provenance"] < 0.05 * per_rate["10%"]["update"]
