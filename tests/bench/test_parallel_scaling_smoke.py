"""Tier-1 smoke iteration of the parallel-scaling benchmark.

One reduced-scale pass of :func:`repro.bench.scaling.run_parallel_scaling`
verifying the benchmark's deterministic claims.  Wall-clock speedup is
host-dependent (a single-core runner cannot parallelize the compute
part), so the assertions target the *simulated* store time, which is
deterministic at any scale above the latency floor, plus byte-exact
compaction accounting.
"""

from repro.bench.scaling import run_parallel_scaling


def test_scaling_smoke():
    report = run_parallel_scaling(num_models=120, chain_depth=3, workers=(1, 4))

    # Striped transfers pay the stripe makespan: simulated U1 save and
    # chain-recovery time drop >= 2x with four lanes.  (The deltas'
    # writes are latency-bound at this scale, so the U1 save — the
    # transfer-dominated operation — carries the scaling claim.)
    save, recover = report["save"], report["recover"]
    assert save["1"]["u1_simulated_s"] / save["4"]["u1_simulated_s"] >= 2.0
    assert recover["1"]["simulated_s"] / recover["4"]["simulated_s"] >= 2.0

    # Byte-identical recoveries across worker counts.
    assert recover["1"]["digest"] == recover["4"]["digest"]

    # Compaction reads strictly fewer parameter bytes than the recursive
    # replay at depth >= 3, and recovers the identical set.
    compaction = report["compaction"]
    assert compaction["chain_depth"] == 3
    assert (
        compaction["compact_file_bytes_read"]
        < compaction["replay_file_bytes_read"]
    )
    assert compaction["identical"]
