"""Tier-1 smoke iteration of the long-horizon soak benchmark.

One bounded pass of :func:`repro.bench.soak.run_soak_benchmark` — a
small fleet, ~20 update cycles — verifying the soak claims end to end:
byte-identity of every flush against the serial oracle, a maintenance
pass killed mid-transaction rolling back cleanly at reopen (deep fsck
0), live GC + chain-cut compaction holding storage at the retention
plateau, and replica repair draining after an injected outage.
"""

import os

from repro.bench.soak import run_soak_benchmark

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


def test_soak_smoke():
    cycles = 20
    report = run_soak_benchmark(
        cycles=cycles,
        num_chains=2,
        num_models=2,
        shards=2,
        replicas=3,
        readers=1,
        fault_seed=FAULT_SEED,
    )

    identity = report["identity"]
    assert identity["flushes_verified"] >= cycles * 2
    assert identity["flush_mismatches"] == 0
    assert identity["final_chains_identical"]
    assert identity["reader_mismatches"] == 0
    assert identity["reader_errors"] == []

    kill = report["kill"]
    assert kill["fired"] and kill["crashed"]
    assert "maintenance" in kill["rolled_back_kinds"]
    assert all(code == 0 for code in kill["fsck_exit_codes_after_reopen"])

    upkeep = report["maintenance"]
    assert upkeep["passes"] > 0
    assert upkeep["sets_deleted"] > 0
    assert upkeep["bytes_reclaimed"] > 0
    assert upkeep["lost_artifacts"] == []

    storage = report["storage"]
    assert 0.9 <= storage["end_vs_plateau"] <= 1.1
    assert storage["end_bytes"] < storage["baseline_end_bytes"]
    assert all(code == 0 for code in report["fsck_exit_codes_final"])
