"""Named architecture registry.

A saved model set records only the architecture *name*; at recovery time
the registry rebuilds a skeleton model and the parameters are loaded into
it.  The registry also captures each factory's source code, which is the
"model code" artifact MMlib-base persists redundantly per model (O1).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.architectures.cifar import build_cifar_cnn
from repro.architectures.ffnn import build_ffnn48, build_ffnn69
from repro.errors import UnknownArchitectureError
from repro.nn import Module

Factory = Callable[..., Module]


@dataclass(frozen=True)
class ArchitectureSpec:
    """A registered architecture: factory plus captured metadata."""

    name: str
    factory: Factory
    description: str
    source_code: str = field(repr=False)

    def build(self, rng: np.random.Generator | None = None) -> Module:
        """Instantiate the architecture, optionally with a seeded generator."""
        return self.factory(rng=rng)

    @property
    def num_parameters(self) -> int:
        """Parameter count of a freshly built instance."""
        return self.build(rng=np.random.default_rng(0)).num_parameters()


_REGISTRY: dict[str, ArchitectureSpec] = {}


def register_architecture(name: str, factory: Factory, description: str = "") -> None:
    """Register ``factory`` under ``name``; overwrites any previous entry.

    The *entire defining module* is captured as the architecture's source
    code — the model-code artifact MMlib archives per model needs the
    full definition (layers, constants, helpers), not just the factory
    function.
    """
    try:
        module = inspect.getmodule(factory)
        source = inspect.getsource(module) if module else inspect.getsource(factory)
    except (OSError, TypeError):
        source = f"<source unavailable for {factory!r}>"
    _REGISTRY[name] = ArchitectureSpec(
        name=name, factory=factory, description=description, source_code=source
    )


def get_architecture(name: str) -> ArchitectureSpec:
    """Look up a registered architecture by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownArchitectureError(
            f"unknown architecture {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def list_architectures() -> list[str]:
    """Names of all registered architectures, sorted."""
    return sorted(_REGISTRY)


register_architecture(
    "FFNN-48",
    build_ffnn48,
    "4-layer battery-cell FFNN, hidden width 48, 4,993 parameters",
)
register_architecture(
    "FFNN-69",
    build_ffnn69,
    "4-layer battery-cell FFNN, hidden width 69, 10,075 parameters",
)
register_architecture(
    "CIFAR",
    build_cifar_cnn,
    "convolutional CIFAR-10 classifier, 6,882 parameters",
)
