"""Tests for archive migration and the repro-archive CLI."""

import pytest

from repro.cli import main as archive_main
from repro.core.approach import SaveContext
from repro.core.lineage import LineageGraph
from repro.core.manager import MultiModelManager
from repro.core.migration import migrate_archive
from repro.errors import ReproError
from tests.conftest import save_sequence


@pytest.fixture
def mmlib_source(synthetic_cases):
    manager = MultiModelManager.with_approach("mmlib-base")
    set_ids = save_sequence(manager, synthetic_cases)
    return manager, set_ids


class TestMigration:
    def test_mmlib_to_update_preserves_content(self, mmlib_source, synthetic_cases):
        source_manager, set_ids = mmlib_source
        target = MultiModelManager.with_approach("update")
        report = migrate_archive(source_manager.context, target)
        assert report.sets_migrated == len(set_ids)
        for old_id, case in zip(set_ids, synthetic_cases):
            assert target.recover_set(report.id_map[old_id]).equals(case.model_set)

    def test_migration_builds_delta_chain(self, mmlib_source):
        source_manager, set_ids = mmlib_source
        target = MultiModelManager.with_approach("update")
        report = migrate_archive(source_manager.context, target)
        lineage = LineageGraph.from_context(target.context)
        last_new = report.id_map[set_ids[-1]]
        assert lineage.chain_depth(last_new) == len(set_ids) - 1

    def test_migration_shrinks_storage(self, mmlib_source):
        source_manager, _ids = mmlib_source
        target = MultiModelManager.with_approach("update")
        report = migrate_archive(source_manager.context, target)
        assert report.storage_ratio < 0.6
        assert report.target_bytes == target.total_stored_bytes()

    def test_baseline_to_update(self, synthetic_cases):
        source = MultiModelManager.with_approach("baseline")
        set_ids = save_sequence(source, synthetic_cases)
        target = MultiModelManager.with_approach("update")
        report = migrate_archive(source.context, target)
        assert target.recover_set(report.id_map[set_ids[-1]]).equals(
            synthetic_cases[-1].model_set
        )

    def test_update_to_baseline(self, synthetic_cases):
        source = MultiModelManager.with_approach("update")
        set_ids = save_sequence(source, synthetic_cases)
        target = MultiModelManager.with_approach("baseline")
        report = migrate_archive(source.context, target)
        # Every migrated set is now independently recoverable.
        lineage = LineageGraph.from_context(target.context)
        for old_id in set_ids:
            assert lineage.recovery_chain(report.id_map[old_id]) == [
                report.id_map[old_id]
            ]

    def test_provenance_target_rejected(self, mmlib_source):
        source_manager, _ids = mmlib_source
        target = MultiModelManager.with_approach("provenance")
        with pytest.raises(ReproError):
            migrate_archive(source_manager.context, target)

    def test_empty_source_is_noop(self):
        source = SaveContext.create()
        target = MultiModelManager.with_approach("update")
        report = migrate_archive(source, target)
        assert report.sets_migrated == 0


@pytest.fixture
def durable_archive(tmp_path, synthetic_cases):
    manager = MultiModelManager.open(str(tmp_path / "arch"), "update")
    set_ids = save_sequence(manager, synthetic_cases)
    return str(tmp_path / "arch"), set_ids


class TestCli:
    def test_info(self, durable_archive, capsys):
        path, set_ids = durable_archive
        assert archive_main([path, "info"]) == 0
        out = capsys.readouterr().out
        assert f"sets: {len(set_ids)}" in out
        assert "approach: update" in out

    def test_lineage(self, durable_archive, capsys):
        path, set_ids = durable_archive
        assert archive_main([path, "lineage"]) == 0
        out = capsys.readouterr().out
        assert f"{set_ids[1]}  [update/delta]" in out
        assert f"<- {set_ids[0]}" in out

    def test_verify_clean(self, durable_archive, capsys):
        path, _ids = durable_archive
        assert archive_main([path, "verify", "--deep"]) == 0
        assert "archive is clean" in capsys.readouterr().out

    def test_verify_detects_missing_artifact(self, durable_archive, capsys, tmp_path):
        path, set_ids = durable_archive
        from pathlib import Path

        artifact = next(Path(path, "artifacts").glob(f"{set_ids[0]}-params.bin"))
        artifact.unlink()
        assert archive_main([path, "verify"]) == 1
        assert "ISSUE" in capsys.readouterr().out

    def test_history(self, durable_archive, capsys):
        path, set_ids = durable_archive
        assert archive_main([path, "history", set_ids[-1], "0"]) == 0
        out = capsys.readouterr().out
        assert "drift=" in out
        assert set_ids[0] in out

    def test_compact_and_gc(self, durable_archive, capsys):
        path, set_ids = durable_archive
        assert archive_main([path, "compact", set_ids[-1]]) == 0
        assert archive_main([path, "gc", "--keep-last", "1"]) == 0
        out = capsys.readouterr().out
        assert "reclaimed" in out
        reopened = MultiModelManager.open(path, "update")
        assert reopened.list_sets() == [set_ids[-1]]

    def test_gc_keep_explicit(self, durable_archive, capsys):
        path, set_ids = durable_archive
        assert archive_main([path, "gc", "--keep", set_ids[-1]]) == 0
        # Chain ancestors survive without compaction.
        assert "retained for recovery chains" in capsys.readouterr().out

    def test_migrate(self, durable_archive, tmp_path, capsys):
        path, set_ids = durable_archive
        target_dir = str(tmp_path / "migrated")
        assert archive_main(
            [path, "migrate", target_dir, "--target-approach", "baseline"]
        ) == 0
        out = capsys.readouterr().out
        assert f"migrated {len(set_ids)} sets" in out
        target = MultiModelManager.open(target_dir, "baseline")
        assert len(target.list_sets()) == len(set_ids)

    def test_export_bundle(self, durable_archive, tmp_path, capsys):
        from repro.core.export import import_models

        path, set_ids = durable_archive
        out_dir = str(tmp_path / "bundle")
        assert archive_main(
            [path, "export", set_ids[-1], out_dir, "--models", "0", "3"]
        ) == 0
        assert "exported 2 models" in capsys.readouterr().out
        imported, manifest = import_models(out_dir)
        assert len(imported) == 2
        assert manifest["set_id"] == set_ids[-1]

    def test_empty_archive_needs_explicit_approach(self, tmp_path, capsys):
        path = str(tmp_path / "empty")
        assert archive_main([path, "history", "x", "0"]) == 2
        assert "error:" in capsys.readouterr().err
