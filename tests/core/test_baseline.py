"""Tests for the Baseline approach (§3.2)."""

import pytest

from repro.core.approach import SETS_COLLECTION
from repro.core.baseline import BaselineApproach
from repro.core.model_set import ModelSet
from repro.core.save_info import SetMetadata
from repro.errors import RecoveryError


@pytest.fixture
def approach(context):
    return BaselineApproach(context)


@pytest.fixture
def models():
    return ModelSet.build("FFNN-48", num_models=10, seed=0)


class TestSaveInitial:
    def test_roundtrip_is_bit_exact(self, approach, models):
        set_id = approach.save_initial(models)
        assert approach.recover(set_id).equals(models)

    def test_exactly_one_document_and_one_artifact(self, approach, models):
        approach.save_initial(models)
        assert approach.context.document_store.stats.writes == 1
        assert approach.context.file_store.stats.writes == 1

    def test_parameter_artifact_is_raw_floats(self, approach, models):
        set_id = approach.save_initial(models)
        document = approach.context.set_document(set_id)
        payload = approach.context.file_store.get(document["params_artifact"])
        assert len(payload) == models.parameter_bytes  # 4 B per parameter

    def test_metadata_overhead_is_kilobytes_per_set(self, approach, models):
        # "a storage overhead for model architecture and metadata of
        # approximately 4 KB" (§4.2) — per set, not per model.
        approach.save_initial(models)
        doc_bytes = approach.context.document_store.stats.bytes_written
        assert doc_bytes < 10_000

    def test_metadata_is_persisted(self, approach, models):
        metadata = SetMetadata(use_case="U1", description="initial fleet")
        set_id = approach.save_initial(models, metadata=metadata)
        document = approach.context.set_document(set_id)
        assert document["metadata"]["use_case"] == "U1"

    def test_architecture_recorded(self, approach, models):
        set_id = approach.save_initial(models)
        document = approach.context.set_document(set_id)
        assert document["architecture"] == "FFNN-48"
        assert document["num_models"] == 10


class TestSaveDerived:
    def test_derived_save_is_full_snapshot(self, approach, models):
        # Baseline "always saves complete representations" — derived
        # storage equals initial storage (Figure 3).
        first = approach.save_initial(models)
        initial_bytes = approach.context.file_store.stats.bytes_written
        derived = models.copy()
        derived.state(0)["0.weight"][:] += 1.0
        approach.save_derived(derived, first)
        assert (
            approach.context.file_store.stats.bytes_written == 2 * initial_bytes
        )

    def test_derived_recovers_independently(self, approach, models):
        first = approach.save_initial(models)
        derived = models.copy()
        derived.state(3)["2.bias"][:] = 7.0
        second = approach.save_derived(derived, first)
        assert approach.recover(second).equals(derived)
        assert approach.recover(first).equals(models)

    def test_lineage_recorded(self, approach, models):
        first = approach.save_initial(models)
        second = approach.save_derived(models.copy(), first)
        assert approach.context.set_document(second)["base_set"] == first


class TestRecoverErrors:
    def test_wrong_approach_type_rejected(self, context, models):
        from repro.core.update import UpdateApproach

        update_id = UpdateApproach(context).save_initial(models)
        with pytest.raises(RecoveryError):
            BaselineApproach(context).recover(update_id)

    def test_corrupt_artifact_length_rejected(self, approach, models):
        set_id = approach.save_initial(models)
        document = approach.context.document_store.get(SETS_COLLECTION, set_id)
        # Shrink the declared model count to force a length mismatch.
        document["num_models"] = 99
        approach.context.document_store._collections[SETS_COLLECTION][
            set_id
        ] = document
        with pytest.raises(RecoveryError):
            approach.recover(set_id)

    def test_single_model_set(self, approach):
        models = ModelSet.build("CIFAR", num_models=1, seed=4)
        set_id = approach.save_initial(models)
        assert approach.recover(set_id).equals(models)
