"""A5 — Update diff granularity: layer (paper) vs model (strawman).

MMlib "compares related models on a layer granularity" (§2.2).  This
bench quantifies what that buys: with the paper's default 5% full + 5%
partial update mix, per-layer deltas cut the stored bytes of every
partial update to the changed layers only.
"""

from benchmarks.conftest import BENCH_NUM_MODELS
from repro.bench.runner import ExperimentSettings, run_experiment


def test_granularity_tradeoff(benchmark):
    settings = ExperimentSettings(num_models=BENCH_NUM_MODELS, cycles=2, runs=1)

    def run():
        return run_experiment("granularity", settings).data["data"]

    data = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["granularity"] = {
        mode: {metric: round(value, 5) for metric, value in values.items()}
        for mode, values in data.items()
    }

    layer = data["layer"]["u3_storage_mb"]
    model = data["model"]["u3_storage_mb"]
    assert layer < model
    # With partials touching 1 of 4 layers and half the updates being
    # partial, layer granularity should save roughly a third of the
    # parameter bytes (hash info is identical for both modes).
    assert (model - layer) / model > 0.15
