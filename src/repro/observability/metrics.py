"""Process-wide metrics registry (counters, gauges, histograms).

The registry is the aggregation point for everything the archive already
counts: :class:`~repro.storage.stats.StorageStats` objects are plugged in
as *providers* (their fields are re-exported under a store prefix on
every :meth:`MetricsRegistry.collect` without touching the hot recording
paths), while long-lived subsystems (journal, scrubber, trace recorder)
increment first-class counters/histograms directly.

Collection is pull-based: nothing is computed until an exporter asks, so
registering a provider adds zero overhead to save/recover loops.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from dataclasses import fields as dataclass_fields
from typing import Callable, Iterable

#: Default histogram bucket upper bounds (seconds-oriented).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)


class Counter:
    """Monotonically increasing value."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Point-in-time value that can move both ways."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative bucket counts."""

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: "Iterable[float]" = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.description = description
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._counts[bisect_right(self.buckets, value)] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> dict:
        """Cumulative per-bucket counts plus sum/count."""
        with self._lock:
            counts = list(self._counts)
            total_sum, total_count = self._sum, self._count
        cumulative: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            cumulative.append((bound, running))
        return {
            "buckets": cumulative,
            "sum": total_sum,
            "count": total_count,
        }


class TimedLock:
    """A lock wrapper that measures how long acquisition blocked.

    Wraps an existing lock (or creates an ``RLock``) and accumulates the
    wall seconds every ``acquire`` spent waiting into :attr:`wait_s`, an
    optional :class:`Counter` (e.g. ``fleet_shard_0_lock_wait_s_total``),
    and an optional :class:`Histogram` of per-acquire waits.  This is how
    the fleet engine turns "no cross-shard lock contention" from an
    assertion into a measurement: each shard's mutex is wrapped once and
    the exported wait counters stay near zero while shards are hammered
    concurrently.

    Sharing the *underlying* lock with other callers is supported (the
    fleet wraps each shard context's reentrant ``mutex``), so timing the
    fleet's acquisition composes with the manager's own locking.
    """

    def __init__(
        self,
        lock=None,
        counter: "Counter | None" = None,
        histogram: "Histogram | None" = None,
    ) -> None:
        self._lock = lock if lock is not None else threading.RLock()
        self.counter = counter
        self.histogram = histogram
        self.wait_s = 0.0
        self.acquisitions = 0
        self._meta = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        import time

        start = time.perf_counter()
        acquired = self._lock.acquire(blocking, timeout)
        waited = time.perf_counter() - start
        with self._meta:
            self.wait_s += waited
            self.acquisitions += 1
        if self.counter is not None:
            self.counter.inc(waited)
        if self.histogram is not None:
            self.histogram.observe(waited)
        return acquired

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> "TimedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


#: StorageStats fields re-exported by :meth:`MetricsRegistry.register_stats`
#: (everything numeric; ``bytes_by_category`` is expanded per category).
_STATS_SKIP = {"bytes_by_category"}


class MetricsRegistry:
    """Named counters/gauges/histograms plus pull-time providers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._providers: dict[str, Callable[[], dict]] = {}

    # -- instrument registration -----------------------------------------
    def counter(self, name: str, description: str = "") -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name, description)
            return self._counters[name]

    def gauge(self, name: str, description: str = "") -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name, description)
            return self._gauges[name]

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: "Iterable[float]" = DEFAULT_BUCKETS,
    ) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, description, buckets)
            return self._histograms[name]

    # -- providers ---------------------------------------------------------
    def register_provider(self, name: str, provider: Callable[[], dict]) -> None:
        """Attach a pull-time source of ``{metric_name: value}`` pairs."""
        with self._lock:
            self._providers[name] = provider

    def unregister_provider(self, name: str) -> None:
        with self._lock:
            self._providers.pop(name, None)

    def register_stats(self, prefix: str, stats) -> None:
        """Re-export a live :class:`StorageStats` under ``prefix``.

        Every numeric field becomes ``{prefix}_{field}`` and each
        ``bytes_by_category`` entry ``{prefix}_category_bytes.{category}``
        — computed from a locked snapshot at collect time, so the store's
        recording paths are untouched.
        """

        def provider() -> dict:
            snap = stats.snapshot()
            values: dict[str, float] = {}
            for spec in dataclass_fields(snap):
                if not spec.init or spec.name in _STATS_SKIP:
                    continue
                value = getattr(snap, spec.name)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    values[f"{prefix}_{spec.name}"] = value
            for category, num_bytes in sorted(snap.bytes_by_category.items()):
                values[f"{prefix}_category_bytes.{category}"] = num_bytes
            return values

        self.register_provider(f"stats:{prefix}", provider)

    # -- collection --------------------------------------------------------
    def collect(self) -> dict:
        """Flat ``{name: value}`` of counters, gauges, and providers."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            providers = dict(self._providers)
        values: dict[str, float] = {}
        for name, counter in sorted(counters.items()):
            values[name] = counter.value
        for name, gauge in sorted(gauges.items()):
            values[name] = gauge.value
        for _, provider in sorted(providers.items()):
            values.update(provider())
        return values

    def histograms(self) -> dict[str, dict]:
        with self._lock:
            items = dict(self._histograms)
        return {name: histogram.snapshot() for name, histogram in sorted(items.items())}

    def reset(self) -> None:
        """Drop every instrument and provider (test isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._providers.clear()


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry (one per interpreter)."""
    return _GLOBAL
