"""E8 — §4.2 byte-level accounting.

Verifies the paper's concrete storage numbers at our scale:

* every approach's U1 cost is dominated by the 4 B/parameter payload
  (the paper's ~99.9 MB for 5000 x 4,993 params),
* Baseline/Provenance add only a ~KB-scale per-set overhead (paper: ~4 KB),
* MMlib-base adds a multi-KB per-model overhead (paper: ~8 KB), and
* Update's U3 cost decomposes into changed parameters + hash info
  (paper: ~14 MB per U3 at full scale).
"""

from repro.bench.runner import run_experiment
from repro.core.mmlib_base import MMlibBaseApproach


def test_storage_breakdown(benchmark, cases, settings):
    def run():
        return run_experiment("breakdown", settings).data

    data = benchmark.pedantic(run, rounds=2, iterations=1)
    params_bytes = data["params_bytes"]
    per_case = data["data"]
    num_models = len(cases[0].model_set)

    # Raw parameter payload: exactly 4 B per parameter per model.
    assert params_bytes == num_models * 4_993 * 4

    # Baseline U1: parameters exact + small per-set metadata.
    baseline_u1 = per_case["baseline"][0]
    assert baseline_u1["parameters"] == params_bytes
    assert baseline_u1["metadata"] < 10_000
    benchmark.extra_info["baseline_set_overhead_bytes"] = baseline_u1["metadata"]

    # MMlib-base: per-model overhead in the paper's ballpark.
    mmlib_u1 = per_case["mmlib-base"][0]
    mmlib_overhead = sum(mmlib_u1.values()) - params_bytes
    per_model = mmlib_overhead / num_models
    benchmark.extra_info["mmlib_per_model_overhead_bytes"] = round(per_model)
    assert 2_000 < per_model < 20_000
    estimate = MMlibBaseApproach.per_model_overhead_bytes(cases[0].model_set)
    assert abs(per_model - estimate) / estimate < 0.15

    # Update U3: deltas shrink to the updated fraction; hash info is the
    # price of not loading the previous set.
    update_u3 = per_case["update"][1]
    assert update_u3["parameters"] < 0.25 * params_bytes
    assert update_u3["hash-info"] > 0
    benchmark.extra_info["update_u3_breakdown"] = update_u3

    # Provenance U3: references only.
    prov_u3 = per_case["provenance"][1]
    assert sum(prov_u3.values()) < 0.01 * params_bytes
