"""Fleet scaling sweep: concurrent writers over sharded archives.

Drives the scenario the fleet engine exists for — many training jobs
emitting bursty per-model updates concurrently — against fleets of
1/2/4/8 shards, through the coalescing :class:`~repro.fleet.IngestQueue`
with a real writer-thread pool.

Time-to-save is charged as **makespan**: shards are independent archives
working in parallel, so a phase's fleet TTS is the *maximum* over shards
of the simulated store seconds that phase charged to each shard (the
same greedy-lane accounting :func:`~repro.storage.hardware.makespan`
uses for the engine's worker lanes) — not the sum a serial archive
would pay.

Determinism: writer threads own disjoint chains and flushes trigger on
per-chain submission counts, so every chain's batch boundaries — and
therefore every saved set's *contents* and every shard's simulated
total — are independent of thread scheduling.  Only the interleaving of
set ids across chains varies, which changes no byte of any recovered
set.  An in-memory serial oracle replays each chain's submission stream
(last-writer-wins within each batch window) and every saved set is
recovered and compared against it.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.bench.scaling import set_digest
from repro.config import ArchiveConfig
from repro.core.model_set import ModelSet
from repro.fleet import FleetManager, IngestQueue
from repro.storage.hardware import ARCHIVE_PROFILE, HardwareProfile


def _chain_stream(
    base: ModelSet, chain: int, bursts: int, burst_size: int
) -> list[tuple[int, "OrderedDict[str, np.ndarray]"]]:
    """Chain ``chain``'s full submission stream: (model_index, state) pairs.

    Bursty by construction: each burst cycles the model indices faster
    than it moves on, so within one flush window the same index is
    submitted repeatedly — the overwrites the queue's last-writer-wins
    coalescing elides.  States are a deterministic function of
    ``(chain, submission ordinal)`` only.
    """
    num_models = len(base)
    stream = []
    ordinal = 0
    for _burst in range(bursts):
        for j in range(burst_size):
            index = j % num_models
            state = OrderedDict(
                (
                    name,
                    (array + 0.001 * (ordinal + 1) + chain).astype(array.dtype),
                )
                for name, array in base.state(index).items()
            )
            stream.append((index, state))
            ordinal += 1
    return stream


def _oracle_batches(
    base: ModelSet,
    stream: "list[tuple[int, OrderedDict]]",
    flush_max_updates: int,
) -> list[ModelSet]:
    """Expected contents of each flushed save, replayed serially.

    The queue materializes the chain once and applies each batch in
    place, so the k-th flush persists the base plus every update from
    batches 0..k (later batches overwriting earlier indices).
    """
    current = base.copy()
    snapshots: list[ModelSet] = []
    for start in range(0, len(stream), flush_max_updates):
        for index, state in stream[start : start + flush_max_updates]:
            current.states[index] = state
        snapshots.append(current.copy())
    return snapshots


def run_fleet_scaling(
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    writer_counts: Sequence[int] = (1, 8, 64),
    num_chains: int = 48,
    num_models: int = 4,
    bursts: int = 3,
    burst_size: int = 8,
    flush_max_updates: int = 8,
    architecture: str = "FFNN-48",
    profile: HardwareProfile = ARCHIVE_PROFILE,
    approach: str = "update",
) -> dict[str, Any]:
    """Sweep writers x shards; returns the full report dictionary.

    Every configuration replays the *same* workload: ``num_chains``
    seeded root sets, then each chain's fixed bursty update stream
    pushed through an :class:`IngestQueue` by ``writers`` concurrent
    threads (chains partitioned round-robin, so each chain has exactly
    one writer).
    """
    base = ModelSet.build(architecture, num_models=num_models, seed=0)
    stream_cache = [
        _chain_stream(base, chain, bursts, burst_size)
        for chain in range(num_chains)
    ]
    oracle = [
        _oracle_batches(base, stream, flush_max_updates)
        for stream in stream_cache
    ]
    configs: list[dict[str, Any]] = []
    for shards in shard_counts:
        for writers in writer_counts:
            configs.append(
                _run_config(
                    shards=shards,
                    writers=writers,
                    base=base,
                    streams=stream_cache,
                    oracle=oracle,
                    flush_max_updates=flush_max_updates,
                    profile=profile,
                    approach=approach,
                )
            )
    # Cross-config identity: the k-th flush of chain c must recover to
    # the same bytes at every shard/writer count.
    digest_sets = {
        tuple(sorted(config["chain_digests"].items())) for config in configs
    }
    speedups: dict[str, float] = {}
    by_key = {(c["shards"], c["writers"]): c for c in configs}
    for writers in writer_counts:
        baseline = by_key.get((1, writers))
        if baseline is None:
            continue
        for shards in shard_counts:
            entry = by_key.get((shards, writers))
            if entry is None or shards == 1:
                continue
            speedups[f"update_tts_s{shards}_vs_s1_w{writers}"] = (
                baseline["update_tts_s"] / entry["update_tts_s"]
            )
    return {
        "config": {
            "shard_counts": list(shard_counts),
            "writer_counts": list(writer_counts),
            "num_chains": num_chains,
            "num_models": num_models,
            "bursts": bursts,
            "burst_size": burst_size,
            "flush_max_updates": flush_max_updates,
            "architecture": architecture,
            "approach": approach,
            "profile": profile.name,
        },
        "configs": configs,
        "speedups": speedups,
        "identical_across_configs": len(digest_sets) == 1,
    }


def _run_config(
    shards: int,
    writers: int,
    base: ModelSet,
    streams: "list[list[tuple[int, OrderedDict]]]",
    oracle: "list[list[ModelSet]]",
    flush_max_updates: int,
    profile: HardwareProfile,
    approach: str,
) -> dict[str, Any]:
    num_chains = len(streams)
    fleet = FleetManager.with_approach(
        approach, ArchiveConfig(shards=shards, profile=profile)
    )
    # -- seed phase: one root set per chain ------------------------------
    before = fleet.shard_simulated_s()
    roots = [fleet.save_set(base) for _ in range(num_chains)]
    after_seed = fleet.shard_simulated_s()
    seed_tts = max(b - a for a, b in zip(before, after_seed))

    # -- update phase: concurrent writers through the ingest queue -------
    queue = IngestQueue(fleet, flush_max_updates=flush_max_updates)
    errors: list[BaseException] = []

    def writer(worker: int) -> None:
        try:
            my_chains = [c for c in range(num_chains) if c % writers == worker]
            # Interleave bursts across this writer's chains so arrivals
            # are bursty per chain but mixed across chains, like
            # concurrent training jobs checkpointing out of phase.
            cursor = [0] * len(my_chains)
            remaining = sum(len(streams[c]) for c in my_chains)
            while remaining:
                for slot, chain in enumerate(my_chains):
                    stream = streams[chain]
                    start = cursor[slot]
                    if start >= len(stream):
                        continue
                    stop = min(start + flush_max_updates, len(stream))
                    for index, state in stream[start:stop]:
                        queue.submit(roots[chain], index, state)
                    cursor[slot] = stop
                    remaining -= stop - start
        except BaseException as error:  # noqa: BLE001 - re-raised below
            errors.append(error)

    wall_start = time.perf_counter()
    threads = [
        threading.Thread(target=writer, args=(w,), name=f"writer-{w}")
        for w in range(writers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    queue.drain()
    wall_s = time.perf_counter() - wall_start
    if errors:
        raise errors[0]
    after_update = fleet.shard_simulated_s()
    per_shard = [b - a for a, b in zip(after_seed, after_update)]
    update_tts = max(per_shard)

    # -- identity: recover every flushed save, compare to the oracle ----
    flush_seq: dict[str, int] = {}
    chain_of_root = {root: chain for chain, root in enumerate(roots)}
    chain_digests: dict[str, str] = {}
    identical = True
    for entry in queue.flush_log:
        chain = chain_of_root[entry["root"]]
        k = flush_seq.get(entry["root"], 0)
        flush_seq[entry["root"]] = k + 1
        recovered = fleet.recover_set(entry["set_id"])
        expected = oracle[chain][k]
        if not recovered.equals(expected):
            identical = False
        chain_digests[f"{chain}:{k}"] = set_digest(recovered)
    flushes_expected = sum(len(batches) for batches in oracle)
    queue.close()
    return {
        "shards": shards,
        "writers": writers,
        "seed_tts_s": seed_tts,
        "update_tts_s": update_tts,
        "per_shard_update_s": per_shard,
        "wall_s": wall_s,
        "updates_submitted": queue.updates_submitted,
        "updates_coalesced": queue.updates_coalesced,
        "flushes": queue.flushes,
        "flushes_expected": flushes_expected,
        "models_written": queue.models_written,
        "coalescing_ratio": queue.coalescing_ratio,
        "write_elision_ratio": queue.write_elision_ratio,
        "max_lock_wait_s": max(lock.wait_s for lock in fleet.shard_locks),
        "identical_to_oracle": identical
        and queue.flushes == flushes_expected,
        "chain_digests": chain_digests,
    }


def write_report(report: dict[str, Any], path: "str | Path") -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def format_report(report: dict[str, Any]) -> str:
    """Human-readable sweep summary (one row per shards x writers)."""
    config = report["config"]
    lines = [
        "Fleet scaling — {num_chains} chains x {num_models} models "
        "({architecture}), {bursts}x{burst_size} bursty updates/chain, "
        "flush every {flush_max_updates}, {profile} profile".format(**config),
        "",
        f"{'shards':>6} {'writers':>8} {'update TTS':>12} {'speedup':>8} "
        f"{'wall':>8} {'coalesce':>9} {'oracle':>7}",
    ]
    by_key = {(c["shards"], c["writers"]): c for c in report["configs"]}
    for entry in report["configs"]:
        baseline = by_key.get((1, entry["writers"]), entry)
        speedup = baseline["update_tts_s"] / entry["update_tts_s"]
        lines.append(
            f"{entry['shards']:>6} {entry['writers']:>8} "
            f"{entry['update_tts_s']:>11.3f}s {speedup:>7.2f}x "
            f"{entry['wall_s']:>7.2f}s {entry['coalescing_ratio']:>8.2f}x "
            f"{'ok' if entry['identical_to_oracle'] else 'MISMATCH':>7}"
        )
    return "\n".join(lines)
