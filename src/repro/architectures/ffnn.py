"""Feed-forward battery-cell models (FFNN-48 and FFNN-69).

The paper adopts one of the best-performing architectures from the
Volkswagen battery-modeling study by Heinrich et al.: four fully connected
layers with 4,993 parameters in total ("FFNN-48").  The inputs are the
cell's excitation current, temperature, charge, and state of charge; the
output is the predicted voltage response.

The parameter counts work out exactly:

* FFNN-48: ``(4*48+48) + (48*48+48) + (48*48+48) + (48*1+1) = 4,993``
* FFNN-69: ``(4*69+69) + (69*69+69) + (69*69+69) + (69*1+1) = 10,075``

FFNN-69 is, except for the per-layer widths, identical to FFNN-48 — the
property the paper's model-size experiment (§4.2) relies on.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Linear, Sequential, Tanh

#: Input features: current, temperature, charge, state of charge.
FFNN_INPUT_FEATURES = 4
#: Output features: predicted voltage response.
FFNN_OUTPUT_FEATURES = 1

FFNN48_HIDDEN = 48
FFNN69_HIDDEN = 69

FFNN48_NUM_PARAMETERS = 4_993
FFNN69_NUM_PARAMETERS = 10_075


def build_ffnn(hidden: int, rng: np.random.Generator | None = None) -> Sequential:
    """Build a four-layer battery FFNN with the given hidden width.

    Parameters
    ----------
    hidden:
        Width of the three hidden layers.
    rng:
        Generator for weight initialization; pass a seeded generator for
        reproducible construction.
    """
    if hidden <= 0:
        raise ValueError(f"hidden width must be positive, got {hidden}")
    rng = rng if rng is not None else np.random.default_rng(0)
    return Sequential(
        Linear(FFNN_INPUT_FEATURES, hidden, rng=rng),
        Tanh(),
        Linear(hidden, hidden, rng=rng),
        Tanh(),
        Linear(hidden, hidden, rng=rng),
        Tanh(),
        Linear(hidden, FFNN_OUTPUT_FEATURES, rng=rng),
    )


def build_ffnn48(rng: np.random.Generator | None = None) -> Sequential:
    """Build the FFNN-48 battery model (4,993 parameters)."""
    return build_ffnn(FFNN48_HIDDEN, rng=rng)


def build_ffnn69(rng: np.random.Generator | None = None) -> Sequential:
    """Build the FFNN-69 battery model (10,075 parameters)."""
    return build_ffnn(FFNN69_HIDDEN, rng=rng)
