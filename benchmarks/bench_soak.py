"""Long-horizon soak: background maintenance under live fleet traffic.

Runs hundreds of U3 update cycles through FleetManager + IngestQueue
with continuous Zipf-ranked reads through the serving cache while a
MaintenanceScheduler garbage-collects, compacts, scrubs, and drains
replica repairs — with a seeded replica outage and a seeded kill of one
maintenance pass mid-transaction.  Writes ``results/soak.json``.

Claims asserted here (deterministic per ``--seed`` / REPRO_FAULT_SEED):

* every flushed save, every concurrent read, and every final chain head
  is byte-identical to the serial in-memory oracle;
* the seeded kill fires inside a maintenance transaction, the reopened
  fleet rolls it back, and every shard passes a deep fsck (exit 0);
* p99 simulated save latency with maintenance on stays within 2x the
  maintenance-off baseline;
* storage converges to the retention-policy plateau (end state within
  10%) instead of growing without bound like the baseline.

Scale knobs: ``REPRO_SOAK_CYCLES`` (default 200), ``REPRO_SOAK_CHAINS``,
``REPRO_SOAK_MODELS`` — CI's soak-smoke job runs a bounded variant.
"""

import os
from pathlib import Path

from repro.bench.soak import format_report, run_soak_benchmark, write_report

CYCLES = int(os.environ.get("REPRO_SOAK_CYCLES", "200"))
NUM_CHAINS = int(os.environ.get("REPRO_SOAK_CHAINS", "3"))
NUM_MODELS = int(os.environ.get("REPRO_SOAK_MODELS", "3"))

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results" / "soak.json"


def test_soak(benchmark, fault_seed):
    report = benchmark.pedantic(
        lambda: run_soak_benchmark(
            cycles=CYCLES,
            num_chains=NUM_CHAINS,
            num_models=NUM_MODELS,
            fault_seed=fault_seed,
        ),
        rounds=1,
        iterations=1,
    )
    write_report(report, RESULTS_PATH)
    print(format_report(report))
    benchmark.extra_info["summary"] = {
        "latency": report["latency"],
        "maintenance": report["maintenance"],
        "kill": report["kill"],
    }

    # Byte identity: every flush verified, every read matched, and the
    # final head of every chain equals the serial oracle.
    identity = report["identity"]
    assert identity["flushes_verified"] >= CYCLES * NUM_CHAINS
    assert identity["flush_mismatches"] == 0
    assert identity["final_chains_identical"]
    assert identity["reader_mismatches"] == 0
    assert identity["reader_errors"] == []
    assert identity["reader_reads"] > 0

    # The seeded schedule killed one maintenance pass mid-transaction;
    # reopening rolled it back and fsck'd clean.
    kill = report["kill"]
    assert kill["fired"] and kill["crashed"], kill
    assert "maintenance" in kill["rolled_back_kinds"], kill
    assert all(code == 0 for code in kill["fsck_exit_codes_after_reopen"]), kill

    # Maintenance actually ran and reclaimed storage under load.
    upkeep = report["maintenance"]
    assert upkeep["passes"] > 0
    assert upkeep["sets_deleted"] > 0
    assert upkeep["sets_compacted"] > 0
    assert upkeep["bytes_reclaimed"] > 0
    assert upkeep["repairs_drained"] > 0  # the outage queued repairs
    assert upkeep["lost_artifacts"] == []

    # p99 simulated save latency bounded by 2x the maintenance-off run.
    assert report["latency"]["p99_ratio"] <= 2.0, report["latency"]

    # Storage plateaus at the retention policy instead of growing.
    storage = report["storage"]
    assert 0.9 <= storage["end_vs_plateau"] <= 1.1, storage
    assert storage["end_bytes"] < storage["baseline_end_bytes"] / 2, storage

    # The soaked fleet ends deep-fsck clean on every shard.
    assert all(code == 0 for code in report["fsck_exit_codes_final"])
