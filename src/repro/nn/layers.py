"""Trainable and structural layers: Linear, Conv2d, pooling, Flatten, Dropout.

Convolutions are implemented with an im2col lowering so both the forward
and the backward pass are expressed as dense matrix products — fast enough
in numpy for the small CIFAR-scale models the paper evaluates.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import bias_uniform, kaiming_uniform
from repro.nn.module import DTYPE, Module, Parameter


def _default_rng(rng: np.random.Generator | None) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng(0)


class Linear(Module):
    """Fully-connected layer computing ``y = x @ W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to include an additive bias term.
    rng:
        Generator used for weight initialization; defaults to a fixed seed
        so un-seeded construction is still deterministic.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        rng = _default_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            kaiming_uniform((out_features, in_features), fan_in=in_features, rng=rng)
        )
        self.has_bias = bias
        if bias:
            self.bias = Parameter(bias_uniform((out_features,), in_features, rng))
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=DTYPE)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        self._input = x
        out = x @ self.weight.data.T
        if self.has_bias:
            out = out + self.bias.data
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        grad_out = np.asarray(grad_out, dtype=DTYPE)
        self.weight.grad += grad_out.T @ self._input
        if self.has_bias:
            self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.data


def _im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Lower (N, C, H, W) into (N, out_h * out_w, C * kernel * kernel)."""
    batch, channels, height, width = x.shape
    if padding:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch, out_h * out_w, channels * kernel * kernel
    )
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Scatter-add the inverse of :func:`_im2col`."""
    batch, channels, height, width = x_shape
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=DTYPE
    )
    cols = cols.reshape(batch, out_h, out_w, channels, kernel, kernel)
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            padded[:, :, ky:y_end:stride, kx:x_end:stride] += cols[
                :, :, :, :, ky, kx
            ].transpose(0, 3, 1, 2)
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class Conv2d(Module):
    """2-D convolution over (N, C, H, W) inputs with square kernels."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ValueError("invalid convolution geometry")
        rng = _default_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            kaiming_uniform(
                (out_channels, in_channels, kernel_size, kernel_size),
                fan_in=fan_in,
                rng=rng,
            )
        )
        self.has_bias = bias
        if bias:
            self.bias = Parameter(bias_uniform((out_channels,), fan_in, rng))
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=DTYPE)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected input (batch, {self.in_channels}, H, W), got {x.shape}"
            )
        cols, out_h, out_w = _im2col(x, self.kernel_size, self.stride, self.padding)
        self._cols = cols
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        flat_weight = self.weight.data.reshape(self.out_channels, -1)
        out = cols @ flat_weight.T
        if self.has_bias:
            out = out + self.bias.data
        return out.transpose(0, 2, 1).reshape(x.shape[0], self.out_channels, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward")
        batch = self._x_shape[0]
        out_h, out_w = self._out_hw
        grad_flat = (
            np.asarray(grad_out, dtype=DTYPE)
            .reshape(batch, self.out_channels, out_h * out_w)
            .transpose(0, 2, 1)
        )
        flat_weight = self.weight.data.reshape(self.out_channels, -1)
        grad_weight = np.einsum("bpo,bpk->ok", grad_flat, self._cols)
        self.weight.grad += grad_weight.reshape(self.weight.data.shape)
        if self.has_bias:
            self.bias.grad += grad_flat.sum(axis=(0, 1))
        grad_cols = grad_flat @ flat_weight
        return _col2im(
            grad_cols,
            self._x_shape,
            self.kernel_size,
            self.stride,
            self.padding,
            out_h,
            out_w,
        )


class MaxPool2d(Module):
    """Max pooling with a square window; stride defaults to the window size."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._mask: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=DTYPE)
        batch, channels, _height, _width = x.shape
        merged = x.reshape(batch * channels, 1, *x.shape[2:])
        cols, out_h, out_w = _im2col(merged, self.kernel_size, self.stride, 0)
        cols = cols.reshape(batch * channels, out_h * out_w, -1)
        argmax = cols.argmax(axis=2)
        out = np.take_along_axis(cols, argmax[:, :, None], axis=2).squeeze(2)
        mask = np.zeros_like(cols)
        np.put_along_axis(mask, argmax[:, :, None], 1.0, axis=2)
        self._mask = mask
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        return out.reshape(batch, channels, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None or self._x_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._x_shape
        out_h, out_w = self._out_hw
        grad_flat = np.asarray(grad_out, dtype=DTYPE).reshape(
            batch * channels, out_h * out_w, 1
        )
        grad_cols = self._mask * grad_flat
        grad_merged = _col2im(
            grad_cols,
            (batch * channels, 1, height, width),
            self.kernel_size,
            self.stride,
            0,
            out_h,
            out_w,
        )
        return grad_merged.reshape(batch, channels, height, width)


class AvgPool2d(Module):
    """Average pooling with a square window; stride defaults to the window."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=DTYPE)
        batch, channels, _height, _width = x.shape
        merged = x.reshape(batch * channels, 1, *x.shape[2:])
        cols, out_h, out_w = _im2col(merged, self.kernel_size, self.stride, 0)
        out = cols.mean(axis=2)
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        return out.reshape(batch, channels, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._x_shape
        out_h, out_w = self._out_hw
        window = self.kernel_size * self.kernel_size
        grad_flat = np.asarray(grad_out, dtype=DTYPE).reshape(
            batch * channels, out_h * out_w, 1
        )
        grad_cols = np.repeat(grad_flat / window, window, axis=2)
        grad_merged = _col2im(
            grad_cols,
            (batch * channels, 1, height, width),
            self.kernel_size,
            self.stride,
            0,
            out_h,
            out_w,
        )
        return grad_merged.reshape(batch, channels, height, width)


class Flatten(Module):
    """Flatten all non-batch dimensions into one."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=DTYPE)
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_out, dtype=DTYPE).reshape(self._x_shape)


class Dropout(Module):
    """Inverted dropout; active only in training mode.

    The mask generator must be supplied explicitly when determinism across
    replays is required (the training pipeline does so).
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = _default_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=DTYPE)
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep).astype(DTYPE) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_out = np.asarray(grad_out, dtype=DTYPE)
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
