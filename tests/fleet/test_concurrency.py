"""Concurrency regression tests: one shard hammered, fleets under load.

The per-archive mutex closed a real hole: ``save_set`` used to allocate
ids and mutate descriptor/refcount state without any lock, so two
threads saving through one manager could interleave id allocation and
journal transactions.  These tests hammer exactly that path.
"""

import os
import threading
from collections import OrderedDict

from repro.config import ArchiveConfig
from repro.core.manager import MultiModelManager
from repro.core.verify import ArchiveVerifier
from repro.fleet import FleetManager, IngestQueue

# CI's fleet-stress job sweeps the writer count through this knob.
THREADS = int(os.environ.get("REPRO_FLEET_WRITERS", "8"))
SAVES_PER_THREAD = 6


def run_threads(worker):
    errors = []

    def wrapped(index):
        try:
            worker(index)
        except BaseException as error:  # noqa: BLE001 - re-raised below
            errors.append(error)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestSingleArchiveHammer:
    def test_eight_threads_one_manager(self, tiny_set):
        """Satellite regression: unlocked save-id allocation races."""
        manager = MultiModelManager.with_approach("update")
        saved: dict[int, list[str]] = {i: [] for i in range(THREADS)}

        def worker(index):
            variant = tiny_set.copy()
            for name in variant.states[0]:
                variant.states[0][name] = (
                    variant.states[0][name] + index
                ).astype(variant.states[0][name].dtype)
            for _ in range(SAVES_PER_THREAD):
                saved[index].append(manager.save_set(variant))

        run_threads(worker)
        all_ids = [s for ids in saved.values() for s in ids]
        # No duplicate ids, none lost, and every descriptor exists.
        assert len(set(all_ids)) == THREADS * SAVES_PER_THREAD
        assert sorted(all_ids) == manager.list_sets()
        report = ArchiveVerifier(manager.context).verify_all()
        assert report.ok
        # Every thread's sets recover to that thread's exact variant.
        for index, ids in saved.items():
            recovered = manager.recover_set(ids[-1])
            expected = tiny_set.state(0)[next(iter(tiny_set.state(0)))] + index
            name = next(iter(recovered.state(0)))
            assert (recovered.state(0)[name] == expected).all()

    def test_eight_threads_one_fleet_shard(self, tiny_set):
        """The same hammer through the fleet's routing layer, shards=1:
        every save contends on the single shard's timed mutex."""
        fleet = FleetManager.with_approach("update", ArchiveConfig(shards=1))

        def worker(index):
            for _ in range(SAVES_PER_THREAD):
                fleet.save_set(tiny_set)

        run_threads(worker)
        assert len(fleet.list_sets()) == THREADS * SAVES_PER_THREAD
        assert fleet.shard_locks[0].acquisitions >= THREADS * SAVES_PER_THREAD
        report = ArchiveVerifier(fleet.shards[0].context).verify_all()
        assert report.ok


class TestFleetHammer:
    def test_concurrent_writers_across_shards(self, tiny_set):
        """Derived chains stay consistent when 8 writers push through the
        ingest queue against a 4-shard fleet with real workers."""
        fleet = FleetManager.with_approach("update", ArchiveConfig(shards=4))
        bases = [fleet.save_set(tiny_set) for _ in range(THREADS)]
        queue = IngestQueue(fleet, flush_max_updates=4)

        def worker(index):
            for step in range(8):
                model = step % len(tiny_set)
                state = OrderedDict(
                    (name, (array + index + step).astype(array.dtype))
                    for name, array in tiny_set.state(model).items()
                )
                queue.submit(bases[index], model, state)

        run_threads(worker)
        queue.drain()
        # Each writer owns one chain: 8 submissions / flush every 4.
        assert queue.flushes == THREADS * 2
        per_chain: dict[str, list[dict]] = {}
        for entry in queue.flush_log:
            per_chain.setdefault(entry["root"], []).append(entry)
        assert set(per_chain) == set(bases)
        for root, entries in per_chain.items():
            # Batches chain linearly and stay on the root's shard.
            assert entries[0]["base"] == root
            assert entries[1]["base"] == entries[0]["set_id"]
            assert {e["shard"] for e in entries} == {fleet.shard_of(root)}
            final = fleet.recover_set(entries[-1]["set_id"])
            writer = bases.index(root)
            name = next(iter(tiny_set.state(3)))
            # Last batch's update to model 3 was step 7 (7 % 4 == 3).
            assert (
                final.state(3)[name] == tiny_set.state(3)[name] + writer + 7
            ).all()
        queue.close()
        for shard in fleet.shards:
            assert ArchiveVerifier(shard.context).verify_all().ok
