"""Serving-path benchmark: tiered recovery cache under a read-heavy mix.

Drives the workload the serving layer exists for — a 95% recover / 5%
save mix with Zipf-skewed set popularity (newest sets hottest) — against
fleets of 1 and 4 shards with 1→32 concurrent readers, once with the
tiered cache on and once with it off, over the same seeded request
stream.

Latency is **simulated read latency per request**: every request runs
inside its own trace root and its latency is the root's rolled-up
simulated store seconds (:meth:`~repro.observability.trace.Span.total_simulated_s`).
A tier-1 hit touches no store, so it charges exactly zero; the cache-off
run replays the identical stream through the uncached path.  p50/p99
are computed over the recover requests only.

Three auxiliary sections back the tentpole claims:

* ``differential`` — an 8-version Update chain recovered newest-first:
  after v7 is cached, the cold v8 read fetches **only** the chunks whose
  digests v7's recovery did not already decode (chunk-granular reuse).
* ``degraded`` — a 2-replica archive with one replica down: a stale
  tier-1 entry is evicted, and the degraded re-read fails over to the
  surviving replica and still matches the pre-outage oracle bytes.
* byte-identity — in **every** configuration each live set's cached
  recovery is compared against the oracle (``approach.recover``, which
  bypasses the serving layer on the same context).

Determinism: the request stream (kinds, Zipf draws, perturbations) is a
pure function of the seed.  With one reader the interleaving is fixed;
with many readers only the cache-state interleaving varies, which the
assertions tolerate (they compare medians across whole runs, not single
requests).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.config import ArchiveConfig, ObservabilityConfig, ServingConfig
from repro.core.manager import MultiModelManager
from repro.core.model_set import ModelSet
from repro.fleet import FleetManager
from repro.storage.hardware import SERVER_PROFILE

#: Zipf skew: pmf(rank) ∝ 1/(rank+1)^S, rank 0 = newest set.
ZIPF_S = 1.1
ARCHITECTURE = "FFNN-48"


def _zipf_pick(u: float, count: int) -> int:
    """Inverse-CDF draw from the rank-Zipf pmf over ``count`` items."""
    weights = 1.0 / np.power(np.arange(1, count + 1, dtype=np.float64), ZIPF_S)
    cdf = np.cumsum(weights / weights.sum())
    return int(np.searchsorted(cdf, u, side="right").clip(0, count - 1))


def _perturb(base: ModelSet, rng: np.random.Generator) -> ModelSet:
    """A derived version: ~20% of layers of one model nudged."""
    derived = base.copy()
    model = int(rng.integers(0, len(derived)))
    state = derived.state(model)
    names = list(state)
    changed = max(1, len(names) // 5)
    for name in rng.choice(len(names), size=changed, replace=False):
        layer = names[int(name)]
        state[layer] = (state[layer] + np.float32(rng.standard_normal())).astype(
            np.float32
        )
    return derived


def _build_requests(
    num_requests: int, save_fraction: float, seed: int
) -> list[tuple[str, float]]:
    """The seeded request stream: ``(kind, zipf_u)`` pairs."""
    rng = np.random.default_rng(seed)
    return [
        (
            "save" if rng.random() < save_fraction else "recover",
            float(rng.random()),
        )
        for _ in range(num_requests)
    ]


def _serving_config(cache_on: bool) -> ArchiveConfig:
    return ArchiveConfig(
        dedup=True,
        profile=SERVER_PROFILE,
        serving=ServingConfig(enabled=cache_on),
        observability=ObservabilityConfig(tracing=True),
    )


def _seed_versions(
    fleet: FleetManager, num_versions: int, models_per_set: int, seed: int
) -> list[str]:
    """One derivation chain per shard, ``num_versions`` sets total."""
    rng = np.random.default_rng(seed)
    shards = len(fleet.shards)
    versions: list[str] = []
    latest_per_chain: list[tuple[str, ModelSet]] = []
    for chain in range(shards):
        base = ModelSet.build(
            ARCHITECTURE, num_models=models_per_set, seed=seed + chain
        )
        set_id = fleet.save_set(base)
        versions.append(set_id)
        latest_per_chain.append((set_id, base))
    for index in range(num_versions - shards):
        chain = index % shards
        base_id, base_set = latest_per_chain[chain]
        derived = _perturb(base_set, rng)
        set_id = fleet.save_set(derived, base_set_id=base_id)
        versions.append(set_id)
        latest_per_chain[chain] = (set_id, derived)
    return versions


def _run_config(
    shards: int,
    readers: int,
    cache_on: bool,
    requests: list[tuple[str, float]],
    num_versions: int,
    models_per_set: int,
    seed: int,
) -> dict[str, Any]:
    config = _serving_config(cache_on)
    if shards > 1:
        config = config.with_(shards=shards)
    fleet = FleetManager.with_approach("update", config)
    versions = _seed_versions(fleet, num_versions, models_per_set, seed)
    sets_lock = threading.Lock()
    latest: dict[int, tuple[str, ModelSet]] = {}
    for set_id in versions:
        shard = fleet.shard_of(set_id)
        latest[shard] = (set_id, fleet.recover_set(set_id))  # warm pre-pass

    read_latencies: list[float] = []
    latency_lock = threading.Lock()
    next_request = [0]
    save_rng_lock = threading.Lock()
    save_rng = np.random.default_rng(seed + 1)

    def serve(ordinal: int, kind: str, u: float) -> None:
        with sets_lock:
            live = list(versions)
        if kind == "save":
            with sets_lock:
                chains = sorted(latest)
                shard = chains[ordinal % len(chains)]
                base_id, base_set = latest[shard]
            with save_rng_lock:
                derived = _perturb(base_set, save_rng)
            with fleet.tracer.trace("request", key=ordinal, op="save"):
                set_id = fleet.save_set(derived, base_set_id=base_id)
            with sets_lock:
                versions.append(set_id)
                latest[shard] = (set_id, derived)
            return
        # Newest-first Zipf: rank 0 is the most recently saved set.
        target = live[len(live) - 1 - _zipf_pick(u, len(live))]
        with fleet.tracer.trace("request", key=ordinal, op="recover") as root:
            fleet.recover_set(target)
        with latency_lock:
            read_latencies.append(root.total_simulated_s())

    def worker() -> None:
        while True:
            with latency_lock:
                ordinal = next_request[0]
                if ordinal >= len(requests):
                    return
                next_request[0] += 1
            kind, u = requests[ordinal]
            serve(ordinal, kind, u)

    threads = [threading.Thread(target=worker) for _ in range(readers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # Byte-identity: every live set's served bytes vs the uncached oracle.
    identical = True
    for set_id in versions:
        manager = fleet.shards[fleet.shard_of(set_id)]
        if not fleet.recover_set(set_id).equals(manager.approach.recover(set_id)):
            identical = False

    latencies = np.asarray(read_latencies, dtype=np.float64)
    entry: dict[str, Any] = {
        "shards": shards,
        "readers": readers,
        "cache": "on" if cache_on else "off",
        "requests": len(requests),
        "recover_requests": int(latencies.size),
        "p50_read_s": float(np.percentile(latencies, 50)),
        "p99_read_s": float(np.percentile(latencies, 99)),
        "mean_read_s": float(latencies.mean()),
        "identical_to_oracle": identical,
    }
    if cache_on:
        counters = fleet.serving_counters()
        entry["set_hit_rate"] = counters["set_hit_rate"]
        entry["chunk_hit_rate"] = counters["chunk_hit_rate"]
        entry["bytes_saved"] = counters["bytes_saved"]
        entry["logical_bytes_served"] = counters["logical_bytes_served"]
    return entry


def _run_differential(models_per_set: int, seed: int) -> dict[str, Any]:
    """Cold v8-after-v7: only the chunks v7 didn't already decode move."""
    manager = MultiModelManager.with_approach("update", _serving_config(True))
    rng = np.random.default_rng(seed)
    base = ModelSet.build(ARCHITECTURE, num_models=models_per_set, seed=seed)
    versions = [manager.save_set(base)]
    sets = [base]
    for _ in range(7):
        derived = _perturb(sets[-1], rng)
        versions.append(manager.save_set(derived, base_set_id=versions[-1]))
        sets.append(derived)
    serving = manager.context.serving
    manager.recover_set(versions[-2])  # v7 populates tier 2
    serving.evict()  # drop tier 1, keep decoded chunks
    cached_digests = set(serving.chunks.keys())
    v8_digests = _unique_digests(manager, versions[-1])
    expected_cold = len(v8_digests - cached_digests)
    before = serving.stats.counters()
    recovered = manager.recover_set(versions[-1])
    after = serving.stats.counters()
    fetched = after["chunk_misses"] - before["chunk_misses"]
    reused = after["chunk_hits"] - before["chunk_hits"]
    return {
        "v8_unique_chunks": len(v8_digests),
        "chunks_fetched_cold": fetched,
        "chunks_reused": reused,
        "expected_cold_fetches": expected_cold,
        "chunk_granular": fetched == expected_cold and fetched < len(v8_digests),
        "identical_to_oracle": recovered.equals(
            manager.approach.recover(versions[-1])
        ),
    }


def _unique_digests(manager: MultiModelManager, set_id: str) -> set:
    from repro.core.baseline import _chunked_digests

    document = manager.context.set_document(set_id)
    matrix = _chunked_digests(manager.context, document, set_id)
    return {digest for row in matrix for digest in row}


def _run_degraded(models_per_set: int, seed: int, fault_seed: int) -> dict[str, Any]:
    """Replica outage: cache serves hits, misses fail over, bytes match."""
    from repro.storage.faults import FaultInjector, inject_replica_faults

    config = _serving_config(True).with_(replicas=2)
    manager = MultiModelManager.with_approach("update", config)
    rng = np.random.default_rng(seed)
    base = ModelSet.build(ARCHITECTURE, num_models=models_per_set, seed=seed)
    set_id = manager.save_set(base)
    derived = _perturb(base, rng)
    derived_id = manager.save_set(derived, base_set_id=set_id)

    oracle = manager.approach.recover(derived_id)  # pre-outage bytes
    manager.recover_set(derived_id)  # warm tier 1
    downed = fault_seed % 2
    inject_replica_faults(
        manager.context, downed, FaultInjector(down_at=0, down_mode="before")
    )
    hit = manager.recover_set(derived_id)  # tier-1 hit, no store touched
    hit_ok = hit.equals(oracle)
    serving = manager.context.serving
    serving.evict(chunks=True)  # stale-entry scenario: force a cold re-read
    degraded = manager.recover_set(derived_id)  # hedged/failover read path
    return {
        "fault_seed": fault_seed,
        "replica_down": downed,
        "hit_served_during_outage": hit_ok,
        "degraded_identical": degraded.equals(oracle),
    }


def run_serving_benchmark(
    shard_counts: Sequence[int] = (1, 4),
    reader_counts: Sequence[int] = (1, 8, 32),
    num_versions: int = 6,
    models_per_set: int = 8,
    num_requests: int = 200,
    save_fraction: float = 0.05,
    seed: int = 0,
    fault_seed: int = 0,
) -> dict[str, Any]:
    requests = _build_requests(num_requests, save_fraction, seed)
    configs = []
    for shards in shard_counts:
        for readers in reader_counts:
            for cache_on in (True, False):
                configs.append(
                    _run_config(
                        shards,
                        readers,
                        cache_on,
                        requests,
                        num_versions,
                        models_per_set,
                        seed,
                    )
                )
    speedups: dict[str, float] = {}
    for shards in shard_counts:
        for readers in reader_counts:
            on = _find(configs, shards, readers, "on")
            off = _find(configs, shards, readers, "off")
            speedups[f"p50_s{shards}_r{readers}"] = off["p50_read_s"] / max(
                on["p50_read_s"], 1e-12
            )
    return {
        "workload": {
            "architecture": ARCHITECTURE,
            "models_per_set": models_per_set,
            "num_versions": num_versions,
            "num_requests": num_requests,
            "save_fraction": save_fraction,
            "zipf_s": ZIPF_S,
            "seed": seed,
        },
        "configs": configs,
        "speedups": speedups,
        "differential": _run_differential(models_per_set, seed),
        "degraded": _run_degraded(models_per_set, seed, fault_seed),
    }


def _find(configs: list[dict], shards: int, readers: int, cache: str) -> dict:
    for entry in configs:
        if (
            entry["shards"] == shards
            and entry["readers"] == readers
            and entry["cache"] == cache
        ):
            return entry
    raise KeyError((shards, readers, cache))


def write_report(report: dict[str, Any], path: "str | Path") -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def format_report(report: dict[str, Any]) -> str:
    lines = ["serving benchmark (95% recover / 5% save, Zipf reads)"]
    lines.append(
        f"{'shards':>6} {'readers':>7} {'cache':>5} {'p50 ms':>10} "
        f"{'p99 ms':>10} {'set hit':>8} {'chunk hit':>9}"
    )
    for entry in report["configs"]:
        set_hit = (
            f"{entry['set_hit_rate']:.1%}" if "set_hit_rate" in entry else "-"
        )
        chunk_hit = (
            f"{entry['chunk_hit_rate']:.1%}" if "chunk_hit_rate" in entry else "-"
        )
        lines.append(
            f"{entry['shards']:>6} {entry['readers']:>7} {entry['cache']:>5} "
            f"{entry['p50_read_s'] * 1e3:>10.4f} "
            f"{entry['p99_read_s'] * 1e3:>10.4f} {set_hit:>8} {chunk_hit:>9}"
        )
    for name, value in sorted(report["speedups"].items()):
        lines.append(f"speedup {name}: {value:.1f}x")
    diff = report["differential"]
    lines.append(
        f"differential: v8 has {diff['v8_unique_chunks']} unique chunks, "
        f"cold read fetched {diff['chunks_fetched_cold']} "
        f"(reused {diff['chunks_reused']})"
    )
    deg = report["degraded"]
    lines.append(
        f"degraded (replica {deg['replica_down']} down): "
        f"hit served: {deg['hit_served_during_outage']}, "
        f"failover identical: {deg['degraded_identical']}"
    )
    return "\n".join(lines)
