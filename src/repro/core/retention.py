"""Retention management: compaction and chain-aware garbage collection.

Two maintenance operations an unbounded archive eventually needs:

* :meth:`RetentionManager.compact` — rewrite a delta (Update) or
  provenance set as a full snapshot *in place*.  This cuts the set's
  recovery chain to zero and, crucially, makes its ancestors deletable.
* :meth:`RetentionManager.collect` — delete every set not in a keep
  list, **except** sets that kept sets still need for recovery (their
  chain ancestors).  Deleting a needed base would be data loss; the
  collector refuses it structurally rather than by convention.

The combination implements the natural policy "keep the last *k*
generations": compact the *k*-th newest set, then collect with the last
*k* as the keep list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.approach import SETS_COLLECTION, SaveContext
from repro.core.lineage import LineageGraph
from repro.core.manager import APPROACHES
from repro.core.model_set import ModelSet
from repro.core.update import HASH_COLLECTION, _set_hashes
from repro.errors import DocumentNotFoundError, ReproError
from repro.nn.serialization import parameters_to_bytes


@dataclass
class CollectionReport:
    """What a garbage-collection pass did."""

    deleted_sets: list[str] = field(default_factory=list)
    retained_for_chains: list[str] = field(default_factory=list)
    bytes_reclaimed: int = 0
    #: Zero-reference chunks reclaimed by the chunk-layer sweep (dedup
    #: archives only); their bytes are included in ``bytes_reclaimed``.
    chunks_reclaimed: int = 0


class RetentionManager:
    """Compaction and garbage collection over one save context."""

    def __init__(self, context: SaveContext) -> None:
        self.context = context

    # -- compaction ---------------------------------------------------------
    def compact(self, set_id: str) -> None:
        """Rewrite a derived set as an independent full snapshot.

        The set keeps its id — descendants' base references stay valid —
        but its descriptor becomes ``kind: full`` with a freshly written
        parameter artifact, and its recovery no longer touches ancestors.
        Full sets (Baseline, MMlib-base, snapshots) are left untouched.
        On a journaled context the rewrite is one atomic commit: a crash
        mid-compaction rolls back to the original delta set on reopen.
        """
        store = self.context.document_store
        try:
            document = store._collections[SETS_COLLECTION][set_id]
        except KeyError:
            raise DocumentNotFoundError(f"unknown set {set_id!r}") from None
        approach_name = str(document.get("type"))
        if document.get("kind", "full") == "full":
            return
        if document.get("storage") == "chunked":
            # Chunked deltas already recover in one hop (the digest matrix
            # is the whole recipe) and their bases are deletable — the
            # refcounts protect shared chunks — so there is nothing for
            # compaction to improve.
            return
        if approach_name not in ("update", "provenance", "pas-delta"):
            raise ReproError(
                f"set {set_id!r} of type {approach_name!r} cannot be compacted"
            )
        approach = APPROACHES[approach_name](self.context)
        model_set = approach.recover(set_id)
        with self.context.save_transaction("compact", approach_name):
            self._write_snapshot(set_id, document, model_set, approach_name)
            if self.context.registry is not None:
                self.context.registry.record_compact(set_id)
        # The bytes are unchanged but the read recipe is not: a cached
        # materialization must re-assemble from the new snapshot.
        if self.context.serving is not None:
            self.context.serving.invalidate_set(set_id)

    def _write_snapshot(
        self,
        set_id: str,
        document: dict,
        model_set: ModelSet,
        approach_name: str,
    ) -> None:
        payload = b"".join(parameters_to_bytes(state) for state in model_set.states)
        artifact_id = self.context.file_store.put(
            payload, artifact_id=f"{set_id}-compacted-params", category="parameters"
        )
        # Drop the now-superseded delta blob, if any.
        old_artifact = document.get("params_artifact")
        new_document = {
            "type": approach_name,
            "kind": "full",
            "chain_depth": 0,
            "architecture": model_set.architecture,
            "architecture_code": document.get("architecture_code", ""),
            "num_models": len(model_set),
            "schema": model_set.schema.to_json(),
            "params_artifact": artifact_id,
            "metadata": document.get("metadata", {}),
            "compacted_from": document.get("base_set"),
        }
        self.context.document_store.replace(SETS_COLLECTION, set_id, new_document)
        if old_artifact is not None and self.context.file_store.exists(old_artifact):
            self.context.file_store.delete(old_artifact)
        if approach_name == "update":
            # Refresh hash info so future derived saves diff correctly.
            hashes = _set_hashes(model_set)
            if self.context.document_store.exists(HASH_COLLECTION, set_id):
                self.context.document_store.replace(
                    HASH_COLLECTION,
                    set_id,
                    {"layers": model_set.schema.layer_names(), "hashes": hashes},
                )
            else:
                self.context.document_store.insert(
                    HASH_COLLECTION,
                    {"layers": model_set.schema.layer_names(), "hashes": hashes},
                    doc_id=set_id,
                    category="hash-info",
                )

    # -- garbage collection ------------------------------------------------------
    def collect(self, keep: list[str]) -> CollectionReport:
        """Delete all sets except ``keep`` and their recovery chains.

        Returns a report of what was deleted and what survived because a
        kept set still depends on it.  Unknown ids in ``keep`` raise.
        """
        store = self.context.document_store
        all_ids = set(store.collection_ids(SETS_COLLECTION))
        unknown = [set_id for set_id in keep if set_id not in all_ids]
        if unknown:
            raise DocumentNotFoundError(f"keep list references unknown sets {unknown}")

        lineage = LineageGraph.from_context(self.context)
        needed: set[str] = set()
        for set_id in keep:
            needed.update(lineage.recovery_chain(set_id))

        report = CollectionReport()
        report.retained_for_chains = sorted(needed - set(keep))
        released_chunks = False
        # One atomic commit for the whole pass: document deletions are
        # journaled with their prior contents and artifact deletes are
        # deferred to commit, so a crash mid-collection (even mid-sweep)
        # rolls back to the archive exactly as it was — no half-released
        # refcounts, no packs missing live chunks.
        with self.context.save_transaction("gc"):
            for set_id in sorted(all_ids - needed):
                document = store._collections[SETS_COLLECTION][set_id]
                released_chunks |= document.get("storage") == "chunked"
                report.bytes_reclaimed += self._delete_set(set_id)
                report.deleted_sets.append(set_id)
                # Inside the GC transaction: the catalog update (version
                # removal, latest-tag retarget) rolls back with the pass.
                if self.context.registry is not None:
                    self.context.registry.record_delete(set_id)
            if released_chunks:
                sweep = self.context.chunk_store().sweep(
                    workers=self.context.workers
                )
                report.bytes_reclaimed += sweep.bytes_reclaimed
                report.chunks_reclaimed = sweep.chunks_reclaimed
        if self.context.serving is not None:
            for set_id in report.deleted_sets:
                self.context.serving.invalidate_set(set_id)
        return report

    def keep_last(self, count: int, compact_oldest_kept: bool = True) -> CollectionReport:
        """Retain the newest ``count`` sets (by id order) and collect the rest.

        With ``compact_oldest_kept`` (default), the oldest kept set is
        first compacted into a full snapshot so that *no* older set needs
        to survive for chain reasons — the policy most deployments want.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        all_ids = self.context.document_store.collection_ids(SETS_COLLECTION)
        keep = all_ids[-count:]
        if compact_oldest_kept and keep:
            self.compact(keep[0])
        return self.collect(keep)

    def _delete_set(self, set_id: str) -> int:
        """Delete one set's documents and artifacts; returns bytes freed.

        Chunked sets only *release* their chunk references here; the
        shared bytes are reclaimed by the sweep :meth:`collect` runs after
        all deletions, so a chunk stays alive while any surviving set
        still references it.
        """
        store = self.context.document_store
        file_store = self.context.file_store
        document = store._collections[SETS_COLLECTION][set_id]
        freed = 0
        if document.get("storage") == "chunked":
            matrix = self._chunk_digest_matrix(document, set_id)
            self.context.chunk_store().release(
                digest for row in matrix for digest in row
            )
        artifact = document.get("params_artifact")
        if artifact is not None and file_store.exists(artifact):
            freed += file_store.size(artifact)
            file_store.delete(artifact)
        for model_id in document.get("model_ids", []):
            model_doc = store._collections.get("mmlib_models", {}).get(model_id)
            if model_doc is None:
                continue
            for key in ("params_artifact", "code_artifact"):
                model_artifact = model_doc.get(key)
                if model_artifact and file_store.exists(model_artifact):
                    freed += file_store.size(model_artifact)
                    file_store.delete(model_artifact)
            store.delete("mmlib_models", model_id)
        if store.exists(HASH_COLLECTION, set_id):
            store.delete(HASH_COLLECTION, set_id)
        store.delete(SETS_COLLECTION, set_id)
        return freed

    def _chunk_digest_matrix(self, document: dict, set_id: str) -> list:
        """A chunked set's digest matrix, read on the management plane."""
        if "chunk_digests" in document:
            return document["chunk_digests"]
        store = self.context.document_store
        hash_doc = store._collections.get(HASH_COLLECTION, {}).get(set_id)
        if hash_doc is None:
            raise ReproError(
                f"chunked set {set_id!r} has neither chunk_digests nor hash info"
            )
        return hash_doc["hashes"]
