"""Trace-export JSON schema and a dependency-free validator.

The CI trace job asserts that every exported trace document validates
against the checked-in copy of :data:`TRACE_SCHEMA`
(``benchmarks/trace_schema.json``).  The validator implements the subset
of JSON Schema the trace schema uses — ``type``, ``properties``,
``required``, ``items``, ``enum``, ``minimum``, ``additionalProperties``
and ``$ref`` into ``$defs`` — because the repo deliberately takes no
third-party dependencies beyond numpy.

Run as a module to validate a file::

    python -m repro.observability.schema results/dedup_trace.json \
        benchmarks/trace_schema.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

_SPAN_SCHEMA = {
    "type": "object",
    "required": [
        "id",
        "name",
        "identity",
        "kind",
        "wall_s",
        "simulated_s",
        "simulated_total_s",
        "children",
    ],
    "properties": {
        "id": {"type": "string"},
        "name": {"type": "string"},
        "identity": {"type": "string"},
        "kind": {"type": ["string", "null"]},
        "key": {"type": ["integer", "string"]},
        "wall_s": {"type": "number", "minimum": 0},
        "simulated_s": {"type": "number", "minimum": 0},
        "simulated_total_s": {"type": "number", "minimum": 0},
        "attrs": {"type": "object"},
        "simulated_by_kind": {
            "type": "object",
            "additionalProperties": {"type": "number"},
        },
        "op_counts": {
            "type": "object",
            "additionalProperties": {"type": "integer"},
        },
        "events": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name"],
                "properties": {"name": {"type": "string"}},
            },
        },
        "children": {"type": "array", "items": {"$ref": "#/$defs/span"}},
    },
    "additionalProperties": False,
}

#: Schema of the documents produced by
#: :func:`repro.observability.export.trace_document`.
TRACE_SCHEMA = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro trace export",
    "type": "object",
    "required": ["version", "traces"],
    "properties": {
        "version": {"type": "integer", "enum": [1]},
        "meta": {"type": "object"},
        "traces": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["root", "phases", "total_simulated_s"],
                "properties": {
                    "root": {"$ref": "#/$defs/span"},
                    "phases": {
                        "type": "object",
                        "additionalProperties": {"type": "number"},
                    },
                    "total_simulated_s": {"type": "number", "minimum": 0},
                },
                "additionalProperties": False,
            },
        },
    },
    "additionalProperties": False,
    "$defs": {"span": _SPAN_SCHEMA},
}

_TYPE_CHECKS = {
    "object": lambda value: isinstance(value, dict),
    "array": lambda value: isinstance(value, list),
    "string": lambda value: isinstance(value, str),
    "integer": lambda value: isinstance(value, int) and not isinstance(value, bool),
    "number": lambda value: isinstance(value, (int, float))
    and not isinstance(value, bool),
    "boolean": lambda value: isinstance(value, bool),
    "null": lambda value: value is None,
}


def _resolve_ref(ref: str, root_schema: dict) -> dict:
    node: dict = root_schema
    for part in ref.removeprefix("#/").split("/"):
        node = node[part]
    return node


def validate(instance, schema: dict, root_schema: dict | None = None, path: str = "$") -> list[str]:
    """Validate ``instance`` against ``schema``; returns error strings."""
    root_schema = root_schema if root_schema is not None else schema
    if "$ref" in schema:
        schema = _resolve_ref(schema["$ref"], root_schema)
    errors: list[str] = []

    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[name](instance) for name in allowed):
            return [f"{path}: expected type {expected}, got {type(instance).__name__}"]

    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']}")
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            errors.append(f"{path}: {instance} < minimum {schema['minimum']}")

    if isinstance(instance, dict):
        for name in schema.get("required", []):
            if name not in instance:
                errors.append(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for name, value in instance.items():
            if name in properties:
                errors.extend(
                    validate(value, properties[name], root_schema, f"{path}.{name}")
                )
            elif isinstance(additional, dict):
                errors.extend(
                    validate(value, additional, root_schema, f"{path}.{name}")
                )
            elif additional is False:
                errors.append(f"{path}: unexpected property {name!r}")

    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            errors.extend(
                validate(item, schema["items"], root_schema, f"{path}[{index}]")
            )

    return errors


def validate_trace_document(document: dict, schema: dict | None = None) -> list[str]:
    """Errors of a trace export against the (given or built-in) schema."""
    return validate(document, schema or TRACE_SCHEMA)


def main(argv: "list[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or len(argv) > 2:
        print(
            "usage: python -m repro.observability.schema TRACE_JSON [SCHEMA_JSON]",
            file=sys.stderr,
        )
        return 2
    document = json.loads(Path(argv[0]).read_text())
    schema = json.loads(Path(argv[1]).read_text()) if len(argv) == 2 else None
    errors = validate_trace_document(document, schema)
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        return 1
    print(f"{argv[0]}: valid ({len(document.get('traces', []))} trace(s))")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI job
    raise SystemExit(main())
