"""Content-addressed dedup sweep: storage, TTS, recovery identity, GC.

Runs the paper's default scenario (U1 + three U3 cycles) with the chunk
layer off and on for every approach that supports the knob, and writes
the full report to ``results/dedup.json``.

Claims asserted here (all deterministic — seeded scenario, simulated
store charges, content digests):

* Baseline's U3 cycles shrink by >= 30 % in parameter bytes with dedup
  on (unchanged layers are elided instead of re-snapshotted) — in
  practice the reduction is ~90 %;
* the simulated U3 time-to-save improves alongside (elided chunks cost
  no file-store operation);
* recovery is byte-identical with dedup on or off for every approach;
* after garbage-collecting all but the newest set, the sweep reclaims
  exactly the chunks referenced only by the deleted sets.
"""

import json
from pathlib import Path

from benchmarks.conftest import BENCH_NUM_MODELS
from repro.bench.dedup import format_report, run_dedup_benchmark, write_report
from repro.observability.schema import validate_trace_document

NUM_MODELS = BENCH_NUM_MODELS
CYCLES = 3

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results" / "dedup.json"
TRACE_PATH = RESULTS_PATH.with_name("dedup_trace.json")
SCHEMA_PATH = Path(__file__).resolve().parent / "trace_schema.json"


def test_dedup_sweep(benchmark):
    report = benchmark.pedantic(
        lambda: run_dedup_benchmark(
            num_models=NUM_MODELS, cycles=CYCLES, trace_path=TRACE_PATH
        ),
        rounds=1,
        iterations=1,
    )
    write_report(report, RESULTS_PATH)
    print(format_report(report))
    benchmark.extra_info["report"] = report

    # The traced run's JSON export validates against the *checked-in*
    # schema (the copy CI and external consumers pin against), and every
    # trace's phase breakdown sums to its own simulated total.
    document = json.loads(Path(report["trace_path"]).read_text())
    schema = json.loads(SCHEMA_PATH.read_text())
    assert validate_trace_document(document, schema) == []
    for trace in document["traces"]:
        assert (
            abs(sum(trace["phases"].values()) - trace["total_simulated_s"])
            <= 1e-9
        )

    baseline = report["approaches"]["baseline"]
    # U3 cycles: >= 30 % fewer parameter bytes (acceptance floor; the
    # measured reduction is ~90 % — only changed layers are appended).
    assert baseline["u3_storage_reduction"] >= 0.30
    # The whole archive shrinks too (U1's cross-model duplicates dedup).
    assert baseline["total_storage_reduction"] >= 0.30
    # Deterministic simulated TTS improvement on the U3 cycles.
    assert baseline["u3_simulated_tts_speedup"] > 1.0

    for approach, entry in report["approaches"].items():
        # Byte-identical recovery with the knob on or off.
        assert entry["recovery_identical"], approach
        # GC after dropping all but the newest set reclaims exactly the
        # chunks with zero remaining references.
        gc = entry["on"]["gc"]
        assert gc["exact"], approach
        assert gc["chunks_reclaimed"] == gc["predicted_chunks"], approach
