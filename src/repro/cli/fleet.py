"""Fleet (sharded-archive) dispatch for the ``repro-archive`` verbs.

A fleet layout (``shard-<i>/`` subtrees) routes every verb through
:func:`_run_fleet`: inspection verbs iterate the shards and aggregate
the worst exit code, set-addressed verbs route to the owning shard, and
``gc``/``maintain`` apply one fleet-wide policy decision.  The
``deadletter`` verb group (parked ingest batches) is fleet-only and
handled by :func:`_cmd_deadletter`.
"""

from __future__ import annotations

import argparse

from repro.cli.archive import _cmd_stats
from repro.cli.common import _detect_approach
from repro.cli.maintenance import _cmd_warm, _maintain
from repro.config import ArchiveConfig, ObservabilityConfig
from repro.core.approach import SETS_COLLECTION, SaveContext
from repro.core.retention import RetentionManager
from repro.errors import ReproError
from repro.storage.persistent import open_context

#: Verbs that run once per shard and aggregate the worst exit code.
_FLEET_ITERATED = {"info", "lineage", "verify", "fsck", "scrub", "stats"}
#: Verbs addressed by set id, routed to the shard owning the set.
_FLEET_ROUTED = {"history", "compact", "export"}


def _fleet_shard_count(directory: str, config: ArchiveConfig) -> int:
    """Shards to open: detected layout, ``--shards``, or their agreement."""
    from repro.storage.persistent import detect_shards

    detected = detect_shards(directory)
    if config.shards is None:
        return detected
    num = int(config.shards)
    if detected and detected != num:
        raise ReproError(
            f"archive at {directory} has {detected} shard(s) but "
            f"--shards {num} was requested; resharding an existing fleet "
            "is not supported"
        )
    from pathlib import Path

    root = Path(directory)
    if not detected and ((root / "artifacts").is_dir() or (root / "documents").is_dir()):
        raise ReproError(
            f"{directory} holds a plain single archive; move its contents "
            "into shard-0/ to adopt the fleet layout (or drop --shards)"
        )
    return num


def _open_fleet_contexts(
    directory: str, indices: "list[int]", config: ArchiveConfig
) -> list[SaveContext]:
    """Open the given ``shard-<i>/`` contexts, with fleet observability.

    ``indices`` is normally ``range(num)``; a degraded fleet (some shard
    directory missing) passes only the present shards so the others are
    reported DOWN instead of being silently recreated empty.  Tracing
    shares one recorder across shards (concurrent fleet traces stay one
    stream); metrics register each shard's stats under a
    ``fleet_shard_<i>_`` prefix instead of the colliding single-archive
    names.  Shards carry no per-shard registry — the fleet catalog
    lives at the root, opened by the ``query`` verbs directly.
    """
    from pathlib import Path

    shard_config = config.with_(
        shards=None, registry=False, observability=ObservabilityConfig()
    )
    contexts = [
        open_context(str(Path(directory) / f"shard-{index}"), config=shard_config)
        for index in indices
    ]
    settings = config.observability
    if settings.tracing:
        from repro.observability.trace import TraceRecorder, install_tracing

        recorder = TraceRecorder()
        for context in contexts:
            install_tracing(context, recorder)
    if settings.metrics:
        from repro.observability.metrics import global_registry

        registry = global_registry()
        for index, context in zip(indices, contexts):
            registry.register_stats(
                f"fleet_shard_{index}_file_store", context.file_store.stats
            )
            registry.register_stats(
                f"fleet_shard_{index}_document_store",
                context.document_store.stats,
            )
            context.metrics = registry
    return contexts


def _owning_context(contexts: list[SaveContext], set_id: str) -> SaveContext:
    for context in contexts:
        if context.document_store.exists(SETS_COLLECTION, set_id):
            return context
    raise ReproError(
        f"set {set_id!r} not found on any of the {len(contexts)} shard(s)"
    )


def _cmd_fleet_gc(contexts: list[SaveContext], args: argparse.Namespace) -> int:
    """Fleet-wide retention: one policy decision, one pass per shard.

    ``--keep-last K`` keeps the newest K sets *across the whole fleet*
    (ids are fleet-ordered), compacting each shard's oldest kept set so
    no older ancestors need to survive — matching single-archive
    ``keep_last`` semantics shard by shard.
    """
    per_shard_ids = [
        context.document_store.collection_ids(SETS_COLLECTION)
        for context in contexts
    ]
    if args.keep_last is not None:
        if args.keep_last <= 0:
            raise ReproError("--keep-last must be positive")
        all_ids = sorted(set_id for ids in per_shard_ids for set_id in ids)
        keep = set(all_ids[-args.keep_last :])
    else:
        keep = set(args.keep or [])
    deleted: list[str] = []
    retained: list[str] = []
    chunks = 0
    reclaimed = 0
    for context, shard_ids in zip(contexts, per_shard_ids):
        retention = RetentionManager(context)
        shard_keep = [set_id for set_id in shard_ids if set_id in keep]
        if args.keep_last is not None and shard_keep:
            retention.compact(shard_keep[0])
        report = retention.collect(keep=shard_keep)
        deleted.extend(report.deleted_sets)
        retained.extend(report.retained_for_chains)
        chunks += report.chunks_reclaimed
        reclaimed += report.bytes_reclaimed
    print(f"deleted {len(deleted)} sets")
    for set_id in sorted(deleted):
        print(f"  - {set_id}")
    if retained:
        print(f"retained for recovery chains: {sorted(retained)}")
    if chunks:
        print(f"swept {chunks} zero-reference chunks")
    print(f"reclaimed {reclaimed:,} bytes")
    return 0


def _cmd_fleet_warm(contexts: list[SaveContext], args: argparse.Namespace) -> int:
    """Warm each set on the shard that owns it (``--all``: every shard)."""
    codes: list[int] = []
    if args.all:
        for index, context in enumerate(contexts):
            print(f"== shard-{index} ==")
            codes.append(_cmd_warm(context, args))
        return max(codes) if codes else 0
    routed: dict[int, tuple[SaveContext, list[str]]] = {}
    for set_id in args.set_ids:
        context = _owning_context(contexts, set_id)
        routed.setdefault(id(context), (context, []))[1].append(set_id)
    for context, set_ids in routed.values():
        shard_args = argparse.Namespace(**{**vars(args), "set_ids": set_ids})
        codes.append(_cmd_warm(context, shard_args))
    return max(codes) if codes else 0


def _cmd_deadletter(
    args: argparse.Namespace, config: ArchiveConfig, num: int
) -> int:
    """``deadletter list|replay|purge`` on a fleet's parked ingest batches.

    Exit codes follow the degraded-archive convention: 0 when nothing is
    pending (or everything replayed), 1 when entries remain parked,
    skipped, or failed, 2 on operational errors.
    """
    from pathlib import Path

    from repro.fleet.deadletter import DEADLETTER_DIR, DeadLetterStore

    if num <= 0:
        raise ReproError(
            "deadletter operates on fleet archives (no shard-<i>/ layout "
            f"found at {args.directory})"
        )
    root = Path(args.directory)
    store_dir = root / DEADLETTER_DIR
    if args.action == "list":
        if not store_dir.is_dir():
            print("0 dead-letter entries")
            return 0
        entries = DeadLetterStore(store_dir).entries(shard=args.shard)
        print(f"{len(entries)} dead-letter entries")
        for entry in entries:
            print(
                f"  {entry['id']}  shard={entry['shard']}  "
                f"root={entry['root']}  models={len(entry['models'])}  "
                f"updates={entry['updates']}  error={entry['error']}"
            )
        return 1 if entries else 0
    if args.action == "purge":
        if not store_dir.is_dir():
            print("purged 0 dead-letter entries")
            return 0
        count = DeadLetterStore(store_dir).purge(
            entry_ids=args.ids, shard=args.shard
        )
        print(f"purged {count} dead-letter entries")
        return 0
    # replay: re-submit parked batches through the normal ingest path so
    # lineage and byte-identity of the recovered chains are preserved.
    if not store_dir.is_dir():
        print("0 dead-letter entries to replay")
        return 0
    approach = args.approach
    if approach is None:
        shard_config = config.with_(
            shards=None, registry=False, observability=ObservabilityConfig()
        )
        for index in range(num):
            shard_dir = root / f"shard-{index}"
            if not shard_dir.is_dir():
                continue
            approach = _detect_approach(
                open_context(str(shard_dir), config=shard_config)
            )
            if approach is not None:
                break
    if approach is None:
        raise ReproError(
            "could not detect the fleet's approach; pass --approach"
        )
    from repro.errors import IngestError
    from repro.fleet import FleetManager, IngestQueue

    fleet = FleetManager.open(args.directory, approach, config)
    if fleet.deadletter.count == 0:
        print("0 dead-letter entries to replay")
        return 0
    queue = IngestQueue(fleet, flush_max_updates=10**9, workers=0)
    try:
        summary = queue.replay_dead_letters(shard=args.shard)
    finally:
        try:
            queue.close()
        except IngestError:
            pass
    for entry_id in summary["replayed"]:
        print(f"replayed {entry_id}")
    for entry_id in summary["skipped"]:
        print(f"skipped {entry_id} (shard still down)")
    for failure in summary["failed"]:
        print(
            f"failed {failure['id']}: {failure['error']} "
            f"(re-parked as {', '.join(failure['reparked'])})"
        )
    print(
        f"replayed {len(summary['replayed'])} entries, "
        f"{len(summary['skipped'])} skipped, {len(summary['failed'])} failed"
    )
    return 0 if not summary["skipped"] and not summary["failed"] else 1


def _run_fleet(
    args: argparse.Namespace, config: ArchiveConfig, num: int, commands: dict
) -> int:
    from pathlib import Path

    command = args.command
    missing = [
        index
        for index in range(num)
        if not (Path(args.directory) / f"shard-{index}").is_dir()
    ]
    if missing and command not in _FLEET_ITERATED:
        names = ", ".join(f"shard-{index}" for index in missing)
        raise ReproError(
            f"fleet at {args.directory} is degraded: {names} missing; only "
            "per-shard inspection verbs (info/lineage/verify/fsck/scrub/"
            "stats) run against a degraded fleet — restore the missing "
            "shard directories first"
        )
    present = [index for index in range(num) if index not in missing]
    contexts = _open_fleet_contexts(args.directory, present, config)
    if command == "gc":
        result = _cmd_fleet_gc(contexts, args)
    elif command == "maintain":
        # Maintenance is inherently fleet-aware: one scheduler, one
        # retention decision, per-shard atomic passes.
        result = _maintain(contexts, args)
    elif command == "warm":
        result = _cmd_fleet_warm(contexts, args)
    elif command == "evict":
        # Eviction is fleet-wide: every shard drops its entries.
        codes = []
        for index, context in enumerate(contexts):
            print(f"== shard-{index} ==")
            codes.append(commands[command](context, args))
        result = max(codes) if codes else 0
    elif command == "stats" and getattr(args, "live", False):
        # The registry is process-wide; one export covers every shard.
        result = _cmd_stats(contexts[0], args)
    elif command in _FLEET_ITERATED:
        total_sets = sum(
            len(context.document_store.collection_ids(SETS_COLLECTION))
            for context in contexts
        )
        total_bytes = sum(context.total_bytes() for context in contexts)
        if command == "info":
            print(f"fleet: {num} shards")
            if missing:
                print(f"fleet shards DOWN: {len(missing)}")
            print(f"fleet sets: {total_sets}")
            print(f"fleet stored bytes: {total_bytes:,}")
        # A missing shard floors the exit at 1 (degraded, like a missing
        # replica) but never blocks inspecting the healthy shards.
        codes = [1] if missing else []
        by_index = dict(zip(present, contexts))
        for index in range(num):
            print(f"== shard-{index} ==")
            if index in by_index:
                codes.append(commands[command](by_index[index], args))
            else:
                print("DOWN: shard directory missing")
        result = max(codes) if codes else 0
    elif command in _FLEET_ROUTED:
        result = commands[command](_owning_context(contexts, args.set_id), args)
    elif command == "migrate":
        # Merge every shard into one target archive: fleet ids are
        # unique, so sequential per-shard migration cannot collide.
        codes = [commands[command](context, args) for context in contexts]
        result = max(codes) if codes else 0
    else:  # pragma: no cover - argparse restricts the verb set
        raise ReproError(f"command {command!r} does not support fleet archives")
    if command in ("gc", "maintain"):
        # Deletions and compactions ran against the shard contexts,
        # which carry no per-shard registry; resync the fleet-level
        # catalog incrementally (not a rebuild — incremental deletes
        # preserve family names whose explicitly-named root was
        # collected, and keep surviving version numbers stable).
        from repro.registry import REGISTRY_DIR, open_fleet_registry

        registry_dir = Path(args.directory) / REGISTRY_DIR
        if registry_dir.is_dir():
            by_shard = dict(zip(present, contexts))
            registry = open_fleet_registry(
                registry_dir, resolver=lambda shard: by_shard[shard]
            )
            surviving = {
                shard: set(ctx.document_store.collection_ids(SETS_COLLECTION))
                for shard, ctx in by_shard.items()
            }
            for record in registry.records():
                owned = surviving.get(record.shard)
                if owned is not None and record.set_id not in owned:
                    registry.record_delete(record.set_id)
            # Re-record survivors: idempotent (family/version kept), and
            # it refreshes compacted descriptors plus heals any record
            # lost in the save path's post-commit crash gap.
            for shard, owned in surviving.items():
                for set_id in sorted(owned):
                    registry.record_save(set_id, shard=shard)
    trace_path = config.observability.trace_path
    tracer = contexts[0].tracer if contexts else None
    if trace_path and tracer is not None and tracer.roots:
        from repro.observability import write_trace_json

        path = write_trace_json(
            trace_path,
            tracer.roots,
            meta={"command": args.command, "shards": num},
        )
        print(f"trace written to {path}")
    return result
