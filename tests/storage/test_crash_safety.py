"""Crash-safety tests for the persistent stores.

Simulates the observable aftermath of a crash (leftover temp files,
half-written state) and asserts the archive stays consistent: atomic
rename means a document/artifact either fully exists or does not.
"""

import json

import pytest

from repro.core.manager import MultiModelManager
from repro.core.model_set import ModelSet
from repro.core.verify import ArchiveVerifier
from repro.storage.persistent import (
    PersistentDocumentStore,
    PersistentFileStore,
)


class TestLeftoverTempFiles:
    def test_file_store_ignores_orphan_tmp(self, tmp_path):
        store = PersistentFileStore(tmp_path)
        store.put(b"real", artifact_id="good")
        # A crash between temp-write and rename leaves a .tmp behind.
        (tmp_path / "half.bin.tmp").write_bytes(b"partial")
        reopened = PersistentFileStore(tmp_path)
        assert reopened.ids() == ["good"]
        assert not reopened.exists("half")

    def test_document_store_ignores_orphan_tmp(self, tmp_path):
        store = PersistentDocumentStore(tmp_path)
        store.insert("sets", {"ok": True}, doc_id="good")
        (tmp_path / "sets" / "half.json.tmp").write_bytes(b'{"broken"')
        reopened = PersistentDocumentStore(tmp_path)
        assert reopened.collection_ids("sets") == ["good"]


class TestInterruptedSaveLeavesArchiveConsistent:
    def test_crash_after_artifact_before_document(self, tmp_path):
        """The Baseline save order is artifact first, document second.

        If the process dies in between, the document does not exist, so
        the half-saved set is simply absent — and the orphaned artifact
        does not affect verification of the sets that do exist.
        """
        models = ModelSet.build("FFNN-48", num_models=4, seed=0)
        manager = MultiModelManager.open(str(tmp_path), "baseline")
        good_id = manager.save_set(models)

        # Simulate the crash: an artifact for a set whose document was
        # never written.
        manager.context.file_store.put(
            b"\x00" * 100, artifact_id="set-baseline-000999-params"
        )

        reopened = MultiModelManager.open(str(tmp_path), "baseline")
        assert reopened.list_sets() == [good_id]
        assert reopened.recover_set(good_id).equals(models)
        assert ArchiveVerifier(reopened.context).verify_all(deep=True).ok

    def test_next_save_after_simulated_crash_succeeds(self, tmp_path):
        models = ModelSet.build("FFNN-48", num_models=4, seed=0)
        manager = MultiModelManager.open(str(tmp_path), "update")
        first = manager.save_set(models)
        manager.context.file_store.put(
            b"\x00" * 10, artifact_id="orphan-from-crash"
        )
        reopened = MultiModelManager.open(str(tmp_path), "update")
        derived = models.copy()
        derived.state(0)["0.bias"][:] += 1.0
        second = reopened.save_set(derived, base_set_id=first)
        assert reopened.recover_set(second).equals(derived)


class TestChecksumCoversWholeArtifact:
    @pytest.mark.parametrize("corrupt_at", [0, 5000, -1])
    def test_flip_anywhere_is_detected(self, tmp_path, corrupt_at):
        store = PersistentFileStore(tmp_path)
        store.put(bytes(10_000), artifact_id="blob")
        raw = bytearray((tmp_path / "blob.bin").read_bytes())
        raw[corrupt_at] ^= 0x01
        (tmp_path / "blob.bin").write_bytes(bytes(raw))
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            PersistentFileStore(tmp_path).get("blob")


class TestDocumentDurability:
    def test_document_readable_by_independent_parser(self, tmp_path):
        # Documents on disk are plain compact JSON — recoverable by any
        # tool even without this library.
        store = PersistentDocumentStore(tmp_path)
        store.insert("sets", {"architecture": "FFNN-48", "n": 3}, doc_id="s1")
        payload = json.loads((tmp_path / "sets" / "s1.json").read_text())
        assert payload == {"architecture": "FFNN-48", "n": 3}
