"""Quorum-replicated storage backends with failover and repair queues.

One failed disk must not lose the archive.  This module multiplies the
storage substrates across ``N`` independent backends in the Dynamo
style:

* **quorum writes** — every mutation fans out to all reachable replicas
  and succeeds once ``write_quorum`` (W) of them acknowledge; replicas
  that missed the write are enqueued for targeted repair.
* **health tracking** — each replica carries a consecutive-failure
  circuit breaker: after ``failure_threshold`` straight failures the
  breaker opens and traffic skips the node, with a half-open probe every
  ``probe_interval_ops`` skipped operations so a recovered node is
  noticed and folded back in.
* **failover reads** — artifact reads are served from the fastest
  healthy replica (belief order: profile cost, then index) and verified
  against the recorded digest; a missing, corrupt, or unreachable copy
  fails over to the next replica and enqueues a repair.
* **hedged reads** — when the serving replica's actual cost exceeds
  ``hedge_threshold_s``, a second read races on the cheapest other
  healthy replica and the charge is the winner
  (``min(primary, hedge_delay_s + secondary)``).
* **quorum latency accounting** — the simulated charge of a replicated
  write is the completion time of achieving quorum: the W-th fastest of
  the parallel per-replica costs, recorded once on the layer's own
  :class:`~repro.storage.stats.StorageStats` (per-replica stats keep
  each backend's private view).

The layer slots *under* the save journal and the chunk store unchanged:
the replicated stores expose the full store surface and deliberately
have no ``_inner`` attribute, so :func:`repro.storage.journal.innermost`
stops here and journal bookkeeping is itself replicated.  Per-replica
stores may be wrapped in :class:`~repro.storage.faults.FaultyFileStore`
/ :class:`~repro.storage.faults.RetryingFileStore` proxies (see
:func:`repro.storage.faults.inject_replica_faults`), which is how the
crash matrix kills individual replicas.

Consistency model: with ``W + R > N`` every read quorum overlaps every
write quorum, so committed data survives any ``N - W`` replica failures
and reads never return uncommitted state under a single fault.  Document
reads poll the reachable replicas and take a majority vote; a tie breaks
toward absence only when the absent replicas are a majority of the full
replica set ``N`` (proof no write quorum committed the value) and toward
presence otherwise, so a committed write stays readable while holders
are down.  A revived stale replica is outvoted until the anti-entropy
scrubber (:func:`repro.core.fsck.scrub_archive`) converges it back to
byte-identical state.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    ArtifactCorruptionError,
    ArtifactNotFoundError,
    DocumentNotFoundError,
    DuplicateArtifactError,
    QuorumError,
    SimulatedCrashError,
    StorageError,
)
from repro.observability import trace as _trace
from repro.storage.document_store import document_num_bytes
from repro.storage.hardware import makespan
from repro.storage.hashing import hash_bytes
from repro.storage.stats import StorageStats

#: Exceptions that mark a *replica* as failed (the fan-out continues).
#: :class:`~repro.errors.SimulatedCrashError` is deliberately not a
#: :class:`StorageError`: a process kill must unwind through the layer.
_REPLICA_FAILURES = (StorageError, OSError)

#: Artifact size used to rank replicas by *believed* read cost.  Routing
#: uses the profile alone — a degraded replica (``latency_factor > 1``)
#: still sorts by its healthy cost, which is exactly the regime hedged
#: reads exist for.
_PROBE_BYTES = 1 << 20


@dataclass(frozen=True)
class ReplicationPolicy:
    """Tunables of the replication layer (health, hedging)."""

    #: Consecutive failures that open a replica's circuit breaker.
    failure_threshold: int = 3
    #: Skipped operations between half-open probes of an open breaker.
    probe_interval_ops: int = 8
    #: Serve a hedged second read when the primary's actual simulated
    #: cost exceeds this many seconds; ``None`` disables hedging.
    hedge_threshold_s: float | None = None
    #: Head start the primary keeps in a hedged race (seconds).
    hedge_delay_s: float = 0.002


@dataclass
class ReplicaState:
    """One backend of a replica set, plus its health bookkeeping."""

    name: str
    store: Any
    #: Multiplier on this replica's *actual* simulated latency, modeling
    #: unexpected degradation the router does not know about (routing
    #: ranks replicas by healthy profile cost only).
    latency_factor: float = 1.0
    #: Consecutive failed operations (reset on any success).
    failures: int = 0
    #: True while the circuit breaker is open (traffic skips the node).
    breaker_open: bool = False
    #: Operations skipped since the breaker opened / the last probe.
    skipped: int = 0
    #: Times the breaker has opened (monitoring).
    breaker_trips: int = 0


def default_quorums(num_replicas: int) -> tuple[int, int]:
    """Majority write quorum and the matching read quorum (W + R = N + 1)."""
    write_quorum = num_replicas // 2 + 1
    return write_quorum, num_replicas - write_quorum + 1


def _quorum_cost(costs: list[float], quorum: int) -> float:
    """Completion time of achieving quorum: the Q-th fastest parallel ack."""
    if not costs:
        return 0.0
    return sorted(costs)[min(quorum, len(costs)) - 1]


def _safe_digest(store, artifact_id: str) -> str | None:
    try:
        return store.recorded_digest(artifact_id)
    except _REPLICA_FAILURES:
        return None


class _ReplicaSet:
    """Health/quorum machinery shared by both replicated stores."""

    def __init__(
        self,
        stores: list,
        write_quorum: int | None = None,
        read_quorum: int | None = None,
        policy: ReplicationPolicy | None = None,
        names: list[str] | None = None,
        latency_factors: list[float] | None = None,
    ) -> None:
        if not stores:
            raise ValueError("at least one replica store is required")
        count = len(stores)
        default_w, default_r = default_quorums(count)
        self.write_quorum = default_w if write_quorum is None else int(write_quorum)
        self.read_quorum = default_r if read_quorum is None else int(read_quorum)
        for label, value in (
            ("write_quorum", self.write_quorum),
            ("read_quorum", self.read_quorum),
        ):
            if not 1 <= value <= count:
                raise ValueError(
                    f"{label} must be between 1 and {count}, got {value}"
                )
        self.policy = policy or ReplicationPolicy()
        self.stats = StorageStats()
        if names is None:
            names = [f"replica-{index}" for index in range(count)]
        factors = latency_factors or [1.0] * count
        self.replicas = [
            ReplicaState(name=name, store=store, latency_factor=factor)
            for name, store, factor in zip(names, stores, factors)
        ]
        self.profile = self.replicas[0].store.profile

    # -- health ----------------------------------------------------------
    def _allow(self, state: ReplicaState) -> bool:
        """Breaker gate for one operation; open breakers probe half-open."""
        if not state.breaker_open:
            return True
        state.skipped += 1
        if state.skipped >= self.policy.probe_interval_ops:
            state.skipped = 0
            return True
        return False

    def _ok(self, state: ReplicaState) -> None:
        state.failures = 0
        if state.breaker_open:
            state.breaker_open = False
            state.skipped = 0

    def _fail(self, state: ReplicaState) -> None:
        state.failures += 1
        if state.breaker_open:
            state.skipped = 0  # failed probe: restart the cooldown
        elif state.failures >= self.policy.failure_threshold:
            state.breaker_open = True
            state.breaker_trips += 1
            state.skipped = 0

    def _require_quorum(self, successes: int, quorum: int, what: str) -> None:
        if successes < quorum:
            raise QuorumError(
                f"{what}: {successes} replica(s) acknowledged, "
                f"quorum is {quorum} of {len(self.replicas)}"
            )

    def health(self) -> list[dict]:
        """Per-replica health snapshot (monitoring/CLI)."""
        return [
            {
                "replica": state.name,
                "breaker_open": state.breaker_open,
                "consecutive_failures": state.failures,
                "breaker_trips": state.breaker_trips,
            }
            for state in self.replicas
        ]

    def replica_stats(self) -> dict[str, StorageStats]:
        """Each backend's private accounting, keyed by replica name."""
        return {state.name: state.store.stats for state in self.replicas}

    def _trace_acks(
        self,
        op: str,
        acks: "list[tuple[str, float]]",
        missed: "list[int]",
        quorum: int,
    ) -> None:
        """Attach a per-replica breakdown of one quorum write to the trace.

        Only fires when this layer's stats are the traced (context-level)
        ones, mirroring how charges attribute — so a degraded save's span
        tree shows exactly which replica ate the latency.
        """
        if not (self.stats.traced and _trace.active()):
            return
        _trace.add_event(
            "replica-acks",
            op=op,
            quorum=f"{quorum}/{len(self.replicas)}",
            acks={name: round(cost, 9) for name, cost in acks},
            missed=[self.replicas[index].name for index in missed],
        )


class ReplicatedFileStore(_ReplicaSet):
    """File store fanning every operation across N backend replicas.

    Interface-compatible with :class:`~repro.storage.file_store.FileStore`.
    Writes need ``write_quorum`` acknowledgements; reads are served from
    one replica, digest-verified, and fail over.  Replicas that miss a
    mutation are remembered in a per-replica repair queue
    (:meth:`pending_repairs`) drained by :meth:`repair_pending` and by
    the anti-entropy scrubber.
    """

    def __init__(self, stores, **kwargs) -> None:
        super().__init__(stores, **kwargs)
        #: replica index -> {artifact_id: "put" | "delete"}.
        self._pending: dict[int, dict[str, str]] = {}
        #: artifact_id -> category charged on this layer's stats at put
        #: time, so a delete returns the bytes to the same bucket.
        self._categories: dict[str, str] = {}

    # -- repair queue -----------------------------------------------------
    def _note_repair(self, index: int, artifact_id: str, op: str) -> None:
        self._pending.setdefault(index, {})[artifact_id] = op

    def _clear_repair(self, index: int, artifact_id: str) -> None:
        queue = self._pending.get(index)
        if queue is not None:
            queue.pop(artifact_id, None)
            if not queue:
                self._pending.pop(index, None)

    def pending_repairs(self) -> dict[str, dict[str, str]]:
        """Outstanding per-replica repairs, keyed by replica name."""
        return {
            self.replicas[index].name: dict(queue)
            for index, queue in sorted(self._pending.items())
        }

    def _canonical_bytes(self, artifact_id: str) -> tuple[bytes | None, str | None]:
        """Verified bytes of an artifact from any healthy holder."""
        for state in self.replicas:
            try:
                if not state.store.exists(artifact_id):
                    continue
                if not state.store.verify_artifact(artifact_id):
                    continue
                data = state.store.get(artifact_id)
            except _REPLICA_FAILURES:
                continue
            digest = _safe_digest(state.store, artifact_id) or hash_bytes(data)
            return data, digest
        return None, None

    def repair_pending(self) -> dict:
        """Drain the repair queues against replicas that are back.

        Copies canonical verified bytes onto replicas that missed a put
        (replacing divergent copies), applies missed deletes, drops
        entries whose artifact no longer exists anywhere (superseded),
        and defers entries whose replica is still unreachable.
        """
        report = {"repaired": [], "deleted": [], "dropped": [], "deferred": []}
        for index in sorted(self._pending):
            state = self.replicas[index]
            queue = self._pending[index]
            for artifact_id, op in list(queue.items()):
                try:
                    if op == "delete":
                        if state.store.exists(artifact_id):
                            state.store.delete(artifact_id)
                        report["deleted"].append((state.name, artifact_id))
                    else:
                        data, digest = self._canonical_bytes(artifact_id)
                        if data is None:
                            report["dropped"].append((state.name, artifact_id))
                            del queue[artifact_id]
                            continue
                        converged = False
                        if state.store.exists(artifact_id):
                            if (
                                _safe_digest(state.store, artifact_id) == digest
                                and state.store.verify_artifact(artifact_id)
                            ):
                                converged = True
                            else:
                                state.store.delete(artifact_id)
                        if not converged:
                            state.store.put(
                                data,
                                artifact_id=artifact_id,
                                category="repair",
                                digest=digest,
                            )
                        report["repaired"].append((state.name, artifact_id))
                    del queue[artifact_id]
                    self._ok(state)
                except SimulatedCrashError:
                    raise
                except _REPLICA_FAILURES:
                    self._fail(state)
                    report["deferred"].append((state.name, artifact_id))
            if not queue:
                self._pending.pop(index, None)
        return report

    # -- write ------------------------------------------------------------
    def _committed(self, artifact_id: str) -> bool:
        """Held by a write quorum (clipped to the reachable replicas)?

        An id held by fewer copies is a stale or partially replicated
        leftover: a new put is allowed to proceed and converge it, which
        is what makes retrying a save after a partial failure possible.
        """
        holders = reachable = 0
        for state in self.replicas:
            try:
                held = state.store.exists(artifact_id)
            except _REPLICA_FAILURES:
                continue
            reachable += 1
            holders += bool(held)
        return reachable > 0 and holders >= min(self.write_quorum, reachable)

    def put(
        self,
        data: bytes,
        artifact_id: str | None = None,
        category: str = "binary",
        workers: int = 1,
        digest: str | None = None,
    ) -> str:
        if digest is None:
            digest = hash_bytes(data)
        derived = artifact_id is None
        target = "sha256-" + digest if derived else artifact_id
        if not derived and self._committed(target):
            raise DuplicateArtifactError(f"artifact {target!r} already exists")
        costs: list[float] = []
        acks: list[tuple[str, float]] = []
        missed: list[int] = []
        for index, state in enumerate(self.replicas):
            if not self._allow(state):
                missed.append(index)
                continue
            try:
                try:
                    state.store.put(
                        data,
                        artifact_id=artifact_id,
                        category=category,
                        workers=workers,
                        digest=digest,
                    )
                except DuplicateArtifactError:
                    # This replica already holds the id.  Matching bytes
                    # are an idempotent success; divergent bytes are a
                    # stale leftover to overwrite — write-path anti-entropy.
                    if _safe_digest(state.store, target) != digest:
                        state.store.delete(target)
                        state.store.put(
                            data,
                            artifact_id=target,
                            category=category,
                            workers=workers,
                            digest=digest,
                        )
            except SimulatedCrashError:
                raise
            except _REPLICA_FAILURES:
                self._fail(state)
                missed.append(index)
            else:
                self._ok(state)
                self._clear_repair(index, target)
                cost = state.store._write_cost(len(data), workers) * state.latency_factor
                costs.append(cost)
                acks.append((state.name, cost))
        self._require_quorum(len(costs), self.write_quorum, f"put {target!r}")
        for index in missed:
            self._note_repair(index, target, "put")
        self.stats.record_write(
            len(data), _quorum_cost(costs, self.write_quorum), category
        )
        self._categories[target] = category
        self._trace_acks(f"put {target}", acks, missed, self.write_quorum)
        return target

    def open_writer(
        self,
        artifact_id: str | None,
        category: str = "binary",
        workers: int = 1,
    ) -> "_ReplicatedWriter":
        if artifact_id is not None and self._committed(artifact_id):
            raise DuplicateArtifactError(f"artifact {artifact_id!r} already exists")
        writers: list[tuple[int, ReplicaState, Any]] = []
        missed: list[int] = []
        for index, state in enumerate(self.replicas):
            if not self._allow(state):
                missed.append(index)
                continue
            try:
                writer = state.store.open_writer(
                    artifact_id, category=category, workers=workers
                )
            except SimulatedCrashError:
                raise
            except DuplicateArtifactError:
                # A stale minority copy blocks this replica's writer; it
                # is reconciled by the repair queue after close.
                missed.append(index)
            except _REPLICA_FAILURES:
                self._fail(state)
                missed.append(index)
            else:
                writers.append((index, state, writer))
        if not writers:
            raise QuorumError(
                f"open_writer {artifact_id!r}: no replica reachable"
            )
        return _ReplicatedWriter(self, artifact_id, category, workers, writers, missed)

    # -- read -------------------------------------------------------------
    def _candidates(self) -> list[tuple[int, ReplicaState]]:
        """Replica order for reads: believed cost, then index; breaker-gated."""
        order = sorted(
            range(len(self.replicas)),
            key=lambda i: (
                self.replicas[i].store.profile.file_read_cost(_PROBE_BYTES),
                i,
            ),
        )
        return [
            (index, self.replicas[index])
            for index in order
            if self._allow(self.replicas[index])
        ]

    def _hedged(self, base: float, serving: ReplicaState, alt_costs) -> float:
        """Charge of a read with an optional hedged second request.

        ``alt_costs(state)`` returns the actual cost the alternative
        replica would take; the race winner is charged.
        """
        policy = self.policy
        if policy.hedge_threshold_s is None or base <= policy.hedge_threshold_s:
            return base
        alternatives = [
            alt_costs(state)
            for state in self.replicas
            if state is not serving and not state.breaker_open
        ]
        if not alternatives:
            return base
        hedged = policy.hedge_delay_s + min(alternatives)
        if hedged < base:
            self.stats.record_hedge()
            if self.stats.traced and _trace.active():
                _trace.add_event(
                    "hedged-read",
                    primary=serving.name,
                    primary_cost=round(base, 9),
                    hedged_cost=round(hedged, 9),
                )
            return hedged
        return base

    def get(self, artifact_id: str, workers: int = 1) -> bytes:
        tried = 0
        saw_missing = False
        saw_corrupt = False
        for index, state in self._candidates():
            try:
                data = state.store.get(artifact_id, workers=workers)
            except SimulatedCrashError:
                raise
            except ArtifactNotFoundError:
                # Healthy but divergent replica — no breaker penalty.
                saw_missing = True
                self._note_repair(index, artifact_id, "put")
                tried += 1
                continue
            except _REPLICA_FAILURES:
                self._fail(state)
                self._note_repair(index, artifact_id, "put")
                tried += 1
                continue
            recorded = _safe_digest(state.store, artifact_id)
            if recorded is not None and hash_bytes(data) != recorded:
                # Bitrot on this copy: heal later, serve from elsewhere.
                saw_corrupt = True
                self._note_repair(index, artifact_id, "put")
                tried += 1
                continue
            self._ok(state)
            if tried:
                self.stats.record_failover()
                if self.stats.traced and _trace.active():
                    _trace.add_event(
                        "read-failover",
                        artifact=artifact_id,
                        served_by=state.name,
                        replicas_skipped=tried,
                    )
            base = state.store._read_cost(len(data), workers) * state.latency_factor
            charged = self._hedged(
                base,
                state,
                lambda other: other.store._read_cost(len(data), workers)
                * other.latency_factor,
            )
            self.stats.record_read(len(data), charged)
            return data
        if saw_corrupt:
            raise ArtifactCorruptionError(
                f"artifact {artifact_id!r} fails verification on every replica"
            )
        if saw_missing:
            raise ArtifactNotFoundError(
                f"artifact {artifact_id!r} unavailable on every replica"
            )
        raise QuorumError(f"get {artifact_id!r}: no replica reachable")

    def get_range(self, artifact_id: str, offset: int, length: int) -> bytes:
        return self.get_ranges(artifact_id, [(offset, length)])[0]

    def get_ranges(
        self,
        artifact_id: str,
        ranges: "list[tuple[int, int]]",
        workers: int = 1,
    ) -> "list[bytes]":
        """Vectored range read from one verified replica.

        Range reads cannot digest-check the returned slices in
        isolation, so the serving replica's whole artifact is verified
        (uncharged, like fsck) before its byte ranges are trusted — a
        corrupt replica can therefore never silently feed garbage into
        chunk recovery.
        """
        tried = 0
        saw_missing = False
        saw_corrupt = False
        for index, state in self._candidates():
            try:
                if not state.store.exists(artifact_id):
                    saw_missing = True
                    self._note_repair(index, artifact_id, "put")
                    tried += 1
                    continue
                if not state.store.verify_artifact(artifact_id):
                    saw_corrupt = True
                    self._note_repair(index, artifact_id, "put")
                    tried += 1
                    continue
                chunks = state.store.get_ranges(artifact_id, ranges, workers=workers)
            except SimulatedCrashError:
                raise
            except _REPLICA_FAILURES:
                self._fail(state)
                self._note_repair(index, artifact_id, "put")
                tried += 1
                continue
            self._ok(state)
            if tried:
                self.stats.record_failover()
                if self.stats.traced and _trace.active():
                    _trace.add_event(
                        "read-failover",
                        artifact=artifact_id,
                        served_by=state.name,
                        replicas_skipped=tried,
                    )
            total = sum(len(chunk) for chunk in chunks)
            base = (
                makespan(
                    [
                        state.store.profile.file_read_cost(len(chunk))
                        for chunk in chunks
                    ],
                    workers,
                )
                * state.latency_factor
            )
            charged = self._hedged(
                base,
                state,
                lambda other: makespan(
                    [
                        other.store.profile.file_read_cost(len(chunk))
                        for chunk in chunks
                    ],
                    workers,
                )
                * other.latency_factor,
            )
            self.stats.record_read(total, charged)
            return chunks
        if saw_corrupt:
            raise ArtifactCorruptionError(
                f"artifact {artifact_id!r} fails verification on every replica"
            )
        if saw_missing:
            raise ArtifactNotFoundError(
                f"artifact {artifact_id!r} unavailable on every replica"
            )
        raise QuorumError(f"get_ranges {artifact_id!r}: no replica reachable")

    # -- management plane (uncharged; no breaker bookkeeping) ---------------
    def delete(self, artifact_id: str) -> None:
        """Remove an artifact; needs ``write_quorum`` acks like ``put``.

        A delete acknowledged by fewer replicas would report success
        while a majority keeps serving the bytes (and ``_committed``
        keeps blocking re-puts of the id), so it fails loudly instead
        and leaves the repair queues to finish the job.
        """
        found = False
        num_bytes = 0
        applied = 0
        missed: list[int] = []
        for index, state in enumerate(self.replicas):
            if not self._allow(state):
                missed.append(index)
                continue
            try:
                if state.store.exists(artifact_id):
                    if not found:
                        num_bytes = state.store.size(artifact_id)
                    found = True
                    state.store.delete(artifact_id)
                applied += 1
            except SimulatedCrashError:
                raise
            except _REPLICA_FAILURES:
                self._fail(state)
                missed.append(index)
            else:
                self._ok(state)
                self._clear_repair(index, artifact_id)
        self._require_quorum(applied, self.write_quorum, f"delete {artifact_id!r}")
        if not found and not missed:
            raise ArtifactNotFoundError(f"no artifact {artifact_id!r}")
        for index in missed:
            self._note_repair(index, artifact_id, "delete")
        if found:
            self.stats.record_delete(
                num_bytes, self._categories.pop(artifact_id, "binary")
            )

    def recorded_digest(self, artifact_id: str) -> str | None:
        for state in self.replicas:
            try:
                if state.store.exists(artifact_id):
                    digest = state.store.recorded_digest(artifact_id)
                    if digest is not None:
                        return digest
            except _REPLICA_FAILURES:
                continue
        return None

    def verify_artifact(self, artifact_id: str) -> bool:
        """Whether *every* reachable copy still matches its digest.

        Conservative by design: one rotten replica makes the archive
        degraded (the scrubber heals it), even though reads fail over.
        """
        verdicts: list[bool] = []
        reachable = 0
        for state in self.replicas:
            try:
                if state.store.exists(artifact_id):
                    verdicts.append(state.store.verify_artifact(artifact_id))
                reachable += 1
            except _REPLICA_FAILURES:
                continue
        if not verdicts:
            if reachable:
                raise ArtifactNotFoundError(f"no artifact {artifact_id!r}")
            raise QuorumError(
                f"verify_artifact {artifact_id!r}: no replica reachable"
            )
        return all(verdicts)

    def verify_replicas(self, artifact_id: str) -> dict[str, object]:
        """Per-replica verdicts: True/False, "missing", or "unreachable"."""
        verdicts: dict[str, object] = {}
        for state in self.replicas:
            try:
                if not state.store.exists(artifact_id):
                    verdicts[state.name] = "missing"
                else:
                    verdicts[state.name] = state.store.verify_artifact(artifact_id)
            except _REPLICA_FAILURES:
                verdicts[state.name] = "unreachable"
        return verdicts

    def exists(self, artifact_id: str) -> bool:
        reachable = 0
        for state in self.replicas:
            try:
                if state.store.exists(artifact_id):
                    return True
                reachable += 1
            except _REPLICA_FAILURES:
                continue
        if reachable == 0:
            raise QuorumError(f"exists {artifact_id!r}: no replica reachable")
        return False

    def size(self, artifact_id: str) -> int:
        reachable = 0
        for state in self.replicas:
            try:
                if state.store.exists(artifact_id):
                    return state.store.size(artifact_id)
                reachable += 1
            except _REPLICA_FAILURES:
                continue
        if reachable == 0:
            raise QuorumError(f"size {artifact_id!r}: no replica reachable")
        raise ArtifactNotFoundError(f"no artifact {artifact_id!r}")

    def ids(self) -> list[str]:
        union: set[str] = set()
        reachable = 0
        for state in self.replicas:
            try:
                union.update(state.store.ids())
                reachable += 1
            except _REPLICA_FAILURES:
                continue
        if reachable == 0:
            raise QuorumError("ids(): no replica reachable")
        return sorted(union)

    def total_bytes(self) -> int:
        """Logical archive size: the largest reachable replica's view."""
        best = None
        for state in self.replicas:
            try:
                value = state.store.total_bytes()
            except _REPLICA_FAILURES:
                continue
            best = value if best is None else max(best, value)
        if best is None:
            raise QuorumError("total_bytes(): no replica reachable")
        return best

    def __len__(self) -> int:
        return len(self.ids())

    # -- cost model (delegated to the lead replica's profile) ---------------
    def _write_cost(self, num_bytes: int, workers: int = 1) -> float:
        return self.replicas[0].store._write_cost(num_bytes, workers)

    def _read_cost(self, num_bytes: int, workers: int = 1) -> float:
        return self.replicas[0].store._read_cost(num_bytes, workers)


class _ReplicatedWriter:
    """Fans streamed chunks to one writer per reachable replica.

    Accounting mirrors :meth:`ReplicatedFileStore.put`: one write charged
    at close with the quorum completion cost.  A replica whose writer
    fails mid-stream is aborted, health-penalized, and queued for repair;
    close succeeds while ``write_quorum`` writers finalize.
    """

    def __init__(
        self,
        store: ReplicatedFileStore,
        artifact_id: str | None,
        category: str,
        workers: int,
        writers: list,
        missed: list[int],
    ) -> None:
        import hashlib

        self._store = store
        self._artifact_id = artifact_id
        self._category = category
        self._workers = workers
        self._writers = writers
        self._missed = list(missed)
        self._hasher = hashlib.sha256()
        self._num_bytes = 0
        self._closed = False

    def write(self, chunk: bytes) -> None:
        if self._closed:
            raise StorageError("writer already closed")
        chunk = bytes(chunk)
        self._hasher.update(chunk)
        self._num_bytes += len(chunk)
        survivors = []
        for index, state, writer in self._writers:
            try:
                writer.write(chunk)
            except SimulatedCrashError:
                raise
            except _REPLICA_FAILURES:
                self._store._fail(state)
                self._missed.append(index)
                try:
                    writer.abort()
                except Exception:
                    pass
            else:
                survivors.append((index, state, writer))
        self._writers = survivors
        if not survivors:
            self._closed = True
            raise QuorumError("streamed write lost every replica")

    def close(self) -> str:
        if self._closed:
            raise StorageError("writer already closed")
        self._closed = True
        store = self._store
        digest = self._hasher.hexdigest()
        target = (
            self._artifact_id
            if self._artifact_id is not None
            else "sha256-" + digest
        )
        costs: list[float] = []
        acks: list[tuple[str, float]] = []
        for index, state, writer in self._writers:
            try:
                writer.close()
            except SimulatedCrashError:
                raise
            except DuplicateArtifactError:
                # The id landed on this replica between open and close; a
                # matching digest makes the close an idempotent success.
                if _safe_digest(state.store, target) == digest:
                    store._ok(state)
                    cost = (
                        state.store._write_cost(self._num_bytes, self._workers)
                        * state.latency_factor
                    )
                    costs.append(cost)
                    acks.append((state.name, cost))
                else:
                    self._missed.append(index)
            except _REPLICA_FAILURES:
                store._fail(state)
                self._missed.append(index)
            else:
                store._ok(state)
                store._clear_repair(index, target)
                cost = (
                    state.store._write_cost(self._num_bytes, self._workers)
                    * state.latency_factor
                )
                costs.append(cost)
                acks.append((state.name, cost))
        store._require_quorum(
            len(costs), store.write_quorum, f"writer close {target!r}"
        )
        for index in self._missed:
            store._note_repair(index, target, "put")
        store.stats.record_write(
            self._num_bytes,
            _quorum_cost(costs, store.write_quorum),
            self._category,
        )
        store._categories[target] = self._category
        store._trace_acks(f"put {target}", acks, self._missed, store.write_quorum)
        return target

    def abort(self) -> None:
        self._closed = True
        for _index, _state, writer in self._writers:
            try:
                writer.abort()
            except Exception:
                pass
        self._writers = []

    def __enter__(self) -> "_ReplicatedWriter":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is not None:
            self.abort()
        elif not self._closed:
            self.close()


def _encode(document: dict) -> str:
    """Canonical encoding for cross-replica document comparison."""
    return json.dumps(document, separators=(",", ":"), sort_keys=True)


class ReplicatedDocumentStore(_ReplicaSet):
    """Document store with quorum writes and majority-vote reads.

    Interface-compatible with
    :class:`~repro.storage.document_store.DocumentStore`, including the
    uncharged raw plane the save journal uses — journal records are
    replicated like any other document, so losing a replica never loses
    the undo log.  Reads poll every reachable replica and return the
    majority value per document; ties break toward absence only when the
    absent replicas are a majority of the full set ``N`` (no write
    quorum can have committed the value), toward presence otherwise, and
    then toward the lowest replica index.  Replicas that miss a mutation
    are remembered in a per-replica repair queue
    (:meth:`pending_repairs`) drained by :meth:`repair_pending` and by
    the anti-entropy scrubber.
    """

    def __init__(self, stores, **kwargs) -> None:
        super().__init__(stores, **kwargs)
        self.stats.origin = "doc"
        #: replica index -> {(collection, doc_id): "put" | "delete"}.
        self._pending: dict[int, dict[tuple[str, str], str]] = {}
        #: (collection, doc_id) -> category charged on this layer's stats
        #: at insert time, so a delete returns the bytes to the same bucket.
        self._categories: dict[tuple[str, str], str] = {}
        highest = -1
        for state in self.replicas:
            try:
                collections = state.store._collections
            except _REPLICA_FAILURES:
                continue
            for documents in collections.values():
                for doc_id in documents:
                    if doc_id.startswith("doc-"):
                        try:
                            highest = max(highest, int(doc_id[4:]))
                        except ValueError:
                            pass
        self._id_counter = itertools.count(highest + 1)

    # -- repair queue -----------------------------------------------------
    def _note_repair(self, index: int, collection: str, doc_id: str, op: str) -> None:
        self._pending.setdefault(index, {})[(collection, doc_id)] = op

    def _clear_repair(self, index: int, collection: str, doc_id: str) -> None:
        queue = self._pending.get(index)
        if queue is not None:
            queue.pop((collection, doc_id), None)
            if not queue:
                self._pending.pop(index, None)

    def pending_repairs(self) -> dict[str, dict[str, str]]:
        """Outstanding per-replica repairs, keyed by replica name."""
        return {
            self.replicas[index].name: {
                f"{collection}/{doc_id}": op
                for (collection, doc_id), op in sorted(queue.items())
            }
            for index, queue in sorted(self._pending.items())
        }

    def repair_pending(self) -> dict:
        """Drain the document repair queues against replicas that are back.

        A missed insert/replace is replayed as the *current* majority
        value (anti-entropy, not history replay); a missed delete is
        applied; an entry whose document no longer has a majority value
        is retired as a delete; entries whose replica is still
        unreachable (or whose majority is unreadable) are deferred.
        """
        report = {"repaired": [], "deleted": [], "deferred": []}
        for index in sorted(self._pending):
            state = self.replicas[index]
            queue = self._pending[index]
            for (collection, doc_id), op in list(queue.items()):
                label = f"{collection}/{doc_id}"
                if op == "delete":
                    document = None
                else:
                    try:
                        document = self._majority_value(collection, doc_id)
                    except QuorumError:
                        # Layer-wide outage, not this replica's fault.
                        report["deferred"].append((state.name, label))
                        continue
                try:
                    if document is None:
                        state.store._delete_raw(collection, doc_id)
                        report["deleted"].append((state.name, label))
                    else:
                        state.store._write_raw(collection, doc_id, document)
                        report["repaired"].append((state.name, label))
                except SimulatedCrashError:
                    raise
                except _REPLICA_FAILURES:
                    self._fail(state)
                    report["deferred"].append((state.name, label))
                else:
                    self._ok(state)
                    del queue[(collection, doc_id)]
            if not queue:
                self._pending.pop(index, None)
        return report

    # -- majority machinery ----------------------------------------------
    def _reachable_collections(self) -> list[tuple[int, dict]]:
        reachable = []
        for index, state in enumerate(self.replicas):
            try:
                reachable.append((index, state.store._collections))
            except _REPLICA_FAILURES:
                continue
        if not reachable:
            raise QuorumError("document read: no replica reachable")
        return reachable

    def _quorum_collections(self, what: str) -> list[tuple[int, dict]]:
        """Reachable collections, or :class:`QuorumError` below R."""
        reachable = self._reachable_collections()
        if len(reachable) < self.read_quorum:
            raise QuorumError(
                f"{what}: {len(reachable)} replica(s) reachable, "
                f"read quorum is {self.read_quorum} of {len(self.replicas)}"
            )
        return reachable

    def _vote(self, ballots: list[tuple[int, dict | None]]) -> dict | None:
        """Majority value of the ballots cast by reachable replicas.

        A tie (only possible while replicas are unreachable) breaks
        toward absence only when the absent replicas are a majority of
        the *full* replica set — proof that no write quorum committed
        the value.  Otherwise presence wins: a committed W-quorum write
        must stay readable while its holders are down (``W + R > N``
        guarantees a read quorum still overlaps it).  Equal-preference
        groups break toward the lowest replica index.
        """
        groups: dict[str | None, list[int]] = {}
        samples: dict[str | None, dict | None] = {}
        for index, document in ballots:
            key = None if document is None else _encode(document)
            groups.setdefault(key, []).append(index)
            samples.setdefault(key, document)
        total = len(self.replicas)

        def rank(item):
            key, indices = item
            absent = key is None
            absence_majority = absent and 2 * len(indices) > total
            return (len(indices), absence_majority, not absent, -min(indices))

        return samples[max(groups.items(), key=rank)[0]]

    def _majority_collection(self, collection: str) -> dict[str, dict]:
        reachable = self._quorum_collections(f"collection read {collection!r}")
        doc_ids: set[str] = set()
        for _index, collections in reachable:
            doc_ids.update(collections.get(collection, {}))
        view: dict[str, dict] = {}
        for doc_id in sorted(doc_ids):
            ballots = [
                (index, collections.get(collection, {}).get(doc_id))
                for index, collections in reachable
            ]
            document = self._vote(ballots)
            if document is not None:
                view[doc_id] = json.loads(json.dumps(document))
        return view

    def _majority_value(self, collection: str, doc_id: str) -> dict | None:
        reachable = self._quorum_collections(
            f"document read {collection}/{doc_id}"
        )
        ballots = [
            (index, collections.get(collection, {}).get(doc_id))
            for index, collections in reachable
        ]
        return self._vote(ballots)

    @property
    def _collections(self) -> dict[str, dict[str, dict]]:
        """Merged majority view of every collection (inspection plane)."""
        names: set[str] = set()
        for _index, collections in self._reachable_collections():
            names.update(collections)
        return {name: self._majority_collection(name) for name in sorted(names)}

    def _read_quorum_cost(self, num_bytes: int) -> float:
        """Actual cost of hearing back from the fastest R replicas."""
        costs = sorted(
            state.store.profile.doc_read_cost(num_bytes) * state.latency_factor
            for state in self.replicas
            if not state.breaker_open
        )
        if not costs:
            costs = [self.profile.doc_read_cost(num_bytes)]
        return costs[min(self.read_quorum, len(costs)) - 1]

    # -- write ------------------------------------------------------------
    def insert(
        self,
        collection: str,
        document: dict,
        doc_id: str | None = None,
        category: str = "metadata",
    ) -> str:
        if doc_id is None:
            # Pre-drawn at the layer so every replica stores the same id.
            doc_id = f"doc-{next(self._id_counter):08d}"
        num_bytes = document_num_bytes(document)
        costs: list[float] = []
        acks: list[tuple[str, float]] = []
        missed: list[int] = []
        for index, state in enumerate(self.replicas):
            if not self._allow(state):
                missed.append(index)
                continue
            try:
                state.store.insert(
                    collection, document, doc_id=doc_id, category=category
                )
            except SimulatedCrashError:
                raise
            except _REPLICA_FAILURES:
                self._fail(state)
                missed.append(index)
            else:
                self._ok(state)
                self._clear_repair(index, collection, doc_id)
                cost = (
                    state.store.profile.doc_write_cost(num_bytes)
                    * state.latency_factor
                )
                costs.append(cost)
                acks.append((state.name, cost))
        self._require_quorum(
            len(costs), self.write_quorum, f"insert {collection}/{doc_id}"
        )
        for index in missed:
            self._note_repair(index, collection, doc_id, "put")
        self.stats.record_write(
            num_bytes, _quorum_cost(costs, self.write_quorum), category
        )
        self._categories[(collection, doc_id)] = category
        self._trace_acks(
            f"insert {collection}/{doc_id}", acks, missed, self.write_quorum
        )
        return doc_id

    def replace(self, collection: str, doc_id: str, document: dict) -> None:
        existing = self._majority_value(collection, doc_id)
        if existing is None:
            raise DocumentNotFoundError(
                f"no document {doc_id!r} in collection {collection!r}"
            )
        num_bytes = document_num_bytes(document)
        costs: list[float] = []
        missed: list[int] = []
        for index, state in enumerate(self.replicas):
            if not self._allow(state):
                missed.append(index)
                continue
            try:
                try:
                    state.store.replace(collection, doc_id, document)
                except DocumentNotFoundError:
                    # The doc is committed (majority has it) but this
                    # replica missed the insert: converge it in passing.
                    state.store._write_raw(collection, doc_id, document)
            except SimulatedCrashError:
                raise
            except _REPLICA_FAILURES:
                self._fail(state)
                missed.append(index)
            else:
                self._ok(state)
                self._clear_repair(index, collection, doc_id)
                costs.append(
                    state.store.profile.doc_write_cost(num_bytes)
                    * state.latency_factor
                )
        self._require_quorum(
            len(costs), self.write_quorum, f"replace {collection}/{doc_id}"
        )
        for index in missed:
            self._note_repair(index, collection, doc_id, "put")
        # The overwritten document's bytes leave the store (see
        # DocumentStore.replace).
        self.stats.record_delete(
            document_num_bytes(existing),
            self._categories.get((collection, doc_id), "metadata"),
            count_op=False,
        )
        self._categories[(collection, doc_id)] = "metadata"
        self.stats.record_write(
            num_bytes, _quorum_cost(costs, self.write_quorum), "metadata"
        )

    def delete(self, collection: str, doc_id: str) -> None:
        existing = self._majority_value(collection, doc_id)
        if existing is None:
            raise DocumentNotFoundError(
                f"no document {doc_id!r} in collection {collection!r}"
            )
        successes = 0
        missed: list[int] = []
        for index, state in enumerate(self.replicas):
            if not self._allow(state):
                missed.append(index)
                continue
            try:
                try:
                    state.store.delete(collection, doc_id)
                except DocumentNotFoundError:
                    pass  # already absent on this replica — converged
            except SimulatedCrashError:
                raise
            except _REPLICA_FAILURES:
                self._fail(state)
                missed.append(index)
            else:
                self._ok(state)
                self._clear_repair(index, collection, doc_id)
                successes += 1
        self._require_quorum(
            successes, self.write_quorum, f"delete {collection}/{doc_id}"
        )
        for index in missed:
            self._note_repair(index, collection, doc_id, "delete")
        self.stats.record_delete(
            document_num_bytes(existing),
            self._categories.pop((collection, doc_id), "metadata"),
        )

    # -- read -------------------------------------------------------------
    def get(self, collection: str, doc_id: str) -> dict:
        document = self._majority_value(collection, doc_id)
        if document is None:
            raise DocumentNotFoundError(
                f"no document {doc_id!r} in collection {collection!r}"
            )
        num_bytes = document_num_bytes(document)
        self.stats.record_read(num_bytes, self._read_quorum_cost(num_bytes))
        return json.loads(json.dumps(document))

    def find(self, collection: str, **equals) -> list[tuple[str, dict]]:
        matches: list[tuple[str, dict]] = []
        for doc_id, document in self._majority_collection(collection).items():
            if all(document.get(key) == value for key, value in equals.items()):
                num_bytes = document_num_bytes(document)
                self.stats.record_read(
                    num_bytes, self._read_quorum_cost(num_bytes)
                )
                matches.append((doc_id, json.loads(json.dumps(document))))
        return matches

    # -- raw plane (journal bookkeeping; uncharged) -------------------------
    def _write_raw(self, collection: str, doc_id: str, document: dict) -> None:
        successes = 0
        missed: list[int] = []
        for index, state in enumerate(self.replicas):
            if not self._allow(state):
                missed.append(index)
                continue
            try:
                state.store._write_raw(collection, doc_id, document)
            except SimulatedCrashError:
                raise
            except _REPLICA_FAILURES:
                self._fail(state)
                missed.append(index)
            else:
                self._ok(state)
                self._clear_repair(index, collection, doc_id)
                successes += 1
        # The journal's undo log needs the same durability as the data
        # it protects: quorum or the save must not proceed.
        self._require_quorum(
            successes, self.write_quorum, f"raw write {collection}/{doc_id}"
        )
        for index in missed:
            self._note_repair(index, collection, doc_id, "put")

    def _delete_raw(self, collection: str, doc_id: str) -> None:
        # Best effort: a replica that misses the retirement keeps a stale
        # entry, which the majority vote hides and the repair queue (or
        # the scrubber, once every replica is reachable again) retires.
        for index, state in enumerate(self.replicas):
            if not self._allow(state):
                self._note_repair(index, collection, doc_id, "delete")
                continue
            try:
                state.store._delete_raw(collection, doc_id)
            except SimulatedCrashError:
                raise
            except _REPLICA_FAILURES:
                self._fail(state)
                self._note_repair(index, collection, doc_id, "delete")
            else:
                self._ok(state)
                self._clear_repair(index, collection, doc_id)

    def _read_raw(self, collection: str, doc_id: str) -> dict | None:
        document = self._majority_value(collection, doc_id)
        if document is None:
            return None
        return json.loads(json.dumps(document))

    # -- inspection (uncharged) --------------------------------------------
    def exists(self, collection: str, doc_id: str) -> bool:
        return self._majority_value(collection, doc_id) is not None

    def collection_ids(self, collection: str) -> list[str]:
        return sorted(self._majority_collection(collection))

    def collections(self) -> list[str]:
        names: set[str] = set()
        for _index, collections in self._reachable_collections():
            names.update(collections)
        return sorted(names)

    def count(self, collection: str) -> int:
        return len(self._majority_collection(collection))

    def total_bytes(self) -> int:
        """Logical metadata size: bytes of the majority view."""
        return sum(
            document_num_bytes(document)
            for collection in self._collections.values()
            for document in collection.values()
        )


# -- wiring and divergence inspection ---------------------------------------
def replicated_stores(context):
    """The replicated layers of a context's stores (``None`` if absent)."""

    def find(store, cls):
        while store is not None and not isinstance(store, cls):
            store = getattr(store, "_inner", None)
        return store

    return (
        find(context.file_store, ReplicatedFileStore),
        find(context.document_store, ReplicatedDocumentStore),
    )


def replica_divergence(
    file_rep: ReplicatedFileStore | None,
    doc_rep: ReplicatedDocumentStore | None,
    deep: bool = False,
) -> list[dict]:
    """Per-replica diff against the majority view.

    Shallow mode compares artifact presence and recorded digests plus
    document contents; ``deep=True`` additionally re-hashes every copy,
    which is what catches a torn replica write (honest digest over torn
    bytes).  Only replicas that diverge (or are unreachable) appear in
    the result.
    """
    entries: list[dict] = []
    canonical_docs = doc_rep._collections if doc_rep is not None else {}

    canonical_artifacts: dict[str, str | None] = {}
    if file_rep is not None:
        votes: dict[str, dict[str | None, int]] = {}
        reachable = 0
        for state in file_rep.replicas:
            try:
                ids = state.store.ids()
            except _REPLICA_FAILURES:
                continue
            reachable += 1
            for artifact_id in ids:
                digest = _safe_digest(state.store, artifact_id)
                counts = votes.setdefault(artifact_id, {})
                counts[digest] = counts.get(digest, 0) + 1
        for artifact_id, counts in votes.items():
            holders = sum(counts.values())
            if reachable and holders * 2 > reachable:
                canonical_artifacts[artifact_id] = max(
                    counts.items(), key=lambda item: item[1]
                )[0]

    names = [
        state.name
        for state in (file_rep or doc_rep).replicas
    ]
    for position, name in enumerate(names):
        entry: dict = {
            "replica": name,
            "unreachable": False,
            "missing_artifacts": [],
            "extra_artifacts": [],
            "divergent_artifacts": [],
            "missing_documents": 0,
            "extra_documents": 0,
            "divergent_documents": 0,
        }
        if file_rep is not None:
            state = file_rep.replicas[position]
            try:
                held = set(state.store.ids())
                entry["missing_artifacts"] = sorted(
                    set(canonical_artifacts) - held
                )
                entry["extra_artifacts"] = sorted(
                    held - set(canonical_artifacts)
                )
                for artifact_id in sorted(held & set(canonical_artifacts)):
                    digest = _safe_digest(state.store, artifact_id)
                    if digest != canonical_artifacts[artifact_id]:
                        entry["divergent_artifacts"].append(artifact_id)
                    elif deep and not state.store.verify_artifact(artifact_id):
                        entry["divergent_artifacts"].append(artifact_id)
            except _REPLICA_FAILURES:
                entry["unreachable"] = True
        if doc_rep is not None and not entry["unreachable"]:
            state = doc_rep.replicas[position]
            try:
                collections = state.store._collections
                for collection, canonical in canonical_docs.items():
                    held_docs = collections.get(collection, {})
                    for doc_id, document in canonical.items():
                        if doc_id not in held_docs:
                            entry["missing_documents"] += 1
                        elif _encode(held_docs[doc_id]) != _encode(document):
                            entry["divergent_documents"] += 1
                    entry["extra_documents"] += len(
                        set(held_docs) - set(canonical)
                    )
                for collection in set(collections) - set(canonical_docs):
                    entry["extra_documents"] += len(collections[collection])
            except _REPLICA_FAILURES:
                entry["unreachable"] = True
        if (
            entry["unreachable"]
            or entry["missing_artifacts"]
            or entry["extra_artifacts"]
            or entry["divergent_artifacts"]
            or entry["missing_documents"]
            or entry["extra_documents"]
            or entry["divergent_documents"]
        ):
            entries.append(entry)
    return entries
