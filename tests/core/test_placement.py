"""Tests for the snapshot-placement optimizer."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.manager import MultiModelManager
from repro.core.placement import (
    PlacementProblem,
    evaluate_placement,
    optimal_placement,
    optimize_archive,
    problem_from_chain,
)
from repro.errors import ReproError
from tests.conftest import save_sequence


@pytest.fixture
def uniform_problem():
    return PlacementProblem.uniform(
        10, full_bytes=100.0, delta_bytes=10.0, full_read_s=1.0, delta_apply_s=0.5
    )


class TestProblem:
    def test_validation(self):
        with pytest.raises(ValueError):
            PlacementProblem(0.0, 1.0, (), ())
        with pytest.raises(ValueError):
            PlacementProblem(1.0, 1.0, (1.0,), ())
        with pytest.raises(ValueError):
            PlacementProblem(1.0, 1.0, (-1.0,), (0.1,))

    def test_num_versions(self, uniform_problem):
        assert uniform_problem.num_versions == 11


class TestEvaluate:
    def test_all_snapshots(self, uniform_problem):
        placement = evaluate_placement(
            uniform_problem, set(range(uniform_problem.num_versions))
        )
        assert placement.total_bytes == 11 * 100.0
        assert placement.max_recovery_s == 1.0

    def test_no_extra_snapshots(self, uniform_problem):
        placement = evaluate_placement(uniform_problem, {0})
        assert placement.total_bytes == 100.0 + 10 * 10.0
        assert placement.max_recovery_s == pytest.approx(1.0 + 10 * 0.5)

    def test_version_zero_always_snapshot(self, uniform_problem):
        placement = evaluate_placement(uniform_problem, set())
        assert 0 in placement.snapshot_versions

    def test_out_of_range_rejected(self, uniform_problem):
        with pytest.raises(ValueError):
            evaluate_placement(uniform_problem, {99})


class TestOptimal:
    def test_loose_bound_needs_only_initial_snapshot(self, uniform_problem):
        placement = optimal_placement(uniform_problem, max_recovery_s=100.0)
        assert placement.snapshot_versions == (0,)

    def test_tight_bound_snapshots_everything(self, uniform_problem):
        # Budget below one delta-apply: every version must be a snapshot.
        placement = optimal_placement(uniform_problem, max_recovery_s=1.2)
        assert placement.snapshot_versions == tuple(range(11))

    def test_bound_below_full_read_rejected(self, uniform_problem):
        with pytest.raises(ReproError):
            optimal_placement(uniform_problem, max_recovery_s=0.5)

    def test_respects_bound(self, uniform_problem):
        placement = optimal_placement(uniform_problem, max_recovery_s=2.0)
        assert placement.max_recovery_s <= 2.0

    def test_expensive_delta_attracts_snapshot(self):
        problem = PlacementProblem(
            full_bytes=100.0,
            full_read_s=1.0,
            delta_bytes=(10.0, 10.0, 90.0, 10.0, 10.0),
            delta_apply_s=(0.2, 0.2, 3.0, 0.2, 0.2),
        )
        placement = optimal_placement(problem, max_recovery_s=2.0)
        # Version 3's delta is both huge and infeasible: snapshot it.
        assert 3 in placement.snapshot_versions
        fixed = evaluate_placement(problem, {0, 2, 4})
        assert placement.total_bytes < fixed.total_bytes

    @given(
        seed=st.integers(min_value=0, max_value=500),
        num_deltas=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, seed, num_deltas):
        rng = np.random.default_rng(seed)
        problem = PlacementProblem(
            full_bytes=float(rng.uniform(50, 150)),
            full_read_s=float(rng.uniform(0.1, 1.0)),
            delta_bytes=tuple(float(x) for x in rng.uniform(1, 120, num_deltas)),
            delta_apply_s=tuple(
                float(x) for x in rng.uniform(0.05, 2.0, num_deltas)
            ),
        )
        bound = problem.full_read_s + float(rng.uniform(0, 4))
        best = None
        for mask in itertools.product([0, 1], repeat=num_deltas):
            snaps = {0} | {i + 1 for i, bit in enumerate(mask) if bit}
            candidate = evaluate_placement(problem, snaps)
            if candidate.max_recovery_s <= bound + 1e-9:
                if best is None or candidate.total_bytes < best.total_bytes:
                    best = candidate
        assert best is not None  # bound >= full_read_s: all-snapshots works
        placement = optimal_placement(problem, bound)
        assert placement.total_bytes == pytest.approx(best.total_bytes)

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_tighter_bound_never_cheaper(self, seed):
        rng = np.random.default_rng(seed)
        num_deltas = int(rng.integers(2, 8))
        problem = PlacementProblem(
            full_bytes=float(rng.uniform(50, 150)),
            full_read_s=0.5,
            delta_bytes=tuple(float(x) for x in rng.uniform(1, 100, num_deltas)),
            delta_apply_s=tuple(
                float(x) for x in rng.uniform(0.05, 1.0, num_deltas)
            ),
        )
        loose = optimal_placement(problem, max_recovery_s=50.0)
        tight = optimal_placement(problem, max_recovery_s=1.0)
        assert tight.total_bytes >= loose.total_bytes - 1e-9


class TestArchiveIntegration:
    @pytest.fixture
    def archive(self, synthetic_cases):
        manager = MultiModelManager.with_approach("update")
        set_ids = save_sequence(manager, synthetic_cases)
        return manager, set_ids

    def test_problem_built_from_real_sizes(self, archive, synthetic_cases):
        manager, set_ids = archive
        problem, chain = problem_from_chain(manager.context, set_ids[-1])
        assert chain == set_ids
        assert problem.full_bytes == synthetic_cases[0].model_set.parameter_bytes
        assert len(problem.delta_bytes) == len(set_ids) - 1

    def test_optimize_without_apply_changes_nothing(self, archive):
        manager, set_ids = archive
        before = manager.total_stored_bytes()
        _placement, to_compact = optimize_archive(
            manager.context, set_ids[-1], max_recovery_s=1e9
        )
        assert to_compact == []
        assert manager.total_stored_bytes() == before

    def test_optimize_apply_meets_bound(self, archive, synthetic_cases):
        manager, set_ids = archive
        problem, _chain = problem_from_chain(manager.context, set_ids[-1])
        # Bound tight enough to force at least one extra snapshot.
        bound = problem.full_read_s + problem.delta_apply_s[0] * 1.5
        placement, to_compact = optimize_archive(
            manager.context, set_ids[-1], max_recovery_s=bound, apply=True
        )
        assert placement.max_recovery_s <= bound
        assert to_compact  # something was compacted
        # Every set still recovers bit-exactly after compaction.
        for set_id, case in zip(set_ids, synthetic_cases):
            assert manager.recover_set(set_id).equals(case.model_set)
