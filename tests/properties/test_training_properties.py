"""Property-based tests of the determinism contract the Provenance
approach rests on: *any* pipeline configuration replays bit-exactly."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.architectures import build_ffnn48
from repro.datasets.base import ArrayDataset
from repro.training.pipeline import PipelineConfig, TrainingPipeline

#: Valid trainable-layer subsets of the FFNN architecture (Sequential
#: indices of its Linear layers).
layer_subsets = st.one_of(
    st.none(),
    st.sets(st.sampled_from(["0", "2", "4", "6"]), min_size=1, max_size=4).map(
        lambda s: tuple(sorted(s))
    ),
)

pipeline_configs = st.builds(
    PipelineConfig,
    loss=st.just("mse"),
    optimizer=st.sampled_from(["sgd", "adam"]),
    learning_rate=st.floats(min_value=1e-4, max_value=0.1),
    momentum=st.floats(min_value=0.0, max_value=0.95),
    weight_decay=st.floats(min_value=0.0, max_value=0.01),
    epochs=st.integers(min_value=1, max_value=3),
    batch_size=st.integers(min_value=4, max_value=64),
    shuffle_seed=st.integers(min_value=0, max_value=1000),
    trainable_layers=layer_subsets,
)


def make_dataset(seed: int) -> ArrayDataset:
    rng = np.random.default_rng(seed)
    inputs = rng.normal(size=(48, 4)).astype(np.float32)
    targets = rng.normal(size=(48, 1)).astype(np.float32)
    return ArrayDataset(inputs, targets)


class TestPipelineDeterminismProperties:
    @given(
        config=pipeline_configs,
        data_seed=st.integers(min_value=0, max_value=100),
        model_seed=st.integers(min_value=0, max_value=100),
    )
    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_any_config_replays_bit_exact(self, config, data_seed, model_seed):
        dataset = make_dataset(data_seed)
        model_a = build_ffnn48(rng=np.random.default_rng(model_seed))
        model_b = build_ffnn48(rng=np.random.default_rng(model_seed))
        TrainingPipeline(config).train(model_a, dataset)
        TrainingPipeline(config).train(model_b, dataset)
        state_a, state_b = model_a.state_dict(), model_b.state_dict()
        assert all(np.array_equal(state_a[k], state_b[k]) for k in state_a)

    @given(
        config=pipeline_configs,
        data_seed=st.integers(min_value=0, max_value=100),
    )
    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_replay_survives_json_roundtrip(self, config, data_seed):
        dataset = make_dataset(data_seed)
        restored = PipelineConfig.from_json(config.to_json())
        model_a = build_ffnn48(rng=np.random.default_rng(0))
        model_b = build_ffnn48(rng=np.random.default_rng(0))
        TrainingPipeline(config).train(model_a, dataset)
        TrainingPipeline(restored).train(model_b, dataset)
        state_a, state_b = model_a.state_dict(), model_b.state_dict()
        assert all(np.array_equal(state_a[k], state_b[k]) for k in state_a)

    @given(
        config=pipeline_configs,
        data_seed=st.integers(min_value=0, max_value=100),
    )
    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_exactly_selected_layers_change(self, config, data_seed):
        dataset = make_dataset(data_seed)
        model = build_ffnn48(rng=np.random.default_rng(1))
        before = model.state_dict()
        pipeline = TrainingPipeline(config)
        trainable = set(pipeline.trainable_parameter_names(model))
        pipeline.train(model, dataset)
        after = model.state_dict()
        for name in before:
            changed = not np.array_equal(before[name], after[name])
            if name not in trainable:
                assert not changed, f"frozen layer {name} moved"
            # Trained layers *may* stay identical in degenerate configs
            # (e.g. zero gradients), so no assertion the other way.

    @given(
        seed_a=st.integers(min_value=0, max_value=50),
        seed_b=st.integers(min_value=51, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_different_data_diverges(self, seed_a, seed_b):
        config = PipelineConfig(learning_rate=0.05, epochs=1, batch_size=16)
        model_a = build_ffnn48(rng=np.random.default_rng(0))
        model_b = build_ffnn48(rng=np.random.default_rng(0))
        TrainingPipeline(config).train(model_a, make_dataset(seed_a))
        TrainingPipeline(config).train(model_b, make_dataset(seed_b))
        state_a, state_b = model_a.state_dict(), model_b.state_dict()
        assert any(not np.array_equal(state_a[k], state_b[k]) for k in state_a)
