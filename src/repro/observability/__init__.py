"""Tracing + metrics for the archive (spans, registry, exporters).

Quickstart::

    from repro import ArchiveConfig, MultiModelManager, ObservabilityConfig

    config = ArchiveConfig(observability=ObservabilityConfig(tracing=True))
    manager = MultiModelManager.with_approach("update", config)
    set_id = manager.save_set(model_set)

    from repro.observability import render_tree
    print(render_tree(manager.context.tracer.last_root))

See :mod:`repro.observability.trace` for the span model and the
determinism rules instrumented code follows.
"""

from repro.observability.export import (
    metrics_json,
    phase_breakdown,
    prometheus_text,
    render_tree,
    span_to_dict,
    trace_document,
    write_trace_json,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimedLock,
    global_registry,
)
from repro.observability.schema import TRACE_SCHEMA, validate_trace_document
from repro.observability.trace import (
    NOOP_SPAN,
    Span,
    TraceRecorder,
    install_tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "TRACE_SCHEMA",
    "TimedLock",
    "TraceRecorder",
    "global_registry",
    "install_tracing",
    "metrics_json",
    "phase_breakdown",
    "prometheus_text",
    "render_tree",
    "span_to_dict",
    "trace_document",
    "validate_trace_document",
    "write_trace_json",
]
