"""Tests for the disk-backed stores and the durable manager."""

import numpy as np
import pytest

from repro.config import ArchiveConfig
from repro.core.manager import MultiModelManager
from repro.core.model_set import ModelSet
from repro.errors import (
    ArtifactNotFoundError,
    DocumentNotFoundError,
    DuplicateArtifactError,
    StorageError,
)
from repro.storage.persistent import (
    PersistentDocumentStore,
    PersistentFileStore,
    open_context,
)


class TestPersistentFileStore:
    def test_roundtrip_across_reopen(self, tmp_path):
        store = PersistentFileStore(tmp_path)
        store.put(b"payload", artifact_id="a1")
        reopened = PersistentFileStore(tmp_path)
        assert reopened.get("a1") == b"payload"
        assert reopened.size("a1") == 7
        assert reopened.ids() == ["a1"]

    def test_content_addressing(self, tmp_path):
        store = PersistentFileStore(tmp_path)
        artifact_id = store.put(b"xyz")
        assert artifact_id.startswith("sha256-")
        assert store.get(artifact_id) == b"xyz"

    def test_duplicate_rejected(self, tmp_path):
        store = PersistentFileStore(tmp_path)
        store.put(b"a", artifact_id="dup")
        with pytest.raises(DuplicateArtifactError):
            store.put(b"b", artifact_id="dup")

    def test_duplicate_rejected_across_reopen(self, tmp_path):
        PersistentFileStore(tmp_path).put(b"a", artifact_id="dup")
        with pytest.raises(DuplicateArtifactError):
            PersistentFileStore(tmp_path).put(b"b", artifact_id="dup")

    def test_checksum_detects_corruption(self, tmp_path):
        store = PersistentFileStore(tmp_path)
        store.put(b"important-model-bytes", artifact_id="a1")
        blob_path = tmp_path / "a1.bin"
        data = bytearray(blob_path.read_bytes())
        data[0] ^= 0xFF
        blob_path.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            PersistentFileStore(tmp_path).get("a1")

    def test_checksum_verification_can_be_disabled(self, tmp_path):
        store = PersistentFileStore(tmp_path)
        store.put(b"bytes", artifact_id="a1")
        (tmp_path / "a1.bin").write_bytes(b"tampered")
        lax = PersistentFileStore(tmp_path, verify_checksums=False)
        assert lax.get("a1") == b"tampered"

    def test_get_range_reads_from_disk(self, tmp_path):
        store = PersistentFileStore(tmp_path)
        store.put(bytes(range(100)), artifact_id="a1")
        assert store.get_range("a1", 50, 10) == bytes(range(50, 60))
        with pytest.raises(ValueError):
            store.get_range("a1", 95, 10)

    def test_delete_removes_files(self, tmp_path):
        store = PersistentFileStore(tmp_path)
        store.put(b"bye", artifact_id="a1")
        store.delete("a1")
        assert not store.exists("a1")
        assert not (tmp_path / "a1.bin").exists()
        assert not (tmp_path / "a1.sha256").exists()
        with pytest.raises(ArtifactNotFoundError):
            store.get("a1")

    def test_invalid_artifact_id_rejected(self, tmp_path):
        store = PersistentFileStore(tmp_path)
        with pytest.raises(StorageError):
            store.put(b"x", artifact_id="../escape")

    def test_accounting_matches_in_memory_store(self, tmp_path):
        store = PersistentFileStore(tmp_path)
        store.put(b"12345", artifact_id="a1", category="parameters")
        assert store.stats.writes == 1
        assert store.stats.bytes_written == 5
        assert store.stats.bytes_by_category == {"parameters": 5}

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = PersistentFileStore(tmp_path)
        store.put(b"x" * 100, artifact_id="a1")
        assert not list(tmp_path.glob("*.tmp"))


class TestPersistentDocumentStore:
    def test_roundtrip_across_reopen(self, tmp_path):
        store = PersistentDocumentStore(tmp_path)
        doc_id = store.insert("models", {"n": 1})
        reopened = PersistentDocumentStore(tmp_path)
        assert reopened.get("models", doc_id) == {"n": 1}

    def test_auto_ids_resume_after_reopen(self, tmp_path):
        store = PersistentDocumentStore(tmp_path)
        first = store.insert("c", {})
        second = PersistentDocumentStore(tmp_path).insert("c", {})
        assert second != first

    def test_delete_removes_file(self, tmp_path):
        store = PersistentDocumentStore(tmp_path)
        store.insert("c", {"a": 1}, doc_id="d1")
        store.delete("c", "d1")
        assert not (tmp_path / "c" / "d1.json").exists()
        with pytest.raises(DocumentNotFoundError):
            store.get("c", "d1")

    def test_replace_persists(self, tmp_path):
        store = PersistentDocumentStore(tmp_path)
        store.insert("c", {"v": 1}, doc_id="d1")
        store.replace("c", "d1", {"v": 2})
        assert PersistentDocumentStore(tmp_path).get("c", "d1") == {"v": 2}

    def test_replace_missing_raises(self, tmp_path):
        store = PersistentDocumentStore(tmp_path)
        with pytest.raises(DocumentNotFoundError):
            store.replace("c", "ghost", {})


class TestDurableManager:
    def test_full_lifecycle_across_reopen(self, tmp_path):
        models = ModelSet.build("FFNN-48", num_models=6, seed=0)
        manager = MultiModelManager.open(str(tmp_path), "update")
        first = manager.save_set(models)
        derived = models.copy()
        derived.state(1)["2.weight"][:] += 0.5
        second = manager.save_set(derived, base_set_id=first)

        reopened = MultiModelManager.open(str(tmp_path), "update")
        assert reopened.recover_set(second).equals(derived)
        assert reopened.recover_set(first).equals(models)

    def test_set_id_sequence_resumes(self, tmp_path):
        models = ModelSet.build("FFNN-48", num_models=2, seed=0)
        manager = MultiModelManager.open(str(tmp_path), "baseline")
        first = manager.save_set(models)
        reopened = MultiModelManager.open(str(tmp_path), "baseline")
        second = reopened.save_set(models)
        assert second != first
        assert reopened.list_sets() == sorted([first, second])

    def test_single_model_recovery_from_disk(self, tmp_path):
        models = ModelSet.build("FFNN-48", num_models=5, seed=0)
        manager = MultiModelManager.open(str(tmp_path), "baseline")
        set_id = manager.save_set(models)
        reopened = MultiModelManager.open(str(tmp_path), "baseline")
        state = reopened.recover_model(set_id, 4)
        assert all(np.array_equal(state[k], models.state(4)[k]) for k in state)

    def test_open_context_directory_layout(self, tmp_path):
        context = open_context(tmp_path)
        assert (tmp_path / "artifacts").is_dir()
        assert (tmp_path / "documents").is_dir()
        assert context.total_bytes() == 0


class TestReplicaTopologyDetection:
    def test_detect_replicas_tolerates_lost_directory(self, tmp_path):
        import shutil

        from repro.storage.persistent import detect_replicas

        for index in range(3):
            (tmp_path / f"replica-{index}").mkdir()
        assert detect_replicas(tmp_path) == 3
        # Losing replica-0 wholesale must not collapse detection to a
        # single-backend layout: the gap reopens as the full topology.
        shutil.rmtree(tmp_path / "replica-0")
        assert detect_replicas(tmp_path) == 3
        assert detect_replicas(tmp_path / "does-not-exist") == 1

    def test_detect_replicas_ignores_unrelated_entries(self, tmp_path):
        from repro.storage.persistent import detect_replicas

        (tmp_path / "replica-x").mkdir()
        (tmp_path / "replica-1.bak").mkdir()
        (tmp_path / "artifacts").mkdir()
        assert detect_replicas(tmp_path) == 1

    def test_replicated_open_refuses_legacy_single_backend_archive(
        self, tmp_path
    ):
        models = ModelSet.build("FFNN-48", num_models=2, seed=0)
        manager = MultiModelManager.open(str(tmp_path), "baseline")
        set_id = manager.save_set(models)
        # Opening with replicas > 1 would lay out fresh empty replica-<i>
        # subtrees that silently shadow the existing data: refuse loudly.
        with pytest.raises(StorageError, match="replica-0"):
            MultiModelManager.open(str(tmp_path), "baseline", ArchiveConfig(replicas=3))
        # The archive is untouched and still opens fine single-backend.
        reopened = MultiModelManager.open(str(tmp_path), "baseline")
        assert reopened.recover_set(set_id).equals(models)
