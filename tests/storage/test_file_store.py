"""Tests for the binary artifact store."""

import pytest

from repro.errors import ArtifactNotFoundError, DuplicateArtifactError
from repro.storage.file_store import FileStore
from repro.storage.hardware import M1_PROFILE


class TestPutGet:
    def test_roundtrip_with_explicit_id(self):
        store = FileStore()
        store.put(b"hello", artifact_id="greeting")
        assert store.get("greeting") == b"hello"

    def test_content_addressing_without_id(self):
        store = FileStore()
        artifact_id = store.put(b"payload")
        assert artifact_id.startswith("sha256-")
        assert store.get(artifact_id) == b"payload"

    def test_same_content_same_derived_id(self):
        store = FileStore()
        assert store.put(b"x") == store.put(b"x")

    def test_duplicate_explicit_id_rejected(self):
        store = FileStore()
        store.put(b"a", artifact_id="one")
        with pytest.raises(DuplicateArtifactError):
            store.put(b"b", artifact_id="one")

    def test_missing_artifact_raises(self):
        store = FileStore()
        with pytest.raises(ArtifactNotFoundError):
            store.get("ghost")
        with pytest.raises(ArtifactNotFoundError):
            store.size("ghost")

    def test_empty_payload(self):
        store = FileStore()
        store.put(b"", artifact_id="empty")
        assert store.get("empty") == b""


class TestInspection:
    def test_exists_size_ids_len(self):
        store = FileStore()
        store.put(b"abc", artifact_id="z")
        store.put(b"defg", artifact_id="a")
        assert store.exists("z") and not store.exists("q")
        assert store.size("a") == 4
        assert store.ids() == ["a", "z"]
        assert len(store) == 2

    def test_total_bytes(self):
        store = FileStore()
        store.put(b"abc", artifact_id="x")
        store.put(b"de", artifact_id="y")
        assert store.total_bytes() == 5


class TestAccounting:
    def test_write_counters(self):
        store = FileStore()
        store.put(b"12345", artifact_id="x", category="parameters")
        assert store.stats.writes == 1
        assert store.stats.bytes_written == 5
        assert store.stats.bytes_by_category == {"parameters": 5}

    def test_read_counters(self):
        store = FileStore()
        store.put(b"12345", artifact_id="x")
        store.get("x")
        assert store.stats.reads == 1
        assert store.stats.bytes_read == 5

    def test_inspection_not_charged(self):
        store = FileStore()
        store.put(b"12345", artifact_id="x")
        store.exists("x")
        store.size("x")
        store.ids()
        assert store.stats.reads == 0

    def test_latency_charged_per_profile(self):
        store = FileStore(profile=M1_PROFILE)
        payload = b"x" * 1_000_000
        store.put(payload, artifact_id="big")
        expected = M1_PROFILE.file_write_cost(len(payload))
        assert store.stats.simulated_write_s == pytest.approx(expected)
        store.get("big")
        assert store.stats.simulated_read_s == pytest.approx(
            M1_PROFILE.file_read_cost(len(payload))
        )

    def test_zero_latency_profile_charges_nothing(self):
        store = FileStore()
        store.put(b"x" * 100, artifact_id="x")
        assert store.stats.simulated_write_s == 0.0


class TestDiskSpill:
    def test_artifacts_written_to_directory(self, tmp_path):
        store = FileStore(directory=tmp_path)
        store.put(b"on-disk", artifact_id="file1")
        assert (tmp_path / "file1.bin").read_bytes() == b"on-disk"

    def test_reads_come_from_disk(self, tmp_path):
        store = FileStore(directory=tmp_path)
        store.put(b"payload", artifact_id="file1")
        # Tamper with the file to prove reads hit the disk copy.
        (tmp_path / "file1.bin").write_bytes(b"tampered")
        assert store.get("file1") == b"tampered"
