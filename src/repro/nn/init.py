"""Seeded weight-initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so that
model construction is fully deterministic — a prerequisite for the
Provenance approach, which must reproduce training bit-for-bit.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.module import DTYPE


def kaiming_uniform(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He-uniform initialization, suitable for ReLU networks.

    Samples from ``U(-bound, bound)`` with ``bound = sqrt(6 / fan_in)``.
    """
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(DTYPE)


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot-uniform initialization, suitable for tanh/sigmoid networks."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fans must be positive, got {fan_in}, {fan_out}")
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(DTYPE)


def bias_uniform(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """PyTorch-style bias initialization: ``U(-1/sqrt(fan_in), 1/sqrt(fan_in))``."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    bound = 1.0 / math.sqrt(fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(DTYPE)
