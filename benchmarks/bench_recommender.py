"""A3 — ablation: the heuristic approach recommender (§4.5 future work).

Checks that the analytical cost model reproduces the paper's guidance
(storage-first -> Provenance, balanced -> Update, TTR-first -> Baseline)
and benchmarks the recommendation latency itself (it must be cheap
enough to run per save cycle for dynamic strategy switching).
"""

from repro.bench.runner import ExperimentSettings, run_experiment
from repro.core.recommender import ApproachRecommender, ScenarioProfile


def test_recommendations_cover_three_regimes(benchmark):
    settings = ExperimentSettings(num_models=10, cycles=2, runs=1)

    def run():
        return run_experiment("recommender", settings).data["recommendations"]

    picks = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["recommendations"] = picks
    assert set(picks.values()) == {"provenance", "update", "baseline"}


def test_recommendation_latency(benchmark):
    recommender = ApproachRecommender()
    profile = ScenarioProfile()

    result = benchmark(lambda: recommender.recommend(profile))
    assert result in ("provenance", "update", "baseline")
