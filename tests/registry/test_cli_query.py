"""``repro-archive query``/``register`` CLI contracts, plain and fleet.

Exit codes keep the CLI's 0/1/2 convention: 0 — query answered, 2 —
operational error (unknown family/tag/set, degraded fleet, archive
without a registry).
"""

import json

import numpy as np
import pytest

from repro.cli import main as archive_main
from repro.config import ArchiveConfig
from repro.core.manager import MultiModelManager
from repro.core.model_set import ModelSet
from repro.core.save_info import SetMetadata
from repro.fleet import FleetManager


def build_models(num_models=3, seed=0):
    return ModelSet.build("FFNN-48", num_models=num_models, seed=seed)


def perturb(models, model_index, layer_index):
    derived = models.copy()
    name = models.schema.layer_names()[layer_index]
    state = derived.state(model_index)
    state[name] = (state[name] + 0.5).astype(state[name].dtype)
    return derived


@pytest.fixture
def plain_archive(tmp_path):
    path = str(tmp_path / "archive")
    manager = MultiModelManager.open(path, "update")
    models = build_models()
    base_id = manager.save_set(
        models, metadata=SetMetadata(extra={"family": "pack"})
    )
    derived_id = manager.save_set(perturb(models, 1, 0), base_set_id=base_id)
    return path, base_id, derived_id


@pytest.fixture
def fleet_archive(tmp_path):
    path = str(tmp_path / "fleet")
    fleet = FleetManager.open(path, "update", ArchiveConfig(shards=2))
    models = build_models()
    base_id = fleet.save_set(
        models, metadata=SetMetadata(extra={"family": "pack"})
    )
    derived_id = fleet.save_set(perturb(models, 1, 0), base_set_id=base_id)
    return path, base_id, derived_id


class TestQueryPlain:
    def test_families(self, plain_archive, capsys):
        path, _base, _derived = plain_archive
        assert archive_main([path, "query", "families"]) == 0
        assert "pack" in capsys.readouterr().out

    def test_families_json(self, plain_archive, capsys):
        path, _base, _derived = plain_archive
        assert archive_main([path, "query", "families", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == ["pack"]

    def test_versions(self, plain_archive, capsys):
        path, base_id, derived_id = plain_archive
        assert archive_main([path, "query", "versions", "pack"]) == 0
        out = capsys.readouterr().out
        assert f"v1  {base_id}" in out
        assert f"v2  {derived_id}" in out
        assert f"<- {base_id}" in out

    def test_versions_json(self, plain_archive, capsys):
        path, base_id, derived_id = plain_archive
        assert archive_main([path, "query", "versions", "pack", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert [r["set_id"] for r in records] == [base_id, derived_id]
        assert records[1]["base_set"] == base_id

    def test_resolve_defaults_to_latest(self, plain_archive, capsys):
        path, _base, derived_id = plain_archive
        assert archive_main([path, "query", "resolve", "pack"]) == 0
        assert capsys.readouterr().out.strip() == derived_id

    def test_diff_reports_layers_and_zero_parameter_reads(
        self, plain_archive, capsys
    ):
        path, base_id, derived_id = plain_archive
        assert archive_main([path, "query", "diff", base_id, derived_id]) == 0
        out = capsys.readouterr().out
        assert "1 of 3 models changed" in out
        assert "source: hash-info" in out
        assert "model 1:" in out
        assert "parameter bytes read: 0 (0 reads)" in out

    def test_diff_json_carries_stats(self, plain_archive, capsys):
        path, base_id, derived_id = plain_archive
        assert (
            archive_main([path, "query", "diff", base_id, derived_id, "--json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["parameter_bytes_read"] == 0
        assert payload["parameter_reads"] == 0
        assert payload["source"] == "hash-info"
        assert payload["changed"][0]["model_index"] == 1

    def test_derived_from(self, plain_archive, capsys):
        path, base_id, derived_id = plain_archive
        assert (
            archive_main([path, "query", "derived-from", base_id, "--transitive"])
            == 0
        )
        assert derived_id in capsys.readouterr().out

    def test_tag_then_resolve(self, plain_archive, capsys):
        path, base_id, _derived = plain_archive
        assert archive_main([path, "query", "tag", "pack", "prod", base_id]) == 0
        assert archive_main([path, "query", "resolve", "pack", "prod"]) == 0
        assert capsys.readouterr().out.strip().endswith(base_id)

    def test_unknown_family_exits_2(self, plain_archive, capsys):
        path, _base, _derived = plain_archive
        assert archive_main([path, "query", "resolve", "ghost"]) == 2
        assert "unknown family" in capsys.readouterr().err


class TestRegisterPlain:
    def test_rebuild(self, plain_archive, capsys):
        path, _base, derived_id = plain_archive
        assert archive_main([path, "register", "--rebuild"]) == 0
        assert "registered 2 sets" in capsys.readouterr().out
        assert archive_main([path, "query", "resolve", "pack"]) == 0
        assert capsys.readouterr().out.strip() == derived_id

    def test_register_without_rebuild_exits_2(self, plain_archive, capsys):
        path, _base, _derived = plain_archive
        assert archive_main([path, "register"]) == 2
        assert "--rebuild" in capsys.readouterr().err

    def test_rebuild_adopts_pre_registry_archive(self, tmp_path, capsys):
        # An archive written with the registry off predates the catalog;
        # register --rebuild adopts it.
        path = str(tmp_path / "old")
        manager = MultiModelManager.open(
            path, "update", ArchiveConfig(registry=False)
        )
        models = build_models()
        base_id = manager.save_set(
            models, metadata=SetMetadata(extra={"family": "legacy"})
        )
        manager.save_set(perturb(models, 0, 0), base_set_id=base_id)
        assert archive_main([path, "register", "--rebuild"]) == 0
        assert "registered 2 sets" in capsys.readouterr().out
        assert archive_main([path, "query", "families"]) == 0
        assert "legacy" in capsys.readouterr().out


class TestQueryFleet:
    def test_families_and_versions(self, fleet_archive, capsys):
        path, base_id, derived_id = fleet_archive
        assert archive_main([path, "query", "families"]) == 0
        assert "pack" in capsys.readouterr().out
        assert archive_main([path, "query", "versions", "pack"]) == 0
        out = capsys.readouterr().out
        assert f"v1  {base_id}" in out and "shard=" in out

    def test_diff_routes_across_shards_without_parameter_reads(
        self, fleet_archive, capsys
    ):
        path, base_id, derived_id = fleet_archive
        assert archive_main([path, "query", "diff", base_id, derived_id]) == 0
        out = capsys.readouterr().out
        assert "source: hash-info" in out
        assert "parameter bytes read: 0 (0 reads)" in out

    def test_register_rebuild(self, fleet_archive, capsys):
        path, _base, derived_id = fleet_archive
        assert archive_main([path, "register", "--rebuild"]) == 0
        assert "registered 2 sets" in capsys.readouterr().out
        assert archive_main([path, "query", "resolve", "pack"]) == 0
        assert capsys.readouterr().out.strip() == derived_id

    def test_fleet_gc_resyncs_catalog(self, fleet_archive, capsys):
        path, _base, derived_id = fleet_archive
        assert archive_main([path, "gc", "--keep-last", "1"]) == 0
        capsys.readouterr()
        assert archive_main([path, "query", "versions", "pack"]) == 0
        out = capsys.readouterr().out
        assert derived_id in out
        # Incremental resync: the survivor keeps its version and the
        # family name outlives its collected root set.
        assert f"v2  {derived_id}" in out and "v1" not in out
        assert archive_main([path, "query", "resolve", "pack"]) == 0
        assert capsys.readouterr().out.strip() == derived_id

    def test_degraded_fleet_refuses_query(self, fleet_archive, capsys):
        import shutil
        from pathlib import Path

        # Drop shard-0: shard-1 still pins the detected topology at 2,
        # so the fleet reopens degraded rather than silently smaller.
        path, base_id, _derived = fleet_archive
        shutil.rmtree(Path(path) / "shard-0")
        assert archive_main([path, "query", "families"]) == 2
        assert "degraded" in capsys.readouterr().err
