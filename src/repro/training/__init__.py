"""Deterministic, replayable model training.

The Provenance approach stands or falls with training determinism: saving
provenance information instead of parameters is only sound if repeating
the training "based on the provenance information starting from the last
fully saved model" (§2.2) reproduces the parameters exactly.  This
package provides:

* :class:`~repro.training.pipeline.TrainingPipeline` — a fully
  JSON-describable training procedure (loss, optimizer, hyper-parameters,
  shuffle seed, optional trainable-layer subset) whose ``train`` method is
  a pure function of (initial parameters, dataset, config),
* :mod:`~repro.training.environment` — capture of the soft/hardware
  environment that provenance records (and that MMlib-base redundantly
  saves per model), and
* :mod:`~repro.training.seeds` — helpers for derived, collision-free seeds.
"""

from repro.training.environment import EnvironmentInfo, capture_environment
from repro.training.pipeline import PipelineConfig, TrainingPipeline
from repro.training.seeds import derive_seed

__all__ = [
    "EnvironmentInfo",
    "PipelineConfig",
    "TrainingPipeline",
    "capture_environment",
    "derive_seed",
]
