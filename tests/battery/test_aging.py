"""Tests for the SoH aging schedule."""

import pytest

from repro.battery.aging import END_OF_LIFE_SOH, AgingSchedule


class TestAgingSchedule:
    def test_initial_cycle_is_initial_soh(self):
        schedule = AgingSchedule(num_cells=10, initial_soh=0.98)
        assert all(schedule.soh_at(cell, 0) == 0.98 for cell in range(10))

    def test_soh_decreases_monotonically(self):
        schedule = AgingSchedule(num_cells=5, seed=1)
        for cell in range(5):
            values = [schedule.soh_at(cell, cycle) for cycle in range(10)]
            assert all(a >= b for a, b in zip(values, values[1:]))

    def test_per_cell_rates_differ(self):
        schedule = AgingSchedule(num_cells=50, seed=0)
        at_ten = {round(schedule.soh_at(cell, 10), 6) for cell in range(50)}
        assert len(at_ten) > 10  # "different aging trends" (§4.1)

    def test_deterministic_per_seed(self):
        a = AgingSchedule(num_cells=8, seed=3)
        b = AgingSchedule(num_cells=8, seed=3)
        assert all(a.soh_at(c, 5) == b.soh_at(c, 5) for c in range(8))

    def test_rate_independent_of_population_size(self):
        # Cell i's trajectory must not change when the schedule covers
        # more cells (datasets are resolved with per-cell schedules).
        small = AgingSchedule(num_cells=3, seed=7)
        large = AgingSchedule(num_cells=100, seed=7)
        for cell in range(3):
            assert small.soh_at(cell, 4) == large.soh_at(cell, 4)

    def test_floor_prevents_nonpositive_soh(self):
        schedule = AgingSchedule(num_cells=1, seed=0, mean_decrement=0.5)
        assert schedule.soh_at(0, 1000) == pytest.approx(0.05)

    def test_end_of_life_detection(self):
        schedule = AgingSchedule(num_cells=10, seed=0, mean_decrement=0.05)
        none_dead = schedule.cells_past_end_of_life(0)
        all_dead = schedule.cells_past_end_of_life(100)
        assert none_dead == []
        assert all_dead == list(range(10))
        assert END_OF_LIFE_SOH == 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            AgingSchedule(num_cells=0)
        with pytest.raises(ValueError):
            AgingSchedule(num_cells=1, initial_soh=1.5)
        with pytest.raises(ValueError):
            AgingSchedule(num_cells=1, mean_decrement=-0.1)
        schedule = AgingSchedule(num_cells=2)
        with pytest.raises(IndexError):
            schedule.soh_at(2, 0)
        with pytest.raises(ValueError):
            schedule.soh_at(0, -1)
