"""Parameter-free activation modules with explicit backward passes."""

from __future__ import annotations

import numpy as np

from repro.nn.module import DTYPE, Module


class ReLU(Module):
    """Rectified linear unit: ``max(0, x)``."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=DTYPE)
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_out, dtype=DTYPE) * self._mask


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(np.asarray(x, dtype=DTYPE))
        return self._output

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_out, dtype=DTYPE) * (1.0 - self._output**2)


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=DTYPE)
        # Branch on sign so neither exp() overflows.
        output = np.empty_like(x)
        positive = x >= 0
        output[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        exp_x = np.exp(x[~positive])
        output[~positive] = exp_x / (1.0 + exp_x)
        self._output = output
        return output

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_out, dtype=DTYPE) * self._output * (1.0 - self._output)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    x = np.asarray(x, dtype=DTYPE)
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class Softmax(Module):
    """Softmax over the last axis.

    Intended for inference-time probability output.  For training, prefer
    :class:`repro.nn.loss.CrossEntropyLoss`, which fuses softmax with the
    log-likelihood for a numerically stable gradient.
    """

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = softmax(x)
        return self._output

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        grad_out = np.asarray(grad_out, dtype=DTYPE)
        dot = (grad_out * self._output).sum(axis=-1, keepdims=True)
        return self._output * (grad_out - dot)
