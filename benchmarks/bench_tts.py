"""E5 — Figure 4: median time-to-save per use case, M1 and server setups.

Times each approach's save path under both hardware latency profiles.
The paper's trends: MMlib-base is worst everywhere (per-model round
trips), Baseline is fastest for full saves, Update pays a hashing
premium over Baseline, and Provenance's U3 saves are near-instant.  The
M1 profile widens the MMlib-base gap (slower store connection, §4.3).
"""

import pytest

from benchmarks.conftest import record_series
from repro.bench.runner import APPROACH_NAMES, _save_all
from repro.storage.hardware import M1_PROFILE, SERVER_PROFILE

PROFILES = {"server": SERVER_PROFILE, "m1": M1_PROFILE}


@pytest.mark.parametrize("profile_name", sorted(PROFILES))
@pytest.mark.parametrize("approach", APPROACH_NAMES)
def test_tts_per_use_case(benchmark, cases, approach, profile_name):
    profile = PROFILES[profile_name]

    def run():
        _manager, _ids, measurements = _save_all(approach, cases, profile)
        return [m.total_s for m in measurements]

    tts = benchmark.pedantic(run, rounds=3, iterations=1)
    record_series(benchmark, {f"{approach}@{profile_name}": tts}, unit="s")


def test_mmlib_base_saves_slowest_on_both_setups(benchmark, cases):
    def run():
        ratios = {}
        for name, profile in PROFILES.items():
            mmlib = sum(
                m.total_s for m in _save_all("mmlib-base", cases, profile)[2]
            )
            baseline = sum(
                m.total_s for m in _save_all("baseline", cases, profile)[2]
            )
            ratios[name] = mmlib / baseline
        return ratios

    ratios = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["mmlib_vs_baseline_tts_ratio"] = {
        k: round(v, 2) for k, v in ratios.items()
    }
    # Paper: "more than an order of magnitude" on M1; still significant
    # on the server.
    assert ratios["m1"] > 3.0
    assert ratios["server"] > 2.0
    # The M1's slower document store hurts MMlib-base disproportionately.
    assert ratios["m1"] > ratios["server"]


def test_provenance_u3_save_is_fastest(benchmark, cases):
    def run():
        per_approach = {}
        for approach in APPROACH_NAMES:
            measurements = _save_all(approach, cases, SERVER_PROFILE)[2]
            per_approach[approach] = measurements[1].total_s  # U3-1
        return per_approach

    tts = benchmark.pedantic(run, rounds=3, iterations=1)
    assert tts["provenance"] < tts["baseline"]
    assert tts["provenance"] < tts["update"]
    assert tts["provenance"] < tts["mmlib-base"]
