"""Tier-1 smoke iteration of the fleet-scaling benchmark.

One reduced-scale pass of :func:`repro.bench.fleet.run_fleet_scaling`
verifying the deterministic fleet claims: makespan-charged TTS drops
with shard count, bursty streams coalesce, and every recovered set
matches the serial oracle byte for byte.
"""

from repro.bench.fleet import run_fleet_scaling


def test_fleet_scaling_smoke():
    report = run_fleet_scaling(
        shard_counts=(1, 4), writer_counts=(1, 4), num_chains=12, bursts=2
    )

    # Sharding reduces makespan TTS (12 equal chains over 4 shards can
    # do no better than the fullest shard; require a real improvement).
    assert report["speedups"]["update_tts_s4_vs_s1_w4"] >= 1.5

    for entry in report["configs"]:
        assert entry["coalescing_ratio"] > 2.0
        assert entry["identical_to_oracle"]
        # Shard mutexes are never shared across shards: even under
        # concurrent writers the measured waits stay tiny.
        assert entry["max_lock_wait_s"] < 1.0
    assert report["identical_across_configs"]
