"""Maintenance test fixtures: registry isolation and a small shared set."""

from __future__ import annotations

from collections import OrderedDict

import pytest

from repro.core.model_set import ModelSet
from repro.observability.metrics import global_registry


@pytest.fixture(autouse=True)
def clean_registry():
    """Fleet-backed schedulers may register providers on the process-wide
    registry; drop them afterwards so tests stay independent."""
    global_registry().reset()
    yield
    global_registry().reset()


@pytest.fixture(scope="session")
def tiny_set() -> ModelSet:
    """3 FFNN-48 models; session-scoped, treat as read-only."""
    return ModelSet.build("FFNN-48", num_models=3, seed=11)


def perturbed(model_set: ModelSet, step: int) -> ModelSet:
    """A full-set update: every layer of every model shifted by ``step``."""
    updated = model_set.copy()
    for index in range(len(updated)):
        updated.states[index] = OrderedDict(
            (name, (array + 0.25 * (step + 1)).astype(array.dtype))
            for name, array in model_set.state(index).items()
        )
    return updated


def save_chain(manager, base_set: ModelSet, length: int) -> list[str]:
    """A root save plus ``length`` derived saves (a delta chain)."""
    ids = [manager.save_set(base_set)]
    for step in range(length):
        ids.append(
            manager.save_set(perturbed(base_set, step), base_set_id=ids[-1])
        )
    return ids
