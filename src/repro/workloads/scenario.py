"""The evaluation scenario: U1 followed by iterations of U3 (Fig. 2).

Two update modes are supported:

* ``train_updates=True`` — every updated model is genuinely re-trained on
  its referenced dataset with the recorded pipeline.  This is the mode
  whose saved provenance replays bit-exactly, so it is what the
  Provenance correctness tests and TTR benches use.  Like the paper
  (which trains "one model with reduced data per iteration" to keep
  provenance TTR runs feasible, §4.4), use small model counts here.
* ``train_updates=False`` — updated layers are perturbed with seeded
  noise instead of trained.  Parameter *values* are then arbitrary, but
  the change *pattern* (which models, which layers) is identical, which
  is all the storage/TTS/TTR benchmarks of MMlib-base, Baseline, and
  Update depend on.  This keeps 5000-model runs cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.battery.datagen import CellDataConfig
from repro.core.model_set import ModelSet
from repro.core.save_info import ModelUpdate, UpdateInfo
from repro.datasets.battery import battery_dataset_ref
from repro.datasets.registry import DatasetRef, DatasetRegistry, default_registry
from repro.training.pipeline import PipelineConfig, TrainingPipeline
from repro.training.seeds import derive_seed
from repro.workloads.update_plan import UpdatePlan

#: Builds the dataset reference for (model_index, update_cycle).
RefFactory = Callable[[int, int], DatasetRef]


@dataclass(frozen=True)
class UseCase:
    """One step of the scenario: a set to save plus its provenance."""

    name: str
    model_set: ModelSet
    base_index: int | None
    update_info: UpdateInfo | None


@dataclass
class ScenarioConfig:
    """Parameters of the evaluation scenario (§4.1 defaults)."""

    num_models: int = 5000
    architecture: str = "FFNN-48"
    num_update_cycles: int = 3
    full_update_fraction: float = 0.05
    partial_update_fraction: float = 0.05
    seed: int = 0
    data: CellDataConfig = field(default_factory=CellDataConfig)
    train_updates: bool = False
    #: Sequential-layer prefixes a partial update re-trains (FFNN default:
    #: the third Linear layer).
    partial_layers: tuple[str, ...] = ("4",)
    #: How updated models are chosen: ``"random"`` (seeded sampling, the
    #: evaluation default) or ``"monitored"`` (measure every model's
    #: divergence on its fresh cycle data and update the worst — see
    #: :mod:`repro.workloads.monitor`).
    selection: str = "random"
    pipeline: PipelineConfig = field(
        default_factory=lambda: PipelineConfig(
            loss="mse",
            optimizer="sgd",
            learning_rate=0.01,
            momentum=0.9,
            epochs=1,
            batch_size=128,
        )
    )
    dataset_ref_factory: RefFactory | None = None

    def __post_init__(self) -> None:
        if self.selection not in ("random", "monitored"):
            raise ValueError(
                f"selection must be 'random' or 'monitored', got "
                f"{self.selection!r}"
            )
        if self.num_models <= 0:
            raise ValueError("num_models must be positive")
        if self.num_update_cycles < 0:
            raise ValueError("num_update_cycles must be non-negative")

    def ref_for(self, model_index: int, cycle: int) -> DatasetRef:
        if self.dataset_ref_factory is not None:
            return self.dataset_ref_factory(model_index, cycle)
        return battery_dataset_ref(model_index, cycle, self.data)

    def pipelines_for_cycle(self, cycle: int) -> dict[str, PipelineConfig]:
        """The cycle's two pipeline variants, with a cycle-derived seed.

        All models within a cycle share the same variants; their training
        "differs only by the used data" (§3.4 assumption 1).
        """
        base = PipelineConfig(
            loss=self.pipeline.loss,
            optimizer=self.pipeline.optimizer,
            learning_rate=self.pipeline.learning_rate,
            momentum=self.pipeline.momentum,
            weight_decay=self.pipeline.weight_decay,
            epochs=self.pipeline.epochs,
            batch_size=self.pipeline.batch_size,
            shuffle_seed=derive_seed("pipeline-shuffle", self.seed, cycle),
            trainable_layers=None,
        )
        return {"full": base, "partial": base.with_layers(self.partial_layers)}


class MultiModelScenario:
    """Generates the U1 + U3-1..U3-k sequence of model sets."""

    def __init__(
        self, config: ScenarioConfig, registry: DatasetRegistry | None = None
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else default_registry()

    # -- building blocks ------------------------------------------------------
    def initial_set(self) -> ModelSet:
        """The U1 model set: ``num_models`` independently seeded models."""
        return ModelSet.build(
            self.config.architecture, self.config.num_models, seed=self.config.seed
        )

    def update_plan(
        self, cycle: int, base_set: ModelSet | None = None
    ) -> UpdatePlan:
        """Which models to update this cycle.

        ``"random"`` selection draws the paper's seeded sample;
        ``"monitored"`` evaluates ``base_set`` (required) on the cycle's
        fresh data and picks the worst-diverged models.
        """
        if self.config.selection == "monitored":
            if base_set is None:
                raise ValueError("monitored selection needs the current model set")
            from repro.workloads.monitor import DivergenceSelector, evaluate_fleet

            report = evaluate_fleet(base_set, cycle, self.config.data)
            selector = DivergenceSelector(
                full_fraction=self.config.full_update_fraction,
                partial_fraction=self.config.partial_update_fraction,
            )
            return selector.select(report)
        return UpdatePlan.sample(
            self.config.num_models,
            self.config.full_update_fraction,
            self.config.partial_update_fraction,
            self.config.seed,
            cycle,
        )

    def update_cycle(
        self, base_set: ModelSet, cycle: int
    ) -> tuple[ModelSet, UpdateInfo]:
        """Apply one U3 iteration to ``base_set``.

        Returns the derived set and the provenance of the cycle.  The
        returned :class:`UpdateInfo` is valid for the Provenance approach
        only in trained mode.
        """
        plan = self.update_plan(cycle, base_set)
        pipelines = self.config.pipelines_for_cycle(cycle)
        derived = base_set.copy()
        updates: list[ModelUpdate] = []
        for kind, indices in (
            ("full", plan.full_indices),
            ("partial", plan.partial_indices),
        ):
            pipeline_config = pipelines[kind]
            for model_index in indices:
                ref = self.config.ref_for(model_index, cycle)
                if self.config.train_updates:
                    self._train_model(derived, model_index, pipeline_config, ref)
                else:
                    self._perturb_model(derived, model_index, pipeline_config, cycle)
                updates.append(
                    ModelUpdate(
                        model_index=model_index, dataset_ref=ref, pipeline_key=kind
                    )
                )
        return derived, UpdateInfo(pipelines=pipelines, updates=tuple(updates))

    def _train_model(
        self,
        model_set: ModelSet,
        model_index: int,
        pipeline_config: PipelineConfig,
        ref: DatasetRef,
    ) -> None:
        model = model_set.build_model(model_index)
        dataset = self.registry.resolve(ref)
        TrainingPipeline(pipeline_config).train(model, dataset)
        model_set.states[model_index] = model.state_dict()

    def _perturb_model(
        self,
        model_set: ModelSet,
        model_index: int,
        pipeline_config: PipelineConfig,
        cycle: int,
    ) -> None:
        """Synthetic update: seeded noise on exactly the trainable layers."""
        model = model_set.build_model(model_index)
        trainable = set(
            TrainingPipeline(pipeline_config).trainable_parameter_names(model)
        )
        rng = np.random.default_rng(
            derive_seed("synthetic-update", self.config.seed, cycle, model_index)
        )
        state = model_set.state(model_index)
        for name in state:
            if name in trainable:
                noise = rng.normal(0.0, 0.01, size=state[name].shape)
                state[name] = (state[name] + noise).astype(np.float32)

    # -- the full sequence ------------------------------------------------------
    def use_cases(self) -> Iterator[UseCase]:
        """Yield U1, U3-1, ..., U3-k in order."""
        current = self.initial_set()
        yield UseCase("U1", current, base_index=None, update_info=None)
        for cycle in range(1, self.config.num_update_cycles + 1):
            current, info = self.update_cycle(current, cycle)
            yield UseCase(
                f"U3-{cycle}", current, base_index=cycle - 1, update_info=info
            )
