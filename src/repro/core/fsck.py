"""Archive fsck and corruption-tolerant (salvage) recovery.

Two complementary tools for the "after an accident" half of the paper's
archival story:

* :class:`ArchiveFsck` — a structural audit of the whole archive:
  leftover journal transactions, set descriptors referencing missing
  artifacts, artifacts referenced by nothing (orphans a rolled-back save
  should have reclaimed), and a full refcount audit of the chunk ledger
  against the digest matrices of every chunked set.  ``deep=True`` also
  re-hashes every artifact against its recorded checksum and every chunk
  against its content digest.
* :func:`salvage_recover` — recovery that does not abort on the first
  corrupt byte.  Every model that still verifies is returned; the report
  lists exactly which models were lost and why.  For deduplicated sets
  the damage is isolated to the *chunk*: corrupt chunks are quarantined
  and, where another set stores the same layer bytes in a full artifact,
  repaired in place from that replica before any model is given up on.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.core.approach import SETS_COLLECTION, SaveContext
from repro.core.baseline import _chunked_digests, _layer_from_bytes
from repro.core.mmlib_base import MODELS_COLLECTION
from repro.core.update import HASH_COLLECTION, _layer_nbytes
from repro.errors import DocumentNotFoundError
from repro.nn.serialization import StateSchema, deserialize_state_dict
from repro.storage.chunk_index import PACKS_COLLECTION
from repro.storage.hashing import hash_array, hash_bytes
from repro.storage.journal import JOURNAL_COLLECTION


# ---------------------------------------------------------------------------
# fsck
# ---------------------------------------------------------------------------

@dataclass
class FsckReport:
    """Outcome of an archive consistency audit."""

    sets_checked: int = 0
    artifacts_checked: int = 0
    chunks_checked: int = 0
    #: Journal transactions still on disk — a crashed process whose
    #: cleanup has not run yet (``open()`` repairs these automatically).
    pending_journal: list[str] = field(default_factory=list)
    #: ``{"set_id", "artifact"}`` — referenced but absent from the store.
    missing_artifacts: list[dict] = field(default_factory=list)
    #: Stored artifacts no set, model document, or chunk pack references.
    orphan_artifacts: list[str] = field(default_factory=list)
    #: ``{"digest", "expected", "actual"}`` — ledger refcount disagrees
    #: with the count implied by the surviving digest matrices.
    refcount_mismatches: list[dict] = field(default_factory=list)
    #: Artifacts whose bytes no longer match their recorded checksum
    #: (deep scan only).
    corrupt_artifacts: list[str] = field(default_factory=list)
    #: Chunks whose bytes no longer hash to their digest (deep scan only).
    corrupt_chunks: list[str] = field(default_factory=list)
    #: Chunks already quarantined before this run.
    quarantined_chunks: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.pending_journal
            or self.missing_artifacts
            or self.orphan_artifacts
            or self.refcount_mismatches
            or self.corrupt_artifacts
            or self.corrupt_chunks
            or self.quarantined_chunks
        )

    def summary(self) -> str:
        if self.ok:
            return (
                f"clean: {self.sets_checked} sets, "
                f"{self.artifacts_checked} artifacts, "
                f"{self.chunks_checked} chunks"
            )
        parts = []
        for label, items in (
            ("pending journal entries", self.pending_journal),
            ("missing artifacts", self.missing_artifacts),
            ("orphan artifacts", self.orphan_artifacts),
            ("refcount mismatches", self.refcount_mismatches),
            ("corrupt artifacts", self.corrupt_artifacts),
            ("corrupt chunks", self.corrupt_chunks),
            ("quarantined chunks", self.quarantined_chunks),
        ):
            if items:
                parts.append(f"{len(items)} {label}")
        return "; ".join(parts)


class ArchiveFsck:
    """Structural (and optionally byte-level) audit of one save context."""

    def __init__(self, context: SaveContext) -> None:
        self.context = context

    def _collection(self, name: str) -> dict:
        return self.context.document_store._collections.get(name, {})

    def _referenced_artifacts(self) -> dict[str, str]:
        """artifact id -> the document that references it."""
        referenced: dict[str, str] = {}
        for set_id, doc in self._collection(SETS_COLLECTION).items():
            artifact = doc.get("params_artifact")
            if artifact is not None:
                referenced[str(artifact)] = set_id
        for model_id, doc in self._collection(MODELS_COLLECTION).items():
            for key in ("params_artifact", "code_artifact"):
                artifact = doc.get(key)
                if artifact is not None:
                    referenced[str(artifact)] = model_id
        for pack_id, doc in self._collection(PACKS_COLLECTION).items():
            referenced[str(doc["artifact"])] = pack_id
        return referenced

    def _expected_chunk_refs(self) -> dict[str, int]:
        """Reference counts implied by the surviving chunked sets.

        Mirrors the ingest accounting: every (model, layer) occurrence of
        a digest is one reference, duplicates within a set included.
        """
        expected: dict[str, int] = {}
        for set_id, doc in self._collection(SETS_COLLECTION).items():
            if doc.get("storage") != "chunked":
                continue
            try:
                matrix = _chunked_digests(self.context, doc, set_id)
            except DocumentNotFoundError:
                continue  # reported as missing-chunk-digests by verify
            for row in matrix:
                for digest in row:
                    expected[digest] = expected.get(digest, 0) + 1
        return expected

    def run(self, deep: bool = False) -> FsckReport:
        """Audit the archive; ``deep=True`` re-hashes every stored byte."""
        report = FsckReport()
        file_store = self.context.file_store
        report.pending_journal = sorted(
            self._collection(JOURNAL_COLLECTION)
        )
        report.sets_checked = len(self._collection(SETS_COLLECTION))

        referenced = self._referenced_artifacts()
        for artifact, owner in sorted(referenced.items()):
            if not file_store.exists(artifact):
                report.missing_artifacts.append(
                    {"set_id": owner, "artifact": artifact}
                )
        report.orphan_artifacts = sorted(
            set(file_store.ids()) - set(referenced)
        )
        report.artifacts_checked = len(referenced)

        if self._collection(PACKS_COLLECTION):
            chunk_store = self.context.chunk_store()
            expected = self._expected_chunk_refs()
            for digest in sorted(set(expected) | {
                d for d in chunk_store._chunks
            }):
                want = expected.get(digest, 0)
                have = chunk_store.references(digest)
                if want != have:
                    report.refcount_mismatches.append(
                        {"digest": digest, "expected": want, "actual": have}
                    )
            report.quarantined_chunks = chunk_store.quarantined_digests()
            report.chunks_checked = len(chunk_store)

        if deep:
            self._deep_scan(report, referenced)
        return report

    def _deep_scan(self, report: FsckReport, referenced: dict[str, str]) -> None:
        file_store = self.context.file_store
        pack_artifacts = {
            str(doc["artifact"]) for doc in self._collection(PACKS_COLLECTION).values()
        }
        for artifact in sorted(referenced):
            # Pack artifacts are verified per chunk below — finer grain,
            # and a single flipped byte blames one chunk, not the pack.
            if artifact in pack_artifacts or not file_store.exists(artifact):
                continue
            if not file_store.verify_artifact(artifact):
                report.corrupt_artifacts.append(artifact)
        if self._collection(PACKS_COLLECTION):
            chunk_store = self.context.chunk_store()
            digests = [
                d for d, c in chunk_store._chunks.items() if not c.quarantined
            ]
            _values, corrupted = chunk_store.fetch_verified(
                digests, workers=self.context.workers, quarantine=False
            )
            report.corrupt_chunks = sorted(corrupted)


# ---------------------------------------------------------------------------
# salvage recovery
# ---------------------------------------------------------------------------

@dataclass
class SalvageReport:
    """Result of a corruption-tolerant recovery of one set.

    ``models`` holds every model that recovered *and verified*; ``failed``
    lists exactly the models that were lost, each with a reason.  For
    deduplicated sets ``corrupt_chunks`` names the damaged digests and
    ``repaired_chunks`` the ones healed from replicas before recovery.
    """

    set_id: str
    approach: str
    num_models: int
    models: "dict[int, OrderedDict]" = field(default_factory=dict)
    failed: list[dict] = field(default_factory=list)
    corrupt_chunks: list[str] = field(default_factory=list)
    repaired_chunks: list[str] = field(default_factory=list)

    @property
    def recovered_indices(self) -> list[int]:
        return sorted(self.models)

    @property
    def failed_indices(self) -> list[int]:
        return sorted(entry["model"] for entry in self.failed)

    @property
    def complete(self) -> bool:
        return not self.failed and len(self.models) == self.num_models


def salvage_recover(context: SaveContext, set_id: str) -> SalvageReport:
    """Recover every intact model of ``set_id``, reporting the rest.

    Dispatches on the set's storage format: chunked sets verify (and
    where possible repair) individual chunks, MMlib sets isolate damage
    to single model artifacts, and artifact-based sets fall back to
    per-model recovery checked against stored hash info when available.
    """
    document = context.document_store._collections.get(
        SETS_COLLECTION, {}
    ).get(set_id)
    if document is None:
        raise DocumentNotFoundError(f"unknown set {set_id!r}")
    approach_name = str(document.get("type"))
    report = SalvageReport(
        set_id=set_id,
        approach=approach_name,
        num_models=int(document.get("num_models", 0)),
    )
    if document.get("storage") == "chunked":
        _salvage_chunked(context, set_id, document, report)
    elif approach_name == "mmlib-base":
        _salvage_mmlib(context, document, report)
    else:
        _salvage_artifact_based(context, set_id, document, approach_name, report)
    return report


def _salvage_chunked(
    context: SaveContext, set_id: str, document: dict, report: SalvageReport
) -> None:
    """Chunk-precise salvage: damage is isolated to (model, layer) slots."""
    schema = StateSchema.from_json(document["schema"])
    dtype = str(document.get("param_dtype", "float32"))
    matrix = _chunked_digests(context, document, set_id)
    chunk_store = context.chunk_store()
    unique = dict.fromkeys(digest for row in matrix for digest in row)
    known = [digest for digest in unique if digest in chunk_store]
    missing = set(unique) - set(known)
    values, corrupted = chunk_store.fetch_verified(
        known, workers=context.workers, quarantine=True
    )
    if corrupted:
        repaired = _repair_from_replicas(context, sorted(corrupted))
        if repaired:
            healed, still_bad = chunk_store.fetch_verified(
                repaired, workers=context.workers, quarantine=True
            )
            values.update(healed)
            corrupted -= set(healed)
            corrupted |= still_bad
            report.repaired_chunks = sorted(healed)
    report.corrupt_chunks = sorted(corrupted)

    entries = schema.entries
    for index, row in enumerate(matrix):
        bad = [digest for digest in row if digest not in values]
        if bad:
            kinds = "missing" if all(d in missing for d in bad) else "corrupt"
            report.failed.append(
                {
                    "model": index,
                    "reason": f"{len(bad)} {kinds} chunk(s)",
                    "digests": sorted({d[:16] for d in bad}),
                }
            )
            continue
        state: "OrderedDict[str, Any]" = OrderedDict()
        for layer, (name, shape) in enumerate(entries):
            state[name] = _layer_from_bytes(values[row[layer]], shape, dtype)
        report.models[index] = state


def _repair_from_replicas(context: SaveContext, digests: list[str]) -> list[str]:
    """Heal corrupt chunks from full artifacts storing the same bytes.

    Any non-chunked full float32 set whose hash info lists one of the
    damaged digests holds a byte-identical replica of that layer at a
    computable offset; the slice is range-read, verified against the
    digest, and fed to :meth:`ChunkStore.repair`.  Returns the digests
    actually repaired.
    """
    remaining = set(digests)
    repaired: list[str] = []
    if not remaining:
        return repaired
    store = context.document_store
    chunk_store = context.chunk_store()
    sets = store._collections.get(SETS_COLLECTION, {})
    hash_docs = store._collections.get(HASH_COLLECTION, {})
    for other_id in sorted(sets):
        if not remaining:
            break
        doc = sets[other_id]
        if doc.get("storage") == "chunked":
            continue  # same chunk store — same corrupt bytes
        if doc.get("kind", "full") != "full" or "schema" not in doc:
            continue
        if doc.get("param_dtype", "float32") != "float32":
            continue
        hash_doc = hash_docs.get(other_id)
        if hash_doc is None:
            continue
        artifact = doc.get("params_artifact")
        if artifact is None or not context.file_store.exists(artifact):
            continue
        schema = StateSchema.from_json(doc["schema"])
        nbytes = _layer_nbytes(schema)
        offsets = [0] * len(nbytes)
        for layer in range(1, len(nbytes)):
            offsets[layer] = offsets[layer - 1] + nbytes[layer - 1]
        for model_index, row in enumerate(hash_doc["hashes"]):
            for layer, digest in enumerate(row):
                if digest not in remaining:
                    continue
                try:
                    data = context.file_store.get_range(
                        artifact,
                        offset=model_index * schema.num_bytes + offsets[layer],
                        length=nbytes[layer],
                    )
                except Exception:
                    continue  # replica itself unreadable — keep looking
                if hash_bytes(data) != digest:
                    continue  # replica damaged too
                chunk_store.repair(digest, data)
                remaining.discard(digest)
                repaired.append(digest)
    return repaired


def _salvage_mmlib(
    context: SaveContext, document: dict, report: SalvageReport
) -> None:
    """Per-model salvage: MMlib's one-artifact-per-model layout isolates
    damage to individual models by construction."""
    store = context.document_store
    file_store = context.file_store
    for index, model_id in enumerate(document.get("model_ids", [])):
        model_doc = store._collections.get(MODELS_COLLECTION, {}).get(model_id)
        if model_doc is None:
            report.failed.append(
                {"model": index, "reason": f"model document {model_id!r} missing"}
            )
            continue
        artifact = model_doc.get("params_artifact")
        if artifact is None or not file_store.exists(artifact):
            report.failed.append(
                {"model": index, "reason": "parameter artifact missing"}
            )
            continue
        if not file_store.verify_artifact(artifact):
            report.failed.append(
                {
                    "model": index,
                    "reason": "parameter artifact failed checksum verification",
                }
            )
            continue
        try:
            payload = file_store.get(artifact)
            report.models[index] = deserialize_state_dict(payload)
        except Exception as exc:
            report.failed.append({"model": index, "reason": str(exc)})


def _salvage_artifact_based(
    context: SaveContext,
    set_id: str,
    document: dict,
    approach_name: str,
    report: SalvageReport,
) -> None:
    """Salvage for full/delta artifact sets (baseline, update, …).

    Models are recovered one at a time so a failure (torn artifact,
    broken chain link) only loses the models it actually touches.  Sets
    with stored hash info (Update) verify every recovered model layer by
    layer — precise corruption attribution; sets without it fall back to
    the whole-artifact checksum, which can only vouch for all-or-nothing.
    """
    from repro.core.manager import APPROACHES

    approach = APPROACHES[approach_name](context)
    num_models = int(document.get("num_models", 0))
    hash_doc = context.document_store._collections.get(HASH_COLLECTION, {}).get(
        set_id
    )

    if hash_doc is None:
        # No per-model hashes: the artifact checksum is the only oracle.
        artifact = document.get("params_artifact")
        if artifact is not None and context.file_store.exists(artifact):
            if not context.file_store.verify_artifact(artifact):
                report.failed = [
                    {
                        "model": index,
                        "reason": "parameter artifact failed checksum "
                        "verification and the set stores no per-model "
                        "hashes to isolate the damage",
                    }
                    for index in range(num_models)
                ]
                return

    layer_names = None
    if hash_doc is not None:
        layer_names = list(hash_doc.get("layers", []))
    for index in range(num_models):
        try:
            state = approach.recover_model(set_id, index)
        except Exception as exc:
            report.failed.append({"model": index, "reason": str(exc)})
            continue
        if hash_doc is not None:
            names = layer_names or list(state)
            recomputed = [hash_array(state[name], length=64) for name in names]
            if recomputed != list(hash_doc["hashes"][index]):
                report.failed.append(
                    {
                        "model": index,
                        "reason": "recovered parameters do not match the "
                        "stored per-layer hash info",
                    }
                )
                continue
        report.models[index] = state
