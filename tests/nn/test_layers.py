"""Tests for trainable/structural layers, including numerical grad checks."""

import numpy as np
import pytest

from repro.nn import AvgPool2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d


def numerical_gradient(fn, array, eps=1e-3):
    """Central-difference gradient of scalar ``fn`` w.r.t. ``array``."""
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn()
        flat[i] = original - eps
        minus = fn()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestLinear:
    def test_forward_matches_manual(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3)).astype(np.float32)
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(x), expected, atol=1e-6)

    def test_forward_without_bias(self, rng):
        layer = Linear(3, 2, bias=False, rng=rng)
        assert list(dict(layer.named_parameters())) == ["weight"]
        x = rng.normal(size=(4, 3)).astype(np.float32)
        assert np.allclose(layer(x), x @ layer.weight.data.T, atol=1e-6)

    def test_rejects_bad_input_shape(self, rng):
        layer = Linear(3, 2, rng=rng)
        with pytest.raises(ValueError):
            layer(np.zeros((4, 5), dtype=np.float32))
        with pytest.raises(ValueError):
            layer(np.zeros((3,), dtype=np.float32))

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 2)
        with pytest.raises(ValueError):
            Linear(2, -1)

    def test_backward_before_forward_raises(self):
        layer = Linear(2, 2)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2), dtype=np.float32))

    def test_weight_gradient_matches_numerical(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(5, 3)).astype(np.float32)

        def loss():
            return float(np.sum(layer(x) ** 2))

        out = layer(x)
        layer.zero_grad()
        layer.backward(2.0 * out)
        numeric = numerical_gradient(loss, layer.weight.data)
        assert np.allclose(layer.weight.grad, numeric, rtol=1e-2, atol=1e-2)

    def test_input_gradient_matches_numerical(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(5, 3)).astype(np.float32)

        def loss():
            return float(np.sum(layer(x) ** 2))

        out = layer(x)
        layer.zero_grad()
        grad_in = layer.backward(2.0 * out)
        numeric = numerical_gradient(loss, x)
        assert np.allclose(grad_in, numeric, rtol=1e-2, atol=1e-2)

    def test_gradients_accumulate_across_backwards(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(2, 3)).astype(np.float32)
        out = layer(x)
        layer.zero_grad()
        layer.backward(np.ones_like(out))
        first = layer.weight.grad.copy()
        layer(x)
        layer.backward(np.ones_like(out))
        assert np.allclose(layer.weight.grad, 2 * first, atol=1e-6)


class TestConv2d:
    def test_output_shape_with_padding(self, rng):
        layer = Conv2d(3, 5, kernel_size=3, padding=1, rng=rng)
        out = layer(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        assert out.shape == (2, 5, 8, 8)

    def test_output_shape_with_stride(self, rng):
        layer = Conv2d(1, 2, kernel_size=3, stride=2, rng=rng)
        out = layer(rng.normal(size=(1, 1, 9, 9)).astype(np.float32))
        assert out.shape == (1, 2, 4, 4)

    def test_matches_direct_convolution(self, rng):
        layer = Conv2d(2, 3, kernel_size=3, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float32)
        out = layer(x)
        # Direct computation at one output position.
        patch = x[0, :, 1:4, 2:5]
        expected = np.sum(layer.weight.data[1] * patch) + layer.bias.data[1]
        assert np.isclose(out[0, 1, 1, 2], expected, atol=1e-5)

    def test_rejects_wrong_channel_count(self, rng):
        layer = Conv2d(3, 4, kernel_size=3, rng=rng)
        with pytest.raises(ValueError):
            layer(np.zeros((1, 2, 8, 8), dtype=np.float32))

    def test_rejects_invalid_geometry(self):
        with pytest.raises(ValueError):
            Conv2d(1, 1, kernel_size=0)
        with pytest.raises(ValueError):
            Conv2d(1, 1, kernel_size=3, stride=0)
        with pytest.raises(ValueError):
            Conv2d(1, 1, kernel_size=3, padding=-1)

    def test_backward_before_forward_raises(self):
        layer = Conv2d(1, 1, kernel_size=3)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1, 1, 1), dtype=np.float32))

    def test_weight_gradient_matches_numerical(self, rng):
        layer = Conv2d(2, 2, kernel_size=3, padding=1, rng=rng)
        x = rng.normal(size=(2, 2, 4, 4)).astype(np.float32)

        def loss():
            return float(np.sum(layer(x) ** 2))

        out = layer(x)
        layer.zero_grad()
        layer.backward(2.0 * out)
        numeric = numerical_gradient(loss, layer.weight.data)
        assert np.allclose(layer.weight.grad, numeric, rtol=2e-2, atol=2e-2)

    def test_input_gradient_matches_numerical(self, rng):
        layer = Conv2d(1, 2, kernel_size=3, rng=rng)
        x = rng.normal(size=(1, 1, 5, 5)).astype(np.float32)

        def loss():
            return float(np.sum(layer(x) ** 2))

        out = layer(x)
        layer.zero_grad()
        grad_in = layer.backward(2.0 * out)
        numeric = numerical_gradient(loss, x)
        assert np.allclose(grad_in, numeric, rtol=2e-2, atol=2e-2)

    def test_bias_gradient(self, rng):
        layer = Conv2d(1, 2, kernel_size=3, rng=rng)
        x = rng.normal(size=(2, 1, 5, 5)).astype(np.float32)
        out = layer(x)
        layer.zero_grad()
        layer.backward(np.ones_like(out))
        # d(sum)/d(bias_c) = number of output positions times batch.
        positions = out.shape[0] * out.shape[2] * out.shape[3]
        assert np.allclose(layer.bias.grad, positions, atol=1e-4)


class TestPooling:
    def test_maxpool_selects_maximum(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = MaxPool2d(2)(x)
        assert out.shape == (1, 1, 2, 2)
        assert np.array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_argmax(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        pool = MaxPool2d(2)
        out = pool(x)
        grad = pool.backward(np.ones_like(out))
        expected = np.zeros((4, 4), dtype=np.float32)
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        assert np.array_equal(grad[0, 0], expected)

    def test_avgpool_averages(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = AvgPool2d(2)(x)
        assert np.allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_backward_spreads_uniformly(self):
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        pool = AvgPool2d(2)
        out = pool(x)
        grad = pool.backward(np.full_like(out, 4.0))
        assert np.allclose(grad, 1.0)

    def test_pool_rejects_bad_kernel(self):
        with pytest.raises(ValueError):
            MaxPool2d(0)
        with pytest.raises(ValueError):
            AvgPool2d(-1)

    def test_pool_backward_before_forward_raises(self):
        for pool in (MaxPool2d(2), AvgPool2d(2)):
            with pytest.raises(RuntimeError):
                pool.backward(np.zeros((1, 1, 1, 1), dtype=np.float32))

    def test_maxpool_gradient_matches_numerical(self, rng):
        pool = MaxPool2d(2)
        x = rng.normal(size=(1, 2, 4, 4)).astype(np.float32)

        def loss():
            return float(np.sum(pool(x) ** 2))

        out = pool(x)
        grad = pool.backward(2.0 * out)
        numeric = numerical_gradient(loss, x)
        assert np.allclose(grad, numeric, rtol=2e-2, atol=2e-2)


class TestFlattenDropout:
    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 5)).astype(np.float32)
        out = layer(x)
        assert out.shape == (2, 60)
        grad = layer.backward(out)
        assert grad.shape == x.shape
        assert np.array_equal(grad, x)

    def test_flatten_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Flatten().backward(np.zeros((1, 2)))

    def test_dropout_identity_in_eval_mode(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.normal(size=(8, 8)).astype(np.float32)
        assert np.array_equal(layer(x), x)

    def test_dropout_zero_p_is_identity(self, rng):
        layer = Dropout(0.0, rng=rng)
        x = rng.normal(size=(8, 8)).astype(np.float32)
        assert np.array_equal(layer(x), x)

    def test_dropout_scales_survivors(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((1000, 1), dtype=np.float32)
        out = layer(x)
        survivors = out[out != 0]
        assert np.allclose(survivors, 2.0)
        # Expectation preserved within sampling tolerance.
        assert abs(out.mean() - 1.0) < 0.1

    def test_dropout_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 1), dtype=np.float32)
        out = layer(x)
        grad = layer.backward(np.ones_like(out))
        assert np.array_equal(grad != 0, out != 0)

    def test_dropout_rejects_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)
