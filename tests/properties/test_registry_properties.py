"""Property tests for the registry: diff-vs-oracle and rebuild idempotence.

Two invariants the catalog must hold regardless of approach or shape:

* ``Registry.diff`` is **byte-consistent with the ground-truth oracle**:
  recover both sets and compare every layer's bytes — the diff computed
  from stored hash metadata (or recover-and-hash fallback) must report
  exactly the layers whose recovered bytes differ.  This is what makes
  metadata-only diffs trustworthy.
* ``Registry.rebuild`` is **idempotent**: rebuilding twice leaves the
  catalog byte-identical to rebuilding once, on plain archives and on
  sharded fleets.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ArchiveConfig
from repro.core.manager import MultiModelManager
from repro.core.model_set import ModelSet
from repro.core.save_info import SetMetadata
from repro.fleet import FleetManager
from repro.registry import REGISTRY_COLLECTIONS

NUM_MODELS = 3
NUM_LAYERS = len(ModelSet.build("FFNN-48", num_models=1, seed=0).schema.layer_names())

#: Approaches whose save_derived needs only (models, base_set_id).
DERIVABLE = ["baseline", "update", "mmlib-base", "pas-delta", "baseline-fp16"]

perturbations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NUM_MODELS - 1),
        st.integers(min_value=0, max_value=NUM_LAYERS - 1),
    ),
    min_size=0,
    max_size=4,
    unique=True,
)


def apply_perturbations(models, plan):
    derived = models.copy()
    names = models.schema.layer_names()
    for model_index, layer_index in plan:
        state = derived.state(model_index)
        name = names[layer_index]
        state[name] = (state[name] + 0.25).astype(state[name].dtype)
    return derived


def oracle_diff(set_a, set_b):
    """Ground truth: recover both sets and compare layer bytes."""
    names = set_a.schema.layer_names()
    expected = {}
    for index in range(len(set_a)):
        changed = tuple(
            name
            for name in names
            if not np.array_equal(set_a.state(index)[name], set_b.state(index)[name])
        )
        if changed:
            expected[index] = changed
    return expected


def registry_documents(registry):
    """Raw catalog contents, for byte-level idempotence comparison."""
    store = registry._store
    return {
        collection: {
            doc_id: store._read_raw(collection, doc_id)
            for doc_id in store.collection_ids(collection)
        }
        for collection in REGISTRY_COLLECTIONS
    }


class TestDiffOracle:
    @given(
        approach=st.sampled_from(DERIVABLE),
        plan=perturbations,
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_diff_matches_recover_and_compare(self, approach, plan):
        manager = MultiModelManager.with_approach(approach)
        models = ModelSet.build("FFNN-48", num_models=NUM_MODELS, seed=0)
        base_id = manager.save_set(
            models, metadata=SetMetadata(extra={"family": "prop"})
        )
        derived = apply_perturbations(models, plan)
        derived_id = manager.save_set(derived, base_set_id=base_id)

        diff = manager.context.registry.diff(base_id, derived_id)
        reported = {
            entry.model_index: entry.changed_layers for entry in diff.changed
        }
        expected = oracle_diff(
            manager.recover_set(base_id), manager.recover_set(derived_id)
        )
        assert reported == expected

    @given(plan=perturbations)
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_update_diff_never_reads_parameter_bytes(self, plan):
        manager = MultiModelManager.with_approach("update")
        models = ModelSet.build("FFNN-48", num_models=NUM_MODELS, seed=0)
        base_id = manager.save_set(
            models, metadata=SetMetadata(extra={"family": "prop"})
        )
        derived_id = manager.save_set(
            apply_perturbations(models, plan), base_set_id=base_id
        )
        before = manager.context.file_store.stats.snapshot()
        diff = manager.context.registry.diff(base_id, derived_id)
        delta = manager.context.file_store.stats.delta_since(before)
        assert delta.reads == 0 and delta.bytes_read == 0
        assert diff.source == "hash-info"

    @given(plan=perturbations)
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_dedup_archive_diff_consistent(self, plan):
        manager = MultiModelManager.with_approach(
            "update", ArchiveConfig(dedup=True)
        )
        models = ModelSet.build("FFNN-48", num_models=NUM_MODELS, seed=0)
        base_id = manager.save_set(
            models, metadata=SetMetadata(extra={"family": "prop"})
        )
        derived = apply_perturbations(models, plan)
        derived_id = manager.save_set(derived, base_set_id=base_id)
        diff = manager.context.registry.diff(base_id, derived_id)
        reported = {
            entry.model_index: entry.changed_layers for entry in diff.changed
        }
        assert reported == oracle_diff(
            manager.recover_set(base_id), manager.recover_set(derived_id)
        )


class TestRebuildIdempotence:
    @given(
        num_saves=st.integers(min_value=1, max_value=4),
        explicit_family=st.booleans(),
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_plain_rebuild_twice_equals_once(self, num_saves, explicit_family):
        manager = MultiModelManager.with_approach("update")
        models = ModelSet.build("FFNN-48", num_models=NUM_MODELS, seed=0)
        metadata = (
            SetMetadata(extra={"family": "prop"}) if explicit_family else None
        )
        base_id = manager.save_set(models, metadata=metadata)
        previous = base_id
        for step in range(num_saves - 1):
            models = apply_perturbations(models, [(step % NUM_MODELS, 0)])
            previous = manager.save_set(models, base_set_id=previous)
        registry = manager.context.registry
        registry.rebuild([(None, manager.context)])
        once = registry_documents(registry)
        registry.rebuild([(None, manager.context)])
        assert registry_documents(registry) == once

    @given(num_saves=st.integers(min_value=1, max_value=3))
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_fleet_rebuild_twice_equals_once(self, num_saves, tmp_path_factory):
        root = tmp_path_factory.mktemp("fleet-rebuild") / "fleet"
        fleet = FleetManager.open(root, "update", ArchiveConfig(shards=2))
        models = ModelSet.build("FFNN-48", num_models=NUM_MODELS, seed=0)
        previous = fleet.save_set(
            models, metadata=SetMetadata(extra={"family": "prop"})
        )
        for step in range(num_saves - 1):
            models = apply_perturbations(models, [(step % NUM_MODELS, 1)])
            previous = fleet.save_set(models, base_set_id=previous)
        count = fleet.rebuild_registry()
        assert count == num_saves
        once = registry_documents(fleet.registry)
        assert fleet.rebuild_registry() == count
        assert registry_documents(fleet.registry) == once
        # The rebuilt catalog still answers family recovery correctly.
        assert fleet.registry.resolve("prop") == previous
