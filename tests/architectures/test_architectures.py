"""Tests for the model architectures and the registry."""

import numpy as np
import pytest

from repro.architectures import (
    CIFAR_NUM_PARAMETERS,
    FFNN48_NUM_PARAMETERS,
    FFNN69_NUM_PARAMETERS,
    build_cifar_cnn,
    build_ffnn,
    build_ffnn48,
    build_ffnn69,
    get_architecture,
    list_architectures,
    register_architecture,
)
from repro.architectures.cifar import CIFAR_INPUT_SHAPE, CIFAR_NUM_CLASSES
from repro.architectures.ffnn import FFNN_INPUT_FEATURES, FFNN_OUTPUT_FEATURES
from repro.errors import UnknownArchitectureError


class TestFFNN:
    def test_ffnn48_parameter_count_matches_paper(self):
        assert build_ffnn48().num_parameters() == FFNN48_NUM_PARAMETERS == 4_993

    def test_ffnn69_parameter_count_matches_paper(self):
        assert build_ffnn69().num_parameters() == FFNN69_NUM_PARAMETERS == 10_075

    def test_identical_layer_structure_except_widths(self):
        # "FFNN-69 is, except for the number of parameters per layer,
        # identical to FFNN-48" (§4.1).
        names48 = build_ffnn48().layer_names()
        names69 = build_ffnn69().layer_names()
        assert names48 == names69

    def test_forward_shape(self, rng):
        model = build_ffnn48(rng=rng)
        out = model(rng.normal(size=(7, FFNN_INPUT_FEATURES)).astype(np.float32))
        assert out.shape == (7, FFNN_OUTPUT_FEATURES)

    def test_seeded_construction_is_deterministic(self):
        a = build_ffnn48(rng=np.random.default_rng(3)).state_dict()
        b = build_ffnn48(rng=np.random.default_rng(3)).state_dict()
        assert all(np.array_equal(a[k], b[k]) for k in a)

    def test_different_seeds_give_different_models(self):
        a = build_ffnn48(rng=np.random.default_rng(1)).state_dict()
        b = build_ffnn48(rng=np.random.default_rng(2)).state_dict()
        assert any(not np.array_equal(a[k], b[k]) for k in a)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            build_ffnn(0)

    def test_trainable_end_to_end(self, rng):
        from repro.nn import MSELoss, SGD

        model = build_ffnn48(rng=rng)
        x = rng.normal(size=(32, 4)).astype(np.float32)
        y = rng.normal(size=(32, 1)).astype(np.float32)
        loss = MSELoss()
        optimizer = SGD(model, lr=0.05, momentum=0.9)
        first = loss(model(x), y)
        for _ in range(50):
            value = loss(model(x), y)
            model.zero_grad()
            model.backward(loss.backward())
            optimizer.step()
        assert value < first * 0.5


class TestCifarCNN:
    def test_parameter_count_matches_paper(self):
        assert build_cifar_cnn().num_parameters() == CIFAR_NUM_PARAMETERS == 6_882

    def test_forward_shape(self, rng):
        model = build_cifar_cnn(rng=rng)
        out = model(rng.normal(size=(3, *CIFAR_INPUT_SHAPE)).astype(np.float32))
        assert out.shape == (3, CIFAR_NUM_CLASSES)

    def test_backward_runs(self, rng):
        model = build_cifar_cnn(rng=rng)
        out = model(rng.normal(size=(2, *CIFAR_INPUT_SHAPE)).astype(np.float32))
        grad = model.backward(np.ones_like(out))
        assert grad.shape == (2, *CIFAR_INPUT_SHAPE)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"FFNN-48", "FFNN-69", "CIFAR"} <= set(list_architectures())

    def test_get_returns_spec_with_counts(self):
        spec = get_architecture("FFNN-48")
        assert spec.num_parameters == 4_993
        assert "Sequential" in spec.source_code

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownArchitectureError):
            get_architecture("resnet-152")

    def test_build_accepts_seed(self):
        spec = get_architecture("CIFAR")
        a = spec.build(rng=np.random.default_rng(0)).state_dict()
        b = spec.build(rng=np.random.default_rng(0)).state_dict()
        assert all(np.array_equal(a[k], b[k]) for k in a)

    def test_register_custom_architecture(self):
        from repro.nn import Linear, Sequential

        def build_tiny(rng=None):
            return Sequential(Linear(2, 1, rng=rng))

        register_architecture("tiny-test", build_tiny, "test-only")
        spec = get_architecture("tiny-test")
        assert spec.num_parameters == 3
        assert spec.description == "test-only"
