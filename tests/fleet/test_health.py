"""Shard health: the breaker state machine and fleet-level routing.

Covers the :class:`FleetHealthTracker` transitions in isolation, then
the fleet behaviors built on top: typed save/read refusals, stale
serving through an outage, DOWN-at-open pinning for missing/unreadable
shard directories, in-process breaker recovery after a revive, and the
health gauge / transition observability.
"""

from __future__ import annotations

import pytest

from repro.config import (
    ArchiveConfig,
    FleetHealthConfig,
    ObservabilityConfig,
    ServingConfig,
)
from repro.errors import (
    ConfigError,
    ReplicaUnavailableError,
    ShardUnavailableError,
)
from repro.fleet import FleetManager
from repro.fleet.health import DEGRADED, DOWN, HEALTHY, FleetHealthTracker
from repro.observability.metrics import global_registry
from repro.storage.faults import FaultInjector, inject_faults


def health_config(**overrides) -> FleetHealthConfig:
    """Small thresholds so tests trip the breaker in a handful of ops."""
    settings = dict(
        enabled=True,
        degraded_after=1,
        down_after=2,
        probe_interval_ops=3,
        backpressure="shed",
        high_watermark=64,
        low_watermark=8,
        flush_retries=0,
        retry_base_s=0.01,
    )
    settings.update(overrides)
    return FleetHealthConfig(**settings)


def make_fleet(
    shards=1, health=None, metrics=False, tracing=False, serving=False
) -> FleetManager:
    return FleetManager.with_approach(
        "update",
        ArchiveConfig(
            shards=shards,
            health=health if health is not None else health_config(),
            observability=ObservabilityConfig(metrics=metrics, tracing=tracing),
            serving=ServingConfig(enabled=serving),
        ),
    )


def boom() -> ReplicaUnavailableError:
    return ReplicaUnavailableError("injected replica outage")


class TestTrackerStateMachine:
    def test_failure_ladder_then_success_resets(self):
        tracker = FleetHealthTracker(2, health_config(down_after=3))
        assert tracker.state(0) == HEALTHY
        tracker.record_failure(0, boom())
        assert tracker.state(0) == DEGRADED
        tracker.record_failure(0, boom())
        assert tracker.state(0) == DEGRADED  # not yet at down_after
        tracker.record_failure(0, boom())
        assert tracker.state(0) == DOWN
        assert "ReplicaUnavailableError" in tracker.reason(0)
        # The other shard is an independent failure domain.
        assert tracker.state(1) == HEALTHY
        tracker.record_success(0)
        assert tracker.state(0) == HEALTHY
        assert tracker.reason(0) == ""
        snap = tracker.snapshot()[0]
        assert snap["consecutive_failures"] == 0
        assert snap["breaker_trips"] == 1
        assert snap["transitions"] == 3  # healthy->degraded->down->healthy

    def test_success_resets_the_failure_count_not_just_state(self):
        tracker = FleetHealthTracker(1, health_config(down_after=2))
        tracker.record_failure(0, boom())
        tracker.record_success(0)
        tracker.record_failure(0, boom())
        # Without the reset this second failure would have tripped DOWN.
        assert tracker.state(0) == DEGRADED

    def test_allow_probes_every_interval_while_down(self):
        tracker = FleetHealthTracker(1, health_config(probe_interval_ops=3))
        tracker.record_failure(0, boom())
        tracker.record_failure(0, boom())
        assert tracker.is_down(0)
        decisions = [tracker.allow(0) for _ in range(6)]
        assert decisions == [False, False, True, False, False, True]
        snap = tracker.snapshot()[0]
        assert snap["probes"] == 2
        assert snap["refused"] == 6  # probes are refusals let through

    def test_failed_probe_restarts_the_window(self):
        tracker = FleetHealthTracker(1, health_config(probe_interval_ops=3))
        tracker.record_failure(0, boom())
        tracker.record_failure(0, boom())
        assert [tracker.allow(0) for _ in range(3)] == [False, False, True]
        tracker.record_failure(0, boom())  # the probe itself failed
        assert tracker.is_down(0)
        # A full interval must elapse again before the next probe.
        assert [tracker.allow(0) for _ in range(3)] == [False, False, True]

    def test_probe_success_closes_the_breaker(self):
        tracker = FleetHealthTracker(1, health_config(probe_interval_ops=1))
        tracker.record_failure(0, boom())
        tracker.record_failure(0, boom())
        assert tracker.allow(0)  # interval 1: first refusal is the probe
        tracker.record_success(0)
        assert tracker.state(0) == HEALTHY
        assert tracker.allow(0)

    def test_pinned_shard_never_probes(self):
        tracker = FleetHealthTracker(1, health_config(probe_interval_ops=2))
        tracker.pin_down(0, "shard directory missing at open")
        assert not any(tracker.allow(0) for _ in range(20))
        snap = tracker.snapshot()[0]
        assert snap["pinned"] is True
        assert snap["probes"] == 0
        assert snap["refused"] == 20
        # Only an actual success (a reopen-restored shard) unpins.
        tracker.record_success(0)
        assert tracker.state(0) == HEALTHY
        assert tracker.snapshot()[0]["pinned"] is False

    def test_gate_read_refuses_down_but_never_probes(self):
        tracker = FleetHealthTracker(1, health_config(probe_interval_ops=2))
        assert tracker.gate_read(0)
        tracker.record_failure(0, boom())
        tracker.record_failure(0, boom())
        assert not any(tracker.gate_read(0) for _ in range(10))
        assert tracker.snapshot()[0]["probes"] == 0
        # Read refusals do not advance the save-side probe window either:
        # the next allow() still needs its full interval.
        assert [tracker.allow(0) for _ in range(2)] == [False, True]

    def test_read_failures_do_not_deepen_state(self):
        tracker = FleetHealthTracker(1, health_config(down_after=2))
        tracker.record_failure(0, boom(), saving=False)
        tracker.record_failure(0, boom(), saving=False)
        assert tracker.state(0) == HEALTHY

    def test_disabled_tracker_is_inert(self):
        tracker = FleetHealthTracker(1, health_config(enabled=False))
        for _ in range(10):
            tracker.record_failure(0, boom())
        assert tracker.state(0) == HEALTHY
        assert tracker.allow(0) and tracker.gate_read(0)

    def test_transition_callback_fires_with_context(self):
        seen = []
        tracker = FleetHealthTracker(
            1,
            health_config(down_after=2),
            on_transition=lambda *args: seen.append(args),
        )
        tracker.record_failure(0, boom())
        tracker.record_failure(0, boom())
        tracker.record_success(0)
        assert [(old, new) for _, old, new, _ in seen] == [
            (HEALTHY, DEGRADED),
            (DEGRADED, DOWN),
            (DOWN, HEALTHY),
        ]
        assert seen[0][0] == 0  # shard index
        assert "ReplicaUnavailableError" in seen[1][3]


class TestConfigValidation:
    def test_bad_backpressure_policy(self):
        with pytest.raises(ConfigError, match="backpressure"):
            ArchiveConfig(health=FleetHealthConfig(backpressure="drop"))

    def test_watermark_inversion(self):
        with pytest.raises(ConfigError, match="high_watermark"):
            ArchiveConfig(
                health=FleetHealthConfig(high_watermark=4, low_watermark=9)
            )

    def test_down_before_degraded(self):
        with pytest.raises(ConfigError, match="down_after"):
            ArchiveConfig(
                health=FleetHealthConfig(degraded_after=3, down_after=2)
            )


class TestFleetGating:
    def test_down_shard_refuses_saves_with_typed_error(self, tiny_set):
        fleet = make_fleet()
        fleet.save_set(tiny_set)
        fleet.health.pin_down(0, "operator pinned")
        listed = fleet.list_sets()
        with pytest.raises(ShardUnavailableError) as refusal:
            fleet.save_set(tiny_set)
        assert refusal.value.shard == 0
        assert refusal.value.set_id is not None
        # The refused save's optimistic allocation is released: no
        # phantom id shows up in listings.
        assert fleet.list_sets() == listed

    def test_down_shard_refuses_reads_with_typed_error(self, tiny_set):
        fleet = make_fleet()
        set_id = fleet.save_set(tiny_set)
        fleet.health.pin_down(0, "operator pinned")
        with pytest.raises(ShardUnavailableError) as refusal:
            fleet.recover_set(set_id)
        assert refusal.value.shard == 0
        assert refusal.value.set_id == set_id
        with pytest.raises(ShardUnavailableError):
            fleet.recover_model(set_id, 0)

    def test_breaker_trips_on_real_failures_and_recovers_in_process(
        self, tiny_set
    ):
        fleet = make_fleet(
            health=health_config(down_after=2, probe_interval_ops=3)
        )
        base = fleet.save_set(tiny_set)
        injector = inject_faults(
            fleet.shards[0].context,
            FaultInjector(seed=3, down_at=0, down_mode="before"),
        )
        for _ in range(2):
            with pytest.raises(ReplicaUnavailableError):
                fleet.save_set(tiny_set, base_set_id=base)
        assert fleet.health.is_down(0)
        # While DOWN, refusals are typed and never reach the store.
        with pytest.raises(ShardUnavailableError):
            fleet.save_set(tiny_set, base_set_id=base)
        injector.revive()
        # The breaker closes in-process: refusals accumulate until the
        # half-open probe is let through and its save succeeds.
        saved = None
        for _ in range(10):
            try:
                saved = fleet.save_set(tiny_set, base_set_id=base)
            except ShardUnavailableError:
                continue
            break
        assert saved is not None
        assert fleet.health.state(0) == HEALTHY
        snap = fleet.health.snapshot()[0]
        assert snap["breaker_trips"] == 1
        assert snap["probes"] >= 1
        assert fleet.recover_set(saved).equals(tiny_set)

    def test_stale_serving_hit_routes_reads_around_the_outage(self, tiny_set):
        fleet = make_fleet(serving=True)
        warm = fleet.save_set(tiny_set)
        cold = fleet.save_set(tiny_set)
        fleet.recover_set(warm)  # materializes into the tier-1 cache
        fleet.health.pin_down(0, "operator pinned")
        served = fleet.recover_set(warm)
        assert served.equals(tiny_set)
        state = fleet.recover_model(warm, 1)
        for name, array in tiny_set.state(1).items():
            assert (state[name] == array).all()
        counters = fleet.serving_counters()
        assert counters["stale_hits"] >= 2
        # A set never materialized cannot be served stale: typed refusal.
        with pytest.raises(ShardUnavailableError, match="not servable"):
            fleet.recover_set(cold)

    def test_disabled_health_keeps_the_old_behavior(self, tiny_set):
        fleet = make_fleet(health=health_config(enabled=False))
        base = fleet.save_set(tiny_set)
        injector = inject_faults(
            fleet.shards[0].context,
            FaultInjector(seed=3, down_at=0, down_mode="before"),
        )
        for _ in range(4):
            with pytest.raises(ReplicaUnavailableError):
                fleet.save_set(tiny_set, base_set_id=base)
        # No breaker: the raw storage error keeps surfacing, never a
        # ShardUnavailableError, and state stays HEALTHY.
        assert fleet.health.state(0) == HEALTHY
        injector.revive()
        assert fleet.save_set(tiny_set, base_set_id=base)


class TestDownAtOpen:
    def _build_two_shards(self, tmp_path, tiny_set):
        fleet = FleetManager.open(
            tmp_path / "fleet", "update", ArchiveConfig(shards=2)
        )
        ids = [fleet.save_set(tiny_set) for _ in range(8)]
        by_shard = {}
        for set_id in ids:
            by_shard.setdefault(fleet.shard_of(set_id), []).append(set_id)
        assert set(by_shard) == {0, 1}, "need sets on both shards"
        return tmp_path / "fleet", by_shard

    def test_missing_shard_dir_pins_down_at_open(self, tmp_path, tiny_set):
        root, by_shard = self._build_two_shards(tmp_path, tiny_set)
        import shutil

        shutil.rmtree(root / "shard-0")
        reopened = FleetManager.open(root, "update")
        assert reopened.num_shards == 2
        assert reopened.health.is_down(0)
        snap = reopened.health.snapshot()[0]
        assert snap["pinned"] is True
        assert "missing" in snap["reason"]
        # The placeholder never recreates the directory behind the
        # operator's back, and never admits traffic (pinned: no probes).
        for set_id in by_shard[1]:
            assert reopened.recover_set(set_id).equals(tiny_set)
        for _ in range(10):
            with pytest.raises(ShardUnavailableError):
                reopened.save_set(tiny_set)
            break  # initial saves hash fresh ids; only assert when hit
        assert not (root / "shard-0").exists()
        # Sets that lived on the missing shard are gone from listings
        # (placement is rebuilt from shard contents).
        assert sorted(reopened.list_sets()) == sorted(by_shard[1])

    def test_unreadable_shard_dir_pins_down_at_open(self, tmp_path, tiny_set):
        root, by_shard = self._build_two_shards(tmp_path, tiny_set)
        import shutil

        # Replace the documents subtree with a plain file: the shard
        # open fails with a storage/OS error rather than "missing".
        shutil.rmtree(root / "shard-0" / "documents")
        (root / "shard-0" / "documents").write_text("not a directory")
        reopened = FleetManager.open(root, "update")
        assert reopened.health.is_down(0)
        snap = reopened.health.snapshot()[0]
        assert snap["pinned"] is True
        assert "unreadable" in snap["reason"]
        for set_id in by_shard[1]:
            assert reopened.recover_set(set_id).equals(tiny_set)

    def test_fresh_fleet_still_creates_all_shards(self, tmp_path, tiny_set):
        fleet = FleetManager.open(
            tmp_path / "new", "update", ArchiveConfig(shards=3)
        )
        assert [fleet.health.state(i) for i in range(3)] == [HEALTHY] * 3
        for index in range(3):
            assert (tmp_path / "new" / f"shard-{index}").is_dir()


class TestHealthObservability:
    def test_health_gauge_and_transition_counter(self, tiny_set):
        fleet = make_fleet(shards=2, metrics=True)
        fleet.save_set(tiny_set)
        values = global_registry().collect()
        assert values["fleet_shard_0_health"] == 0
        assert values["fleet_shard_1_health"] == 0
        fleet.health.pin_down(1, "operator pinned")
        values = global_registry().collect()
        assert values["fleet_shard_1_health"] == 2
        assert values["fleet_health_transitions_total"] == 1
        fleet.health.record_success(1)
        values = global_registry().collect()
        assert values["fleet_shard_1_health"] == 0
        assert values["fleet_health_transitions_total"] == 2

    def test_transition_records_a_trace_event(self, tiny_set):
        fleet = make_fleet(tracing=True)
        fleet.save_set(tiny_set)
        fleet.health.pin_down(0, "operator pinned")
        markers = [
            root
            for root in fleet.tracer.roots
            if root.name == "health-transition"
        ]
        assert markers, [root.name for root in fleet.tracer.roots]
        (event,) = markers[-1].events
        assert event["name"] == "health-transition"
        assert event["old"] == HEALTHY
        assert event["new"] == DOWN
        assert event["shard"] == 0
