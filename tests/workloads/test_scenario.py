"""Tests for the U1/U3 scenario generator."""

import numpy as np
import pytest

from repro.training.pipeline import TrainingPipeline
from repro.workloads.scenario import MultiModelScenario, ScenarioConfig


@pytest.fixture(scope="module")
def config():
    return ScenarioConfig(
        num_models=20,
        num_update_cycles=2,
        full_update_fraction=0.1,
        partial_update_fraction=0.1,
        seed=0,
    )


@pytest.fixture(scope="module")
def cases(config):
    return list(MultiModelScenario(config).use_cases())


class TestUseCaseSequence:
    def test_names_follow_paper_figure2(self, cases):
        assert [case.name for case in cases] == ["U1", "U3-1", "U3-2"]

    def test_u1_has_no_update_info(self, cases):
        assert cases[0].update_info is None
        assert cases[0].base_index is None

    def test_u3_chains_to_previous_case(self, cases):
        assert cases[1].base_index == 0
        assert cases[2].base_index == 1

    def test_update_counts_match_fractions(self, cases):
        for case in cases[1:]:
            assert len(case.update_info.updates) == 4  # 10% + 10% of 20

    def test_update_info_has_full_and_partial_variants(self, cases):
        info = cases[1].update_info
        assert set(info.pipelines) == {"full", "partial"}
        assert info.pipelines["full"].trainable_layers is None
        assert info.pipelines["partial"].trainable_layers == ("4",)

    def test_scenario_is_deterministic(self, config, cases):
        replay = list(MultiModelScenario(config).use_cases())
        for original, repeated in zip(cases, replay):
            assert original.model_set.equals(repeated.model_set)

    def test_sets_are_independent_objects(self, cases):
        # Mutating a later set must not corrupt an earlier one.
        assert cases[0].model_set is not cases[1].model_set


class TestSyntheticUpdates:
    def test_exactly_planned_models_change(self, cases):
        base, derived = cases[0].model_set, cases[1].model_set
        updated = set(cases[1].update_info.updated_indices)
        for index in range(len(base)):
            changed = any(
                not np.array_equal(base.state(index)[k], derived.state(index)[k])
                for k in base.state(index)
            )
            assert changed == (index in updated)

    def test_partial_updates_touch_only_partial_layers(self, cases, config):
        base, derived = cases[0].model_set, cases[1].model_set
        info = cases[1].update_info
        partial_indices = [
            u.model_index for u in info.updates if u.pipeline_key == "partial"
        ]
        pipeline = TrainingPipeline(info.pipelines["partial"])
        trainable = set(
            pipeline.trainable_parameter_names(base.build_model(partial_indices[0]))
        )
        for index in partial_indices:
            for key in base.state(index):
                changed = not np.array_equal(
                    base.state(index)[key], derived.state(index)[key]
                )
                assert changed == (key in trainable)

    def test_dataset_refs_point_to_cell_and_cycle(self, cases):
        for update in cases[2].update_info.updates:
            assert update.dataset_ref.kind == "battery-cell"
            assert update.dataset_ref.params["cell_index"] == update.model_index
            assert update.dataset_ref.params["update_cycle"] == 2


class TestTrainedUpdates:
    def test_trained_cycle_changes_exactly_planned_models(self, trained_cases):
        base, derived = trained_cases[0].model_set, trained_cases[1].model_set
        updated = set(trained_cases[1].update_info.updated_indices)
        for index in range(len(base)):
            changed = any(
                not np.array_equal(base.state(index)[k], derived.state(index)[k])
                for k in base.state(index)
            )
            assert changed == (index in updated)

    def test_trained_updates_are_replayable(self, trained_cases, tiny_data_config):
        # Re-applying the recorded pipelines to the recorded data must
        # reproduce the scenario's own output — the provenance contract.
        from repro.datasets.registry import default_registry

        registry = default_registry()
        base = trained_cases[0].model_set
        info = trained_cases[1].update_info
        replayed = base.copy()
        for update in info.updates:
            model = replayed.build_model(update.model_index)
            dataset = registry.resolve(update.dataset_ref)
            TrainingPipeline(info.pipelines[update.pipeline_key]).train(
                model, dataset
            )
            replayed.states[update.model_index] = model.state_dict()
        assert replayed.equals(trained_cases[1].model_set)


class TestCustomRefFactory:
    def test_factory_overrides_battery_refs(self):
        from repro.datasets.synthetic_cifar import cifar_dataset_ref

        config = ScenarioConfig(
            num_models=10,
            num_update_cycles=1,
            full_update_fraction=0.2,
            partial_update_fraction=0.0,
            architecture="CIFAR",
            partial_layers=("10",),
            dataset_ref_factory=lambda index, cycle: cifar_dataset_ref(
                num_samples=16, seed=index + cycle
            ),
        )
        cases = list(MultiModelScenario(config).use_cases())
        for update in cases[1].update_info.updates:
            assert update.dataset_ref.kind == "synthetic-cifar"
