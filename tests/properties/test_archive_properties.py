"""Property-based tests over archive operations: retention, migration,
and lineage invariants under randomized histories."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.lineage import LineageGraph
from repro.core.manager import MultiModelManager
from repro.core.migration import migrate_archive
from repro.core.model_set import ModelSet
from repro.core.retention import RetentionManager
from repro.core.verify import ArchiveVerifier
from repro.training.seeds import derive_seed

#: A history step: (branch_from_offset_back, model_to_change, layer_index).
history_steps = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=6,
)


def build_history(manager, steps, seed):
    """Save a randomized (possibly branching) history; returns id->set."""
    base = ModelSet.build("FFNN-48", num_models=5, seed=0)
    saved = {manager.save_set(base): base}
    order = [next(iter(saved))]
    rng = np.random.default_rng(derive_seed("archive-prop", seed))
    layer_names = base.schema.layer_names()
    for back, model_index, layer_index in steps:
        parent_id = order[max(0, len(order) - back)]
        derived = saved[parent_id].copy()
        name = layer_names[layer_index]
        state = derived.state(model_index)
        state[name] = (
            state[name] + rng.normal(0, 0.05, size=state[name].shape)
        ).astype(np.float32)
        new_id = manager.save_set(derived, base_set_id=parent_id)
        saved[new_id] = derived
        order.append(new_id)
    return saved, order


class TestArchiveProperties:
    @given(steps=history_steps, seed=st.integers(min_value=0, max_value=50))
    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_random_branching_histories_always_recover(self, steps, seed):
        manager = MultiModelManager.with_approach("update")
        saved, _order = build_history(manager, steps, seed)
        for set_id, expected in saved.items():
            assert manager.recover_set(set_id).equals(expected)
        assert ArchiveVerifier(manager.context).verify_all(deep=True).ok

    @given(
        steps=history_steps,
        seed=st.integers(min_value=0, max_value=50),
        keep_count=st.integers(min_value=1, max_value=3),
    )
    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_gc_never_breaks_kept_sets(self, steps, seed, keep_count):
        """After any keep_last policy, every surviving set still recovers
        bit-exactly and the archive verifies clean."""
        manager = MultiModelManager.with_approach("update")
        saved, order = build_history(manager, steps, seed)
        keep_count = min(keep_count, len(order))
        RetentionManager(manager.context).keep_last(keep_count)
        survivors = manager.list_sets()
        assert set(order[-keep_count:]) <= set(survivors)
        for set_id in survivors:
            assert manager.recover_set(set_id).equals(saved[set_id])
        assert ArchiveVerifier(manager.context).verify_all(deep=True).ok

    @given(steps=history_steps, seed=st.integers(min_value=0, max_value=50))
    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_migration_preserves_every_set(self, steps, seed):
        source = MultiModelManager.with_approach("baseline")
        saved, _order = build_history(source, steps, seed)
        target = MultiModelManager.with_approach("update")
        report = migrate_archive(source.context, target)
        assert set(report.id_map) == set(saved)
        for old_id, expected in saved.items():
            assert target.recover_set(report.id_map[old_id]).equals(expected)

    @given(steps=history_steps, seed=st.integers(min_value=0, max_value=50))
    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_lineage_chain_always_ends_in_full_snapshot(self, steps, seed):
        manager = MultiModelManager.with_approach("update")
        _saved, order = build_history(manager, steps, seed)
        lineage = LineageGraph.from_context(manager.context)
        for set_id in order:
            chain = lineage.recovery_chain(set_id)
            assert lineage.node_info(chain[0])["kind"] == "full"
            assert chain[-1] == set_id

    @given(
        steps=history_steps,
        seed=st.integers(min_value=0, max_value=50),
        model_index=st.integers(min_value=0, max_value=4),
    )
    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_single_model_recovery_matches_full_recovery(
        self, steps, seed, model_index
    ):
        manager = MultiModelManager.with_approach("update")
        saved, order = build_history(manager, steps, seed)
        last = order[-1]
        single = manager.recover_model(last, model_index)
        full = manager.recover_set(last).state(model_index)
        assert all(np.array_equal(single[k], full[k]) for k in full)
