"""MMlib-base: the single-model baseline the paper compares against (§2.2).

MMlib's baseline approach saves *every model individually* as a full
snapshot.  Per model it persists the model architecture, the layer names,
the model code, and the environment information — data that is identical
across all models of a set and therefore saved redundantly (O1), at
roughly 8 KB per model in the paper's measurement — and performs one
document write plus file writes per model (O3).

This re-implementation reproduces those artifacts one-to-one:

* a self-describing parameter blob (layer names embedded) per model,
* a model-code artifact per model,
* a metadata document per model carrying layer names and a detailed
  environment record (package list included, as MMlib's save service
  collects), and
* a minimal set-index document, since MMlib itself has no set concept
  and the caller must track the individual model ids.
"""

from __future__ import annotations

import json
import platform
import sys
from functools import lru_cache

from repro.architectures.registry import get_architecture
from repro.core.approach import SETS_COLLECTION, SaveApproach
from repro.core.model_set import ModelSet
from repro.core.save_info import SetMetadata, UpdateInfo
from repro.errors import RecoveryError
from repro.nn.serialization import deserialize_state_dict, serialize_state_dict

#: Collection holding MMlib-base's one-document-per-model records.
MODELS_COLLECTION = "mmlib_models"


@lru_cache(maxsize=1)
def _detailed_environment() -> dict:
    """The verbose per-model environment record MMlib's save service collects.

    Includes the installed-package inventory, which dominates the record's
    size — this is the bulk of the ~8 KB/model overhead the paper measures
    for MMlib-base.
    """
    try:
        from importlib.metadata import distributions

        packages = sorted(
            f"{dist.metadata['Name']}=={dist.version}"
            for dist in distributions()
            if dist.metadata["Name"]
        )
    except Exception:  # pragma: no cover - environment-introspection fallback
        packages = []
    return {
        "python_version": sys.version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor() or "unknown",
        "packages": packages,
    }


class MMlibBaseApproach(SaveApproach):
    """Per-model full-snapshot saving (the paper's MMlib-base reference)."""

    name = "mmlib-base"

    def _save_one_model(
        self, model_set: ModelSet, index: int, set_id: str, metadata: SetMetadata
    ) -> str:
        model_id = f"{set_id}-model-{index:06d}"
        state = model_set.state(index)
        spec = get_architecture(model_set.architecture)
        # Parameters: self-describing blob, layer names embedded.
        params_artifact = self.context.file_store.put(
            serialize_state_dict(state),
            artifact_id=f"{model_id}-params",
            category="parameters",
        )
        # Model code: one copy per model.
        code_artifact = self.context.file_store.put(
            spec.source_code.encode("utf-8"),
            artifact_id=f"{model_id}-code",
            category="model-code",
        )
        # Metadata document: architecture, layer names, environment — all
        # per model, hence redundant across the set (O1).
        self.context.document_store.insert(
            MODELS_COLLECTION,
            {
                "model_id": model_id,
                "set_id": set_id,
                "index": index,
                "architecture": model_set.architecture,
                "layer_names": model_set.schema.layer_names(),
                # MMlib records the environment per artifact: once with the
                # model snapshot and once with the training information.
                "environment": _detailed_environment(),
                "train_environment": _detailed_environment(),
                "metadata": metadata.to_json(),
                "params_artifact": params_artifact,
                "code_artifact": code_artifact,
            },
            doc_id=model_id,
        )
        return model_id

    def _save_all(
        self,
        model_set: ModelSet,
        metadata: SetMetadata | None,
        base_set_id: str | None = None,
    ) -> str:
        metadata = metadata if metadata is not None else SetMetadata()
        set_id = self.context.next_set_id(self.name)
        model_ids = [
            self._save_one_model(model_set, index, set_id, metadata)
            for index in range(len(model_set))
        ]
        document = {
            "type": self.name,
            "architecture": model_set.architecture,
            "num_models": len(model_set),
            "model_ids": model_ids,
        }
        if base_set_id is not None:
            # Lineage bookkeeping only: MMlib itself ignores the relation,
            # but recording it lets analytics and migration use it.
            document["base_set"] = base_set_id
        self.context.document_store.insert(SETS_COLLECTION, document, doc_id=set_id)
        return set_id

    def save_initial(
        self, model_set: ModelSet, metadata: SetMetadata | None = None
    ) -> str:
        return self._save_all(model_set, metadata)

    def save_derived(
        self,
        model_set: ModelSet,
        base_set_id: str,
        update_info: UpdateInfo | None = None,
        metadata: SetMetadata | None = None,
    ) -> str:
        # MMlib-base has no notion of related models: a derived set is
        # saved exactly like an initial one (its storage consumption is
        # constant across use cases, Figure 3).
        return self._save_all(model_set, metadata, base_set_id=base_set_id)

    def recover(self, set_id: str) -> ModelSet:
        document = self.context.set_document(set_id)
        self._require_type(document, self.name, set_id)
        states = []
        architecture = str(document["architecture"])
        for model_id in document["model_ids"]:
            model_doc = self.context.document_store.get(MODELS_COLLECTION, model_id)
            payload = self.context.file_store.get(model_doc["params_artifact"])
            states.append(deserialize_state_dict(payload))
        if len(states) != int(document["num_models"]):
            raise RecoveryError(
                f"set {set_id!r}: expected {document['num_models']} models, "
                f"recovered {len(states)}"
            )
        return ModelSet(architecture, states)

    def recover_model(self, set_id: str, model_index: int):
        """Recover one model: one set-index read, one doc, one artifact."""
        document = self.context.set_document(set_id)
        self._require_type(document, self.name, set_id)
        model_ids = document["model_ids"]
        if not 0 <= model_index < len(model_ids):
            raise IndexError(
                f"model index {model_index} out of range for set {set_id!r}"
            )
        model_doc = self.context.document_store.get(
            MODELS_COLLECTION, model_ids[model_index]
        )
        payload = self.context.file_store.get(model_doc["params_artifact"])
        return deserialize_state_dict(payload)

    @staticmethod
    def per_model_overhead_bytes(model_set: ModelSet) -> int:
        """Measured metadata overhead of one model save (for reports).

        Everything except the raw float32 parameter payload: document
        bytes, code artifact, and the self-describing blob's framing.
        """
        spec = get_architecture(model_set.architecture)
        state = model_set.state(0)
        blob_overhead = len(serialize_state_dict(state)) - model_set.schema.num_bytes
        doc = {
            "model_id": "x" * 24,
            "set_id": "x" * 18,
            "index": 0,
            "architecture": model_set.architecture,
            "layer_names": model_set.schema.layer_names(),
            "environment": _detailed_environment(),
            "train_environment": _detailed_environment(),
            "metadata": SetMetadata().to_json(),
            "params_artifact": "x" * 31,
            "code_artifact": "x" * 29,
        }
        doc_bytes = len(json.dumps(doc, separators=(",", ":")).encode("utf-8"))
        return blob_overhead + len(spec.source_code.encode("utf-8")) + doc_bytes
