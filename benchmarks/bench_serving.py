"""Serving-path sweep: tiered cache under a 95/5 Zipf read mix.

Replays the same seeded request stream (95% recover / 5% save,
Zipf-skewed set popularity) against 1- and 4-shard fleets with 1→32
concurrent readers, cache on vs cache off, and writes the full report
to ``results/serving.json``.

Claims asserted here (simulated-latency claims are deterministic — the
store charges do not depend on the host):

* warm p50 simulated read latency improves >= 5x with the cache on, at
  every shard/reader combination;
* the cache serves a nonzero tier-1 hit rate on every cached config;
* chunk-granular reuse: a cold v8 read after v7 is cached fetches only
  the chunks whose digests v7's recovery did not already decode;
* every configuration's recoveries — including the replica-down
  degraded read after a stale cache entry is dropped — are
  byte-identical to the uncached oracle.
"""

import os
from pathlib import Path

from repro.bench.serving import format_report, run_serving_benchmark, write_report

NUM_MODELS = int(os.environ.get("REPRO_BENCH_MODELS", "8"))
NUM_REQUESTS = int(os.environ.get("REPRO_SERVING_REQUESTS", "200"))

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results" / "serving.json"


def test_serving_sweep(benchmark, fault_seed):
    report = benchmark.pedantic(
        lambda: run_serving_benchmark(
            models_per_set=NUM_MODELS,
            num_requests=NUM_REQUESTS,
            fault_seed=fault_seed,
        ),
        rounds=1,
        iterations=1,
    )
    report["fault_seed"] = fault_seed
    write_report(report, RESULTS_PATH)
    print(format_report(report))
    benchmark.extra_info["speedups"] = report["speedups"]

    # >= 5x warm p50 on the 95/5 workload at every configuration.
    for name, speedup in report["speedups"].items():
        assert speedup >= 5.0, f"{name}: {speedup:.1f}x"
    for entry in report["configs"]:
        # Byte-identical to the uncached oracle everywhere.
        assert entry["identical_to_oracle"]
        if entry["cache"] == "on":
            assert entry["set_hit_rate"] > 0.0
    # Chunk-granular reuse: the cold read moves only the differing chunks.
    diff = report["differential"]
    assert diff["chunk_granular"], diff
    assert diff["identical_to_oracle"]
    # Replica outage: hits keep serving, the cold failover read matches.
    degraded = report["degraded"]
    assert degraded["hit_served_during_outage"]
    assert degraded["degraded_identical"]
