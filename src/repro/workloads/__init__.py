"""Workload generation: the paper's U1/U3 use-case sequence (§4.1, Fig. 2).

A scenario starts with one iteration of U1 (initial save of *n* models)
followed by iterations of U3 in which a seeded subset of models is fully
or partially updated.  The generator produces, per use case, the new
model set plus the :class:`~repro.core.save_info.UpdateInfo` describing
the cycle's provenance — everything an approach needs to save it.
"""

from repro.workloads.monitor import (
    DivergenceSelector,
    FleetReport,
    evaluate_fleet,
)
from repro.workloads.scenario import MultiModelScenario, ScenarioConfig, UseCase
from repro.workloads.update_plan import UpdatePlan

__all__ = [
    "DivergenceSelector",
    "FleetReport",
    "MultiModelScenario",
    "ScenarioConfig",
    "UpdatePlan",
    "UseCase",
    "evaluate_fleet",
]
