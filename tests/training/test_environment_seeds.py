"""Tests for environment capture and derived seeds."""

import pytest

from repro.training.environment import EnvironmentInfo, capture_environment
from repro.training.seeds import derive_seed


class TestEnvironment:
    def test_capture_fields_populated(self):
        env = capture_environment()
        assert env.python_version
        assert env.numpy_version
        assert env.platform
        assert env.library_version

    def test_json_roundtrip(self):
        env = capture_environment()
        assert EnvironmentInfo.from_json(env.to_json()) == env

    def test_compatible_with_itself(self):
        env = capture_environment()
        assert env.is_compatible_with(env)

    def test_incompatible_on_numpy_mismatch(self):
        env = capture_environment()
        other = EnvironmentInfo.from_json({**env.to_json(), "numpy_version": "0.0.1"})
        assert not env.is_compatible_with(other)

    def test_hardware_fields_do_not_affect_compatibility(self):
        env = capture_environment()
        other = EnvironmentInfo.from_json({**env.to_json(), "machine": "quantum-42"})
        assert env.is_compatible_with(other)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("ns", 1, 2) == derive_seed("ns", 1, 2)

    def test_namespace_separates_streams(self):
        assert derive_seed("a", 1) != derive_seed("b", 1)

    def test_components_matter_and_do_not_concatenate(self):
        # (1, 23) must differ from (12, 3): components are fixed-width.
        assert derive_seed("ns", 1, 23) != derive_seed("ns", 12, 3)

    def test_result_fits_in_63_bits(self):
        for i in range(100):
            seed = derive_seed("range-check", i)
            assert 0 <= seed < 2**63

    def test_no_obvious_collisions(self):
        seeds = {derive_seed("collision", i, j) for i in range(50) for j in range(50)}
        assert len(seeds) == 2500

    def test_usable_as_numpy_seed(self):
        import numpy as np

        rng = np.random.default_rng(derive_seed("np", 7))
        assert rng.random() == pytest.approx(
            np.random.default_rng(derive_seed("np", 7)).random()
        )
