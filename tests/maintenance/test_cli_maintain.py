"""The ``repro-archive maintain`` verb: one-shot and ``--cycles N``.

Exit contract (shared with fsck/scrub): 0 — nothing needed doing,
1 — maintenance did work, 2 — a scrub found unrecoverable data.
Fleet archives run each pass per shard, worst shard wins.
"""

from repro.cli import main as archive_main
from repro.config import ArchiveConfig
from repro.core.manager import MultiModelManager
from repro.fleet import FleetManager
from repro.storage.faults import corrupt_artifact
from repro.storage.replication import replicated_stores

from tests.maintenance.conftest import perturbed, save_chain


class TestMaintainSingleArchive:
    def test_gc_work_then_clean(self, tmp_path, tiny_set, capsys):
        path = str(tmp_path / "arch")
        manager = MultiModelManager.open(path, "update")
        ids = save_chain(manager, tiny_set, 3)
        assert archive_main([path, "maintain", "--keep-last", "1"]) == 1
        out = capsys.readouterr().out
        assert "pass 0" in out and "reclaimed" in out
        reopened = MultiModelManager.open(path, "update")
        assert reopened.list_sets() == sorted(ids)[-1:]
        assert reopened.recover_set(ids[-1]).equals(perturbed(tiny_set, 2))
        # Second run: nothing left to do.
        assert archive_main([path, "maintain", "--keep-last", "1"]) == 0

    def test_compact_depth_without_gc(self, tmp_path, tiny_set):
        path = str(tmp_path / "arch")
        manager = MultiModelManager.open(path, "update")
        ids = save_chain(manager, tiny_set, 3)
        assert archive_main([path, "maintain", "--compact-depth", "1"]) == 1
        reopened = MultiModelManager.open(path, "update")
        assert sorted(reopened.list_sets()) == sorted(ids)  # nothing deleted
        assert reopened.recover_set(ids[-1]).equals(perturbed(tiny_set, 2))
        assert archive_main([path, "fsck", "--deep"]) == 0

    def test_clean_archive_exits_zero(self, tmp_path, tiny_set):
        path = str(tmp_path / "arch")
        MultiModelManager.open(path, "update").save_set(tiny_set)
        assert archive_main([path, "maintain"]) == 0

    def test_cycles_flag_runs_repeated_passes(self, tmp_path, tiny_set, capsys):
        path = str(tmp_path / "arch")
        manager = MultiModelManager.open(path, "update")
        save_chain(manager, tiny_set, 3)
        assert (
            archive_main([path, "maintain", "--cycles", "2", "--keep-last", "1"])
            == 1
        )
        out = capsys.readouterr().out
        assert "pass 0" in out and "pass 1" in out

    def test_scrub_loss_exits_two(self, tmp_path, tiny_set, capsys):
        path = str(tmp_path / "arch")
        manager = MultiModelManager.open(
            path, "update", ArchiveConfig(replicas=3)
        )
        manager.save_set(tiny_set)
        file_rep, _ = replicated_stores(manager.context)
        artifact = file_rep.ids()[0]
        for state in file_rep.replicas:
            corrupt_artifact(state.store, artifact)
        assert archive_main([path, "maintain", "--deep"]) == 2
        assert "LOST" in capsys.readouterr().out


class TestMaintainFleet:
    def test_fleet_keep_last_is_fleet_wide(self, tmp_path, tiny_set, capsys):
        root = str(tmp_path / "fleet")
        fleet = FleetManager.open(root, "update", ArchiveConfig(shards=2))
        ids = sorted(fleet.save_set(tiny_set) for _ in range(5))
        assert archive_main([root, "maintain", "--keep-last", "2"]) == 1
        out = capsys.readouterr().out
        assert "shard-0" in out and "shard-1" in out
        reopened = FleetManager.open(root, "update")
        assert reopened.list_sets() == ids[-2:]
        assert reopened.recover_set(ids[-1]).equals(tiny_set)
        assert archive_main([root, "maintain", "--keep-last", "2"]) == 0
        assert archive_main([root, "fsck", "--deep"]) == 0
