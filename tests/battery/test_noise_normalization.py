"""Tests for measurement noise and feature normalization."""

import numpy as np
import pytest

from repro.battery.noise import add_measurement_noise
from repro.battery.normalization import FeatureScaler


class TestMeasurementNoise:
    def test_changes_values_but_preserves_shape(self, rng):
        features = np.zeros((50, 3))
        noisy = add_measurement_noise(features, rng, sigma=[0.1, 0.1, 0.1])
        assert noisy.shape == features.shape
        assert not np.array_equal(noisy, features)

    def test_noise_magnitude_matches_sigma(self):
        rng = np.random.default_rng(0)
        features = np.zeros((100_000, 2))
        noisy = add_measurement_noise(features, rng, sigma=[0.5, 2.0])
        assert np.isclose(noisy[:, 0].std(), 0.5, rtol=0.05)
        assert np.isclose(noisy[:, 1].std(), 2.0, rtol=0.05)

    def test_deterministic_per_seed(self):
        features = np.ones((10, 2))
        a = add_measurement_noise(features, np.random.default_rng(4), sigma=0.1)
        b = add_measurement_noise(features, np.random.default_rng(4), sigma=0.1)
        assert np.array_equal(a, b)

    def test_default_sigma_scales_with_channel_std(self):
        rng = np.random.default_rng(0)
        features = np.column_stack(
            [np.linspace(0, 1, 1000), np.linspace(0, 100, 1000)]
        )
        noisy = add_measurement_noise(features, rng)
        deltas = noisy - features
        assert deltas[:, 1].std() > deltas[:, 0].std() * 10

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(ValueError):
            add_measurement_noise(np.zeros(5), rng)
        with pytest.raises(ValueError):
            add_measurement_noise(np.zeros((5, 2)), rng, sigma=[1.0, 1.0, 1.0])


class TestFeatureScaler:
    def test_transform_standardizes(self, rng):
        features = rng.normal(5.0, 3.0, size=(1000, 4))
        scaler = FeatureScaler.fit(features)
        scaled = scaler.transform(features)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_inverse_transform_roundtrips(self, rng):
        features = rng.normal(size=(100, 3)) * 7 + 2
        scaler = FeatureScaler.fit(features)
        assert np.allclose(
            scaler.inverse_transform(scaler.transform(features)), features
        )

    def test_constant_channel_gets_unit_std(self):
        features = np.column_stack([np.ones(10), np.arange(10.0)])
        scaler = FeatureScaler.fit(features)
        assert scaler.std[0] == 1.0
        scaled = scaler.transform(features)
        assert np.allclose(scaled[:, 0], 0.0)

    def test_json_roundtrip(self, rng):
        scaler = FeatureScaler.fit(rng.normal(size=(50, 2)))
        restored = FeatureScaler.from_json(scaler.to_json())
        assert np.allclose(restored.mean, scaler.mean)
        assert np.allclose(restored.std, scaler.std)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            FeatureScaler.fit(np.zeros(10))
