"""Registry benchmark: query latency + zero-parameter-read diff proof.

Builds a synthetic ``REPRO_REGISTRY_VERSIONS``-long update family (the
catalog shape a long fine-tuning run produces) and times the public
query surface (see ``repro.bench.registry``).  Writes
``results/registry.json``.

Claims asserted here:

* the catalog indexes the whole chain: one family, every version
  present, ``resolve`` returning the chain head;
* ``diff`` — adjacent and root-to-head — answers per-layer change sets
  from stored hash metadata with **zero parameter-byte reads**
  (file-store stats delta across all timed query loops is 0 reads /
  0 bytes);
* root-to-head diff sees the accumulated drift across models.

Scale knobs: ``REPRO_REGISTRY_VERSIONS`` (default 500),
``REPRO_REGISTRY_MODELS`` (default 4) — CI's registry job runs a
bounded variant.
"""

import os
from pathlib import Path

from repro.bench.registry import format_report, run_registry_benchmark, write_report

VERSIONS = int(os.environ.get("REPRO_REGISTRY_VERSIONS", "500"))
NUM_MODELS = int(os.environ.get("REPRO_REGISTRY_MODELS", "4"))

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results" / "registry.json"


def test_registry_queries(benchmark):
    report = benchmark.pedantic(
        lambda: run_registry_benchmark(versions=VERSIONS, num_models=NUM_MODELS),
        rounds=1,
        iterations=1,
    )
    write_report(report, RESULTS_PATH)
    print(format_report(report))
    benchmark.extra_info["summary"] = {
        "catalog": report["catalog"],
        "latency": report["latency"],
        "stats": report["stats"],
    }

    # The catalog indexed the whole chain.
    catalog = report["catalog"]
    assert catalog["families"] == 1
    assert catalog["versions_in_family"] == VERSIONS

    # The headline claim: layer-level diffs without reading parameters.
    stats = report["stats"]
    assert stats["parameter_reads"] == 0, stats
    assert stats["parameter_bytes_read"] == 0, stats
    assert report["diff_root_to_head"]["source"] == "hash-info"
    assert report["diff_root_to_head"]["models_changed"] == NUM_MODELS
