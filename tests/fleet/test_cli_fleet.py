"""CLI verbs against fleet archives: aggregation, routing, exit codes.

The 0/1/2 contract must hold unchanged: 0 clean, 1 integrity findings,
2 operator error — with iterated verbs reporting the *worst* shard.
"""

from pathlib import Path

import pytest

from repro.cli import main as archive_main
from repro.config import ArchiveConfig
from repro.core.manager import MultiModelManager
from repro.fleet import FleetManager
from repro.storage.faults import corrupt_artifact
from repro.storage.replication import replicated_stores


@pytest.fixture
def fleet_archive(tmp_path, tiny_set):
    root = tmp_path / "fleet"
    fleet = FleetManager.open(root, "update", ArchiveConfig(shards=2))
    ids = [fleet.save_set(tiny_set) for _ in range(3)]
    ids.append(fleet.save_set(tiny_set, base_set_id=ids[0]))
    return str(root), ids


class TestFleetIteratedVerbs:
    def test_info_aggregates_across_shards(self, fleet_archive, capsys):
        path, ids = fleet_archive
        assert archive_main([path, "info"]) == 0
        out = capsys.readouterr().out
        assert "fleet: 2 shards" in out
        assert f"fleet sets: {len(ids)}" in out
        assert "== shard-0 ==" in out
        assert "== shard-1 ==" in out

    def test_verify_clean_fleet(self, fleet_archive, capsys):
        path, _ids = fleet_archive
        assert archive_main([path, "verify", "--deep"]) == 0
        assert capsys.readouterr().out.count("archive is clean") == 2

    def test_verify_reports_worst_shard(self, fleet_archive, capsys):
        path, _ids = fleet_archive
        # Corrupt exactly one shard: the fleet exit code is the max.
        victim = next(Path(path).glob("shard-*/artifacts/*-params.bin"))
        victim.unlink()
        assert archive_main([path, "verify"]) == 1
        assert "ISSUE" in capsys.readouterr().out

    def test_fsck_and_scrub_iterate_shards(self, fleet_archive, capsys):
        path, _ids = fleet_archive
        assert archive_main([path, "fsck"]) == 0
        assert archive_main([path, "scrub"]) == 0
        assert capsys.readouterr().out.count("== shard-") == 4


class TestFleetGcAndRouting:
    def test_gc_keep_last_is_fleet_wide(self, fleet_archive, capsys, tiny_set):
        path, ids = fleet_archive
        assert archive_main([path, "gc", "--keep-last", "1"]) == 0
        assert "reclaimed" in capsys.readouterr().out
        reopened = FleetManager.open(path, "update")
        assert reopened.list_sets() == [sorted(ids)[-1]]
        assert reopened.recover_set(sorted(ids)[-1]).equals(tiny_set)

    def test_export_routes_to_owning_shard(self, fleet_archive, tmp_path, capsys):
        path, ids = fleet_archive
        out_dir = str(tmp_path / "bundle")
        assert archive_main([path, "export", ids[-1], out_dir]) == 0
        assert (Path(out_dir) / "manifest.json").is_file()

    def test_routed_verb_unknown_set_is_operator_error(self, fleet_archive):
        path, _ids = fleet_archive
        assert archive_main([path, "history", "set-update-999999", "0"]) == 2


class TestDegradedShardExitCodes:
    """Exactly one shard degraded: worst-shard status, heal on scrub,
    and the 1-then-0 sequence across two runs."""

    @pytest.fixture
    def degraded_fleet(self, tmp_path, tiny_set):
        root = tmp_path / "fleet"
        fleet = FleetManager.open(
            root, "update", ArchiveConfig(shards=2, replicas=3)
        )
        ids = [fleet.save_set(tiny_set) for _ in range(4)]
        # Corrupt one replica copy of one artifact on shard 0 only; the
        # other two copies (and all of shard 1) stay intact.
        file_rep, _ = replicated_stores(fleet.shards[0].context)
        corrupt_artifact(file_rep.replicas[1].store, file_rep.ids()[0])
        return str(root), ids

    def test_fsck_reports_worst_shard(self, degraded_fleet, capsys):
        path, _ids = degraded_fleet
        assert archive_main([path, "fsck", "--deep"]) == 1
        out = capsys.readouterr().out
        assert out.count("== shard-") == 2  # both shards inspected

    def test_scrub_heals_then_everything_is_clean(self, degraded_fleet, tiny_set):
        path, ids = degraded_fleet
        assert archive_main([path, "scrub"]) == 1  # healed work
        assert archive_main([path, "fsck", "--deep"]) == 0
        assert archive_main([path, "scrub"]) == 0  # idempotent
        reopened = FleetManager.open(path, "update")
        for set_id in ids:
            assert reopened.recover_set(set_id).equals(tiny_set)

    def test_gc_runs_despite_the_degraded_shard(self, degraded_fleet, capsys):
        path, ids = degraded_fleet
        assert archive_main([path, "gc", "--keep-last", "1"]) == 0
        assert "reclaimed" in capsys.readouterr().out
        reopened = FleetManager.open(path, "update")
        assert reopened.list_sets() == [sorted(ids)[-1]]


class TestMissingShardExitCodes:
    """A shard directory gone entirely: inspection runs degraded (exit
    1, DOWN line per missing shard), mutation is refused (exit 2)."""

    @pytest.fixture
    def halved_fleet(self, tmp_path, tiny_set):
        import shutil

        root = tmp_path / "fleet"
        fleet = FleetManager.open(root, "update", ArchiveConfig(shards=2))
        ids = [fleet.save_set(tiny_set) for _ in range(6)]
        survivors = [s for s in ids if fleet.shard_of(s) == 1]
        assert survivors, "need at least one set on the surviving shard"
        shutil.rmtree(root / "shard-0")
        return str(root), survivors

    def test_fsck_pins_missing_shard_and_floors_exit_at_1(
        self, halved_fleet, capsys
    ):
        path, _survivors = halved_fleet
        assert archive_main([path, "fsck"]) == 1
        out = capsys.readouterr().out
        assert "== shard-0 ==" in out and "== shard-1 ==" in out
        assert "DOWN: shard directory missing" in out

    def test_info_counts_down_shards(self, halved_fleet, capsys):
        path, survivors = halved_fleet
        assert archive_main([path, "info"]) == 1
        out = capsys.readouterr().out
        assert "fleet shards DOWN: 1" in out
        assert f"fleet sets: {len(survivors)}" in out

    def test_mutating_verb_on_degraded_fleet_is_operator_error(
        self, halved_fleet, capsys
    ):
        path, _survivors = halved_fleet
        assert archive_main([path, "gc", "--keep-last", "1"]) == 2
        assert "degraded" in capsys.readouterr().err

    def test_reopen_pins_down_and_serves_the_surviving_shard(
        self, halved_fleet, tiny_set
    ):
        path, survivors = halved_fleet
        reopened = FleetManager.open(path, "update")
        assert reopened.health.is_down(0)
        for set_id in survivors:
            assert reopened.recover_set(set_id).equals(tiny_set)


class TestDeadletterCli:
    @pytest.fixture
    def parked_fleet(self, tmp_path, tiny_set):
        """Durable 2-shard fleet with one dead-lettered batch.

        The outage is process-local fault injection, so the CLI's fresh
        open sees a healthy (revived) shard — replay can land.
        """
        from collections import OrderedDict

        from repro.config import FleetHealthConfig
        from repro.errors import IngestError
        from repro.fleet import IngestQueue
        from repro.storage.faults import FaultInjector, inject_faults

        root = tmp_path / "fleet"
        config = ArchiveConfig(
            shards=2,
            health=FleetHealthConfig(
                down_after=1, flush_retries=1, retry_base_s=0.01
            ),
        )
        fleet = FleetManager.open(root, "update", config)
        base = fleet.save_set(tiny_set)
        shard = fleet.shard_of(base)
        inject_faults(
            fleet.shards[shard].context,
            FaultInjector(seed=5, down_at=0, down_mode="before"),
        )
        queue = IngestQueue(fleet, flush_max_updates=1, workers=0)
        parked_state = OrderedDict(
            (name, (array + 2.0).astype(array.dtype))
            for name, array in tiny_set.state(0).items()
        )
        with pytest.raises(IngestError):
            queue.submit(base, 0, parked_state)
        queue.abort()
        assert (root / "deadletter").is_dir()
        return str(root), base, shard, parked_state

    def test_list_is_0_when_nothing_parked(self, fleet_archive, capsys):
        clean_path, _ids = fleet_archive
        assert archive_main([clean_path, "deadletter", "list"]) == 0
        assert "0 dead-letter entries" in capsys.readouterr().out

    def test_list_is_1_with_entries(self, parked_fleet, capsys):
        parked_path, _base, shard, _state = parked_fleet
        assert archive_main([parked_path, "deadletter", "list"]) == 1
        out = capsys.readouterr().out
        assert "1 dead-letter entries" in out
        assert "dl-000000" in out and f"shard={shard}" in out
        # The shard filter applies: the other shard has nothing parked.
        assert (
            archive_main(
                [parked_path, "deadletter", "list", "--shard", str(1 - shard)]
            )
            == 0
        )

    def test_replay_lands_and_preserves_bytes(
        self, parked_fleet, capsys, tiny_set
    ):
        path, base, _shard, parked_state = parked_fleet
        assert archive_main([path, "deadletter", "replay"]) == 0
        out = capsys.readouterr().out
        assert "replayed dl-000000" in out
        assert "replayed 1 entries, 0 skipped, 0 failed" in out
        assert archive_main([path, "deadletter", "list"]) == 0

        reopened = FleetManager.open(path, "update")
        (derived,) = [s for s in reopened.list_sets() if s != base]
        expected = tiny_set.copy()
        expected.states[0] = parked_state
        assert reopened.recover_set(derived).equals(expected)

    def test_replay_skips_entries_for_a_down_shard(self, parked_fleet, capsys):
        import shutil

        path, _base, shard, _state = parked_fleet
        shutil.rmtree(Path(path) / f"shard-{shard}")
        # --approach because the surviving shard may hold no sets to
        # detect it from.
        assert (
            archive_main([path, "--approach", "update", "deadletter", "replay"])
            == 1
        )
        out = capsys.readouterr().out
        assert "skipped dl-000000 (shard still down)" in out
        # The entry survives for replay after the shard is restored.
        assert archive_main([path, "deadletter", "list"]) == 1

    def test_purge_drops_entries(self, parked_fleet, capsys):
        path, _base, _shard, _state = parked_fleet
        assert archive_main([path, "deadletter", "purge"]) == 0
        assert "purged 1 dead-letter entries" in capsys.readouterr().out
        assert archive_main([path, "deadletter", "list"]) == 0

    def test_deadletter_on_plain_archive_is_operator_error(
        self, tmp_path, tiny_set, capsys
    ):
        plain = str(tmp_path / "plain")
        MultiModelManager.open(plain, "update").save_set(tiny_set)
        assert archive_main([plain, "deadletter", "list"]) == 2
        assert "fleet archives" in capsys.readouterr().err


class TestFleetExitCode2:
    def test_reshard_request_is_refused(self, fleet_archive):
        path, _ids = fleet_archive
        assert archive_main([path, "--shards", "4", "info"]) == 2

    def test_shards_flag_on_plain_archive_is_refused(self, tmp_path, tiny_set):
        plain = str(tmp_path / "plain")
        MultiModelManager.open(plain, "update").save_set(tiny_set)
        assert archive_main([plain, "--shards", "2", "info"]) == 2
        # Without the flag the plain archive still works untouched.
        assert archive_main([plain, "info"]) == 0
