"""Physics-consistency tests for the battery substrate.

These pin down quantitative behaviours (energy bookkeeping, time-step
robustness, pack-vs-single-cell consistency) rather than interfaces.
"""

import numpy as np
import pytest

from repro.battery.ecm import CellParameters, SecondOrderECM, open_circuit_voltage
from repro.battery.pack import BatteryPack, PackConfig


class TestCoulombCounting:
    def test_discharged_charge_matches_integral(self):
        ecm = SecondOrderECM()
        amps, seconds = 2.0, 1800
        result = ecm.simulate(np.full(seconds, amps), initial_soc=0.9)
        expected_ah = amps * seconds / 3600.0
        actual_ah = result.charge_ah[0] - result.charge_ah[-1]
        # First step already subtracts one dt of charge; tolerance covers it.
        assert actual_ah == pytest.approx(expected_ah, rel=0.01)

    def test_charge_discharge_cycle_returns_to_soc(self):
        ecm = SecondOrderECM()
        current = np.concatenate([np.full(600, 2.0), np.full(600, -2.0)])
        result = ecm.simulate(current, initial_soc=0.5)
        assert result.soc[-1] == pytest.approx(0.5, abs=1e-6)

    def test_smaller_capacity_drains_faster(self):
        small = SecondOrderECM(CellParameters(capacity_ah=1.5))
        large = SecondOrderECM(CellParameters(capacity_ah=3.0))
        current = np.full(1200, 2.0)
        soc_small = small.simulate(current, initial_soc=0.9).soc[-1]
        soc_large = large.simulate(current, initial_soc=0.9).soc[-1]
        assert soc_small < soc_large


class TestVoltagePhysics:
    def test_ir_drop_proportional_to_current(self):
        ecm = SecondOrderECM()
        v1 = ecm.simulate(np.array([1.0]), initial_soc=0.8).voltage[0]
        v2 = ecm.simulate(np.array([2.0]), initial_soc=0.8).voltage[0]
        ocv = float(open_circuit_voltage(0.8))
        # Instantaneous drop dominated by I*R0: doubling I doubles it.
        assert (ocv - v2) == pytest.approx(2 * (ocv - v1), rel=0.05)

    def test_relaxation_after_load_recovers_voltage(self):
        ecm = SecondOrderECM()
        current = np.concatenate([np.full(300, 3.0), np.zeros(600)])
        result = ecm.simulate(current, initial_soc=0.8)
        v_under_load = result.voltage[299]
        v_relaxed = result.voltage[-1]
        assert v_relaxed > v_under_load  # polarization decays at rest

    def test_voltage_tracks_ocv_at_rest(self):
        ecm = SecondOrderECM()
        result = ecm.simulate(np.zeros(60), initial_soc=0.6)
        assert result.voltage[-1] == pytest.approx(
            float(open_circuit_voltage(result.soc[-1])), abs=1e-3
        )


class TestThermal:
    def test_steady_state_temperature_matches_power_balance(self):
        params = CellParameters()
        ecm = SecondOrderECM(params)
        amps = 3.0
        result = ecm.simulate(np.full(7200, amps))
        # At equilibrium: I^2 * R_total = cooling * (T - ambient).
        r_total = (
            params.r0_ohm
            * (1 + 0.003 * (result.temperature_c[-1] - params.ambient_temp_c))
            + params.r1_ohm
            + params.r2_ohm
        )
        expected_rise = amps**2 * r_total / params.cooling_w_per_k
        actual_rise = result.temperature_c[-1] - params.ambient_temp_c
        assert actual_rise == pytest.approx(expected_rise, rel=0.05)

    def test_no_heating_at_rest(self):
        ecm = SecondOrderECM()
        result = ecm.simulate(np.zeros(600))
        assert np.allclose(result.temperature_c, ecm.parameters.ambient_temp_c)


class TestPackConsistency:
    def test_identical_parallel_cells_split_evenly(self):
        config = PackConfig(series_groups=1, parallel_cells=4, seed=0,
                            parameter_spread=0.0)
        pack = BatteryPack(config)
        telemetry = pack.simulate(np.full(120, 8.0))
        assert np.allclose(telemetry.current_a, 2.0, atol=1e-9)

    def test_single_branch_pack_matches_single_cell(self):
        """A 1s1p unperturbed pack must reproduce the standalone ECM."""
        config = PackConfig(series_groups=1, parallel_cells=1, seed=0,
                            parameter_spread=0.0)
        pack = BatteryPack(config)
        current = np.sin(np.linspace(0, 6, 300)) + 1.5
        pack_result = pack.simulate(current)
        solo = SecondOrderECM(CellParameters()).simulate(current)
        assert np.allclose(pack_result.voltage[:, 0], solo.voltage, atol=1e-6)
        assert np.allclose(pack_result.soc[:, 0], solo.soc, atol=1e-9)

    def test_series_groups_share_identical_string_current(self):
        config = PackConfig(series_groups=3, parallel_cells=1, seed=1)
        pack = BatteryPack(config)
        telemetry = pack.simulate(np.full(60, 2.5))
        for group in range(3):
            assert np.allclose(telemetry.current_a[:, group], 2.5, atol=1e-9)

    def test_regen_braking_charges_all_branches(self):
        config = PackConfig(series_groups=1, parallel_cells=2, seed=0)
        pack = BatteryPack(config)
        telemetry = pack.simulate(np.full(60, -4.0))
        assert np.all(telemetry.current_a < 0)
        assert np.all(telemetry.soc[-1] > telemetry.soc[0])


class TestTimestepRobustness:
    def test_halved_dt_converges_to_same_trajectory(self):
        ecm = SecondOrderECM()
        coarse = ecm.simulate(np.full(600, 2.0), dt_s=1.0)
        fine_current = np.full(1200, 2.0)
        fine = SecondOrderECM().simulate(fine_current, dt_s=0.5)
        # Same simulated timespan: endpoints agree within integrator error.
        assert fine.soc[-1] == pytest.approx(coarse.soc[-1], abs=1e-4)
        assert fine.voltage[-1] == pytest.approx(coarse.voltage[-1], abs=5e-3)
