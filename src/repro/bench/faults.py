"""Fault-injection benchmark: crash matrix, retry overhead, salvage yield.

Quantifies the robustness subsystem the way the storage benchmarks
quantify cost, with everything driven from seeded fault schedules so the
numbers are reproducible run to run:

* **crash matrix** — for each approach (dedup off and on), enumerate the
  mutating operations of a derived save with a dry run, then kill the
  save at every one of them and check that journal recovery lands the
  archive back on the previous consistent state (prior set byte-identical,
  fsck clean);
* **retry resilience** — run the save workload under a seeded transient
  error rate with the exponential-backoff retry policy attached, and
  report how many retries fired and how much simulated backoff latency
  they charged;
* **salvage yield** — corrupt a single chunk of a deduplicated set and
  report exactly how many models the corruption-tolerant recovery still
  returns (all but the one model referencing the chunk).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.config import ArchiveConfig
from repro.core.approach import SaveContext
from repro.core.fsck import ArchiveFsck
from repro.core.manager import MultiModelManager
from repro.core.model_set import ModelSet
from repro.errors import SimulatedCrashError, TransientStorageError
from repro.storage.faults import (
    FaultInjector,
    RetryPolicy,
    attach_retries,
    corrupt_artifact,
    inject_faults,
)
from repro.storage.journal import attach_journal

#: Approaches swept by the crash matrix (all journaled save paths).
APPROACHES = ("baseline", "update", "mmlib-base", "pas-delta", "baseline-fp16")


def _make_manager(approach: str, dedup: bool) -> MultiModelManager:
    context = SaveContext.create(ArchiveConfig(dedup=dedup))
    attach_journal(context)
    return MultiModelManager.with_approach(approach, context=context)


def _model_sets(num_models: int, seed: int = 0):
    models = ModelSet.build("FFNN-48", num_models=num_models, seed=seed)
    derived = models.copy()
    derived.state(0)["0.bias"][:] += 1.0
    derived.state(num_models - 1)["4.weight"][:] *= 1.25
    return models, derived


def crash_matrix_entry(
    approach: str, dedup: bool, num_models: int, seed_base: int
) -> dict:
    """Kill one derived save at every fault point; count clean recoveries."""
    models, derived = _model_sets(num_models)

    probe = _make_manager(approach, dedup)
    probe_base = probe.save_set(models)
    injector = inject_faults(probe.context, FaultInjector())
    probe.save_set(derived, base_set_id=probe_base)
    ops = injector.ops
    ref_base = probe.recover_set(probe_base)

    consistent = 0
    for point in range(ops):
        manager = _make_manager(approach, dedup)
        base_id = manager.save_set(models)
        inject_faults(
            manager.context,
            FaultInjector(seed=seed_base + point, crash_at=point),
        )
        try:
            manager.save_set(derived, base_set_id=base_id)
        except SimulatedCrashError:
            pass
        report = manager.context.journal.recover()
        if (
            not report.clean
            and manager.list_sets() == [base_id]
            and manager.recover_set(base_id).equals(ref_base)
            and ArchiveFsck(manager.context).run().ok
        ):
            consistent += 1
    return {"fault_points": ops, "consistent_recoveries": consistent}


def retry_entry(
    num_models: int,
    seed: int,
    transient_rate: float = 0.1,
    attempts: int = 6,
) -> dict:
    """One save workload under seeded transient faults with retries on."""
    models, derived = _model_sets(num_models)
    context = SaveContext.create()
    attach_journal(context)
    inject_faults(context, FaultInjector(seed=seed, transient_rate=transient_rate))
    attach_retries(context, RetryPolicy(attempts=attempts))
    manager = MultiModelManager.with_approach("update", context=context)
    try:
        base_id = manager.save_set(models)
        derived_id = manager.save_set(derived, base_set_id=base_id)
        recovered = manager.recover_set(derived_id).equals(derived)
        succeeded = True
    except TransientStorageError:
        recovered = False
        succeeded = False
    stats = context.file_store.stats
    doc_stats = context.document_store.stats
    return {
        "seed": seed,
        "transient_rate": transient_rate,
        "succeeded": succeeded,
        "recovery_identical": recovered,
        "retries": stats.retries + doc_stats.retries,
        "simulated_retry_s": round(
            stats.simulated_retry_s + doc_stats.simulated_retry_s, 6
        ),
    }


def salvage_entry(num_models: int) -> dict:
    """Corrupt one chunk of a dedup set; count the models salvage saves."""
    from repro.core.baseline import _chunked_digests

    models, derived = _model_sets(num_models)
    manager = _make_manager("update", dedup=True)
    context = manager.context
    base_id = manager.save_set(models)
    derived_id = manager.save_set(derived, base_set_id=base_id)

    document = manager.set_info(derived_id)
    matrix = _chunked_digests(context, document, derived_id)
    base_matrix = _chunked_digests(
        context, manager.set_info(base_id), base_id
    )
    others = {digest for row in base_matrix for digest in row}
    others.update(
        digest for index, row in enumerate(matrix) if index != 0 for digest in row
    )
    victim = next(digest for digest in matrix[0] if digest not in others)
    chunk = context.chunk_store()._chunks[victim]
    corrupt_artifact(context.file_store, chunk.artifact_id, offset=chunk.offset)
    context._invalidate_chunk_store()

    report = manager.recover_set(derived_id, salvage=True)
    return {
        "num_models": num_models,
        "corrupt_chunks": len(report.corrupt_chunks),
        "models_recovered": len(report.models),
        "models_lost": report.failed_indices,
        "base_set_complete": manager.recover_set(base_id, salvage=True).complete,
    }


def run_fault_benchmark(
    num_models: int = 10, seeds: tuple = (7, 9), seed_base: int = 0
) -> dict:
    """The full robustness report (crash matrix + retries + salvage)."""
    report: dict = {
        "num_models": num_models,
        "seeds": list(seeds),
        "crash_matrix": {},
        "retries": [retry_entry(num_models, seed) for seed in seeds],
        "salvage": salvage_entry(num_models),
    }
    for approach in APPROACHES:
        for dedup in (False, True):
            key = f"{approach}{'+dedup' if dedup else ''}"
            report["crash_matrix"][key] = crash_matrix_entry(
                approach, dedup, num_models, seed_base
            )
    return report


def format_report(report: dict) -> str:
    lines = [
        f"fault injection @ {report['num_models']} models",
        "crash matrix (derived save, kill at every mutating op):",
    ]
    for key, entry in report["crash_matrix"].items():
        lines.append(
            f"  {key:24s} {entry['consistent_recoveries']:3d}/"
            f"{entry['fault_points']:3d} fault points recover consistent"
        )
    lines.append("retry resilience (transient faults + backoff):")
    for entry in report["retries"]:
        status = "ok" if entry["succeeded"] else "EXHAUSTED"
        lines.append(
            f"  seed {entry['seed']:<6d} {status:9s} retries={entry['retries']} "
            f"backoff={entry['simulated_retry_s']:.3f}s"
        )
    salvage = report["salvage"]
    lines.append(
        f"salvage: 1 corrupt chunk -> {salvage['models_recovered']}/"
        f"{salvage['num_models']} models recovered, lost {salvage['models_lost']}"
    )
    return "\n".join(lines)


def write_report(report: dict, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
