"""Battery-fleet scenario: the paper's running example, end to end.

Simulates an electric-car battery with one DL model per cell (§1): the
cells age over update cycles, diverging cells are re-trained on freshly
generated drive-cycle data, and every model generation is archived with
the Provenance approach — the recommended choice when storage is the top
priority and recoveries are rare (§4.5).

After three update cycles, a simulated "post-accident analysis" recovers
the full fleet state of the last cycle by replaying the recorded
training, and inspects the worst-aged cell.

Run with::

    python examples/battery_fleet.py
"""

import numpy as np

from repro import MultiModelManager
from repro.battery.datagen import CellDataConfig
from repro.battery.aging import AgingSchedule
from repro.training.pipeline import PipelineConfig
from repro.workloads import MultiModelScenario, ScenarioConfig

NUM_CELLS = 12
CYCLES = 3


def main() -> None:
    data_config = CellDataConfig(seed=7, samples_per_cell=256, cycle_duration_s=256)
    config = ScenarioConfig(
        num_models=NUM_CELLS,
        num_update_cycles=CYCLES,
        # A quarter of the fleet diverges per cycle in this small demo.
        full_update_fraction=0.125,
        partial_update_fraction=0.125,
        seed=7,
        train_updates=True,  # genuinely re-train, so provenance replays
        selection="monitored",  # update the *measured* worst models
        data=data_config,
        pipeline=PipelineConfig(
            loss="mse", optimizer="sgd", learning_rate=0.01, momentum=0.9,
            epochs=2, batch_size=64,
        ),
    )
    scenario = MultiModelScenario(config)
    manager = MultiModelManager.with_approach("provenance")

    print(f"managing {NUM_CELLS} battery-cell models over {CYCLES} update cycles")
    set_ids: list[str] = []
    last_set = None
    for case in scenario.use_cases():
        base_id = set_ids[case.base_index] if case.base_index is not None else None
        before = manager.total_stored_bytes()
        set_id = manager.save_set(
            case.model_set, base_set_id=base_id, update_info=case.update_info
        )
        stored = manager.total_stored_bytes() - before
        updated = len(case.update_info.updates) if case.update_info else len(case.model_set)
        print(
            f"  {case.name}: saved {set_id} (+{stored / 1e3:.1f} KB, "
            f"{updated} models {'updated' if case.update_info else 'initialized'})"
        )
        set_ids.append(set_id)
        last_set = case.model_set

    # Aging across the fleet: which cell degraded fastest?
    aging = AgingSchedule(num_cells=NUM_CELLS, seed=data_config.seed)
    soh = [aging.soh_at(cell, CYCLES) for cell in range(NUM_CELLS)]
    worst = int(np.argmin(soh))
    print(f"worst-aged cell after {CYCLES} cycles: #{worst} (SoH {soh[worst]:.3f})")

    # Post-accident analysis: recover the archived fleet state by replay.
    print("recovering the final fleet state (provenance replay)...")
    recovered = manager.recover_set(set_ids[-1])
    assert recovered.equals(last_set), "replayed training must be bit-exact"
    print("  replay is bit-exact against the fleet state at save time")

    # Inspect the worst cell's model: voltage response under load.
    model = recovered.build_model(worst)
    from repro.datasets import BatteryCellDataset

    dataset = BatteryCellDataset(worst, CYCLES, data_config)
    inputs, targets = dataset.arrays()
    predicted_v = dataset.voltage_from_normalized(model(inputs))
    actual_v = dataset.voltage_from_normalized(targets)
    rmse = float(np.sqrt(np.mean((predicted_v - actual_v) ** 2)))
    print(f"  cell #{worst} voltage-model RMSE on its latest data: {rmse:.4f} V")
    total = manager.total_stored_bytes()
    full = (CYCLES + 1) * last_set.parameter_bytes
    print(
        f"archive size: {total / 1e3:.1f} KB (full snapshots would need "
        f"{full / 1e3:.1f} KB -> {100 * (1 - total / full):.1f}% saved)"
    )


if __name__ == "__main__":
    main()
