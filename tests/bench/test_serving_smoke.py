"""Tier-1 smoke iteration of the serving benchmark.

One reduced-scale pass of :func:`repro.bench.serving.run_serving_benchmark`
verifying the deterministic serving claims: a nonzero hit rate, a real
warm-p50 improvement with the cache on, chunk-granular differential
reuse, a correct degraded read during a replica outage, and
byte-identical recovery on every configuration.
"""

import os

from repro.bench.serving import run_serving_benchmark

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


def test_serving_smoke():
    report = run_serving_benchmark(
        shard_counts=(1, 2),
        reader_counts=(1, 4),
        num_versions=4,
        models_per_set=4,
        num_requests=60,
        fault_seed=FAULT_SEED,
    )

    for name, speedup in report["speedups"].items():
        assert speedup >= 5.0, f"{name}: {speedup:.1f}x"
    for entry in report["configs"]:
        assert entry["identical_to_oracle"]
        if entry["cache"] == "on":
            assert entry["set_hit_rate"] > 0.0

    diff = report["differential"]
    assert diff["chunk_granular"], diff
    assert diff["identical_to_oracle"]

    degraded = report["degraded"]
    assert degraded["hit_served_during_outage"]
    assert degraded["degraded_identical"]
