"""Unit tests of the content-addressed chunk layer."""

import numpy as np
import pytest

from repro.config import ArchiveConfig
from repro.errors import StorageError
from repro.storage.chunk_index import (
    PACKS_COLLECTION,
    REFS_COLLECTION,
    REFS_DOC_ID,
    ChunkStore,
)
from repro.storage.document_store import DocumentStore
from repro.storage.file_store import FileStore
from repro.storage.hashing import hash_bytes


def make_store():
    return ChunkStore(FileStore(), DocumentStore())


def refs(payloads):
    """(digest, bytes) reference pairs for a list of payloads."""
    return [(hash_bytes(p), p) for p in payloads]


class TestIngest:
    def test_unique_chunks_stored_once(self):
        store = make_store()
        a, b = b"alpha" * 100, b"beta" * 100
        report = store.ingest(refs([a, b, a, a, b]), pack_id="p0")
        assert report.chunks_total == 5
        assert report.chunks_new == 2
        assert report.chunks_deduped == 3
        assert report.bytes_new == len(a) + len(b)
        assert report.bytes_deduped == 2 * len(a) + len(b)
        assert len(store) == 2
        assert store.total_references() == 5

    def test_cross_pack_dedup_elides_file_ops(self):
        store = make_store()
        a = b"shared" * 200
        store.ingest(refs([a]), pack_id="p0")
        writes_before = store.file_store.stats.writes
        report = store.ingest(refs([a, a]), pack_id="p1")
        # Fully deduplicated save: no pack artifact, no file write at all.
        assert report.pack_artifact is None
        assert store.file_store.stats.writes == writes_before
        assert store.references(hash_bytes(a)) == 3

    def test_deferred_serialization_only_for_new_chunks(self):
        store = make_store()
        a = b"x" * 64
        store.ingest(refs([a]), pack_id="p0")
        calls = []

        def produce():
            calls.append(1)
            return a

        with store.open_ingest("p1") as session:
            session.add(hash_bytes(a), produce)
        assert not calls  # dedup hit: bytes never materialized

    def test_abort_leaves_no_trace(self):
        store = make_store()
        with pytest.raises(RuntimeError):
            with store.open_ingest("p0") as session:
                session.add(hash_bytes(b"data"), b"data")
                raise RuntimeError("boom")
        assert len(store) == 0
        assert store.file_store.total_bytes() == 0
        assert not store.document_store._collections.get(PACKS_COLLECTION)

    def test_stats_counters(self):
        store = make_store()
        a, b = b"one" * 50, b"two" * 50
        store.ingest(refs([a, b, a]), pack_id="p0")
        stats = store.file_store.stats
        assert stats.chunks_total == 3
        assert stats.chunks_deduped == 1
        assert stats.chunk_bytes_deduped == len(a)
        assert stats.dedup_ratio == pytest.approx(1 / 3)


class TestFetch:
    def test_roundtrip_and_single_read_per_pack(self):
        store = make_store()
        payloads = [bytes([i]) * (100 + i) for i in range(8)]
        store.ingest(refs(payloads), pack_id="p0")
        reads_before = store.file_store.stats.reads
        out = store.fetch([hash_bytes(p) for p in payloads])
        # All chunks of one pack are adjacent: one vectored read.
        assert store.file_store.stats.reads == reads_before + 1
        for p in payloads:
            assert out[hash_bytes(p)] == p

    def test_duplicate_requests_fetched_once(self):
        store = make_store()
        a = b"dup" * 100
        store.ingest(refs([a]), pack_id="p0")
        bytes_before = store.file_store.stats.bytes_read
        out = store.fetch([hash_bytes(a)] * 10)
        assert store.file_store.stats.bytes_read == bytes_before + len(a)
        assert out == {hash_bytes(a): a}

    def test_unknown_digest_raises(self):
        store = make_store()
        with pytest.raises(StorageError):
            store.fetch(["0" * 64])


class TestRefcountsAndSweep:
    def test_release_then_sweep_reclaims_exactly_dead_bytes(self):
        store = make_store()
        a, b, c = b"a" * 100, b"b" * 200, b"c" * 300
        store.ingest(refs([a, b]), pack_id="p0")
        store.ingest(refs([b, c]), pack_id="p1")
        # Drop the first save's references; b stays alive via the second.
        store.release([hash_bytes(a), hash_bytes(b)])
        assert store.dead_bytes() == len(a)
        report = store.sweep()
        assert report.chunks_reclaimed == 1
        assert report.bytes_reclaimed == len(a)
        assert store.dead_bytes() == 0
        assert hash_bytes(a) not in store
        # Survivors still fetch correctly after the pack rewrite.
        out = store.fetch([hash_bytes(b), hash_bytes(c)])
        assert out[hash_bytes(b)] == b and out[hash_bytes(c)] == c

    def test_sweep_deletes_fully_dead_packs(self):
        store = make_store()
        a, b = b"a" * 100, b"b" * 100
        r0 = store.ingest(refs([a]), pack_id="p0")
        r1 = store.ingest(refs([b]), pack_id="p1")
        store.release([hash_bytes(a)])
        report = store.sweep()
        assert report.packs_deleted == [r0.pack_artifact]
        assert not report.packs_rewritten
        assert not store.file_store.exists(r0.pack_artifact)
        assert store.file_store.exists(r1.pack_artifact)

    def test_sweep_rewrites_mixed_packs(self):
        store = make_store()
        a, b, c = b"a" * 100, b"b" * 100, b"c" * 100
        r0 = store.ingest(refs([a, b, c]), pack_id="p0")
        store.release([hash_bytes(b)])
        report = store.sweep()
        assert report.packs_rewritten == [f"{r0.pack_artifact}-gc"]
        assert not store.file_store.exists(r0.pack_artifact)
        assert store.file_store.total_bytes() == len(a) + len(c)
        out = store.fetch([hash_bytes(a), hash_bytes(c)])
        assert out[hash_bytes(a)] == a and out[hash_bytes(c)] == c

    def test_sweep_noop_when_everything_alive(self):
        store = make_store()
        store.ingest(refs([b"live" * 50]), pack_id="p0")
        report = store.sweep()
        assert report.chunks_reclaimed == 0
        assert not report.packs_deleted and not report.packs_rewritten

    def test_release_unknown_digest_raises(self):
        store = make_store()
        with pytest.raises(StorageError):
            store.release(["f" * 64])


class TestPersistence:
    def test_index_rebuilds_from_document_store(self):
        file_store, document_store = FileStore(), DocumentStore()
        store = ChunkStore(file_store, document_store)
        a, b = b"a" * 123, b"b" * 456
        store.ingest(refs([a, b, a]), pack_id="p0")
        # A second ChunkStore over the same substrates sees everything.
        reopened = ChunkStore(file_store, document_store)
        assert len(reopened) == 2
        assert reopened.references(hash_bytes(a)) == 2
        assert reopened.references(hash_bytes(b)) == 1
        out = reopened.fetch([hash_bytes(a), hash_bytes(b)])
        assert out[hash_bytes(a)] == a and out[hash_bytes(b)] == b
        # And continues deduplicating against the persisted index.
        report = reopened.ingest(refs([a]), pack_id="p1")
        assert report.chunks_new == 0 and report.chunks_deduped == 1

    def test_ledger_document_tracks_refcounts(self):
        store = make_store()
        a = b"a" * 100
        store.ingest(refs([a, a]), pack_id="p0")
        ledger = store.document_store._collections[REFS_COLLECTION][REFS_DOC_ID]
        assert ledger["refs"][hash_bytes(a)] == 2
        store.release([hash_bytes(a)])
        ledger = store.document_store._collections[REFS_COLLECTION][REFS_DOC_ID]
        assert ledger["refs"][hash_bytes(a)] == 1


class TestNumpyKeys:
    def test_float32_layer_digest_matches_hash_array(self):
        # The Update approach's full-length layer hashes double as chunk
        # keys: sha256(tobytes of the contiguous float32 array).
        from repro.storage.hashing import hash_array

        rng = np.random.default_rng(7)
        arr = rng.normal(size=(16, 3)).astype(np.float32)
        payload = np.ascontiguousarray(arr, dtype=np.float32).tobytes()
        assert hash_array(arr, length=64) == hash_bytes(payload)


class TestQuarantineAndRepair:
    def test_fetch_refuses_quarantined_chunks(self):
        from repro.errors import ChunkCorruptionError

        store = make_store()
        a = b"healthy" * 100
        store.ingest(refs([a]), pack_id="p0")
        store.quarantine([hash_bytes(a)])
        with pytest.raises(ChunkCorruptionError):
            store.fetch([hash_bytes(a)])
        assert store.quarantined_digests() == [hash_bytes(a)]

    def test_quarantine_unknown_digest_raises(self):
        store = make_store()
        with pytest.raises(StorageError):
            store.quarantine(["0" * 64])

    def test_fetch_verified_detects_and_quarantines(self):
        from repro.storage.faults import corrupt_artifact

        store = make_store()
        a, b = b"alpha" * 100, b"beta" * 100
        report = store.ingest(refs([a, b]), pack_id="p0")
        chunk = store._chunks[hash_bytes(a)]
        corrupt_artifact(store.file_store, report.pack_artifact, offset=chunk.offset)
        values, corrupted = store.fetch_verified([hash_bytes(a), hash_bytes(b)])
        assert corrupted == {hash_bytes(a)}
        assert values == {hash_bytes(b): b}
        assert store.quarantined_digests() == [hash_bytes(a)]
        # Already-quarantined chunks are reported without a read.
        _values, again = store.fetch_verified([hash_bytes(a)])
        assert again == {hash_bytes(a)}

    def test_fetch_verified_survives_a_missing_pack(self):
        store = make_store()
        a, b = b"alpha" * 100, b"beta" * 100
        r0 = store.ingest(refs([a]), pack_id="p0")
        store.ingest(refs([b]), pack_id="p1")
        store.file_store.delete(r0.pack_artifact)
        values, corrupted = store.fetch_verified([hash_bytes(a), hash_bytes(b)])
        # Only the chunks of the lost pack are damaged.
        assert corrupted == {hash_bytes(a)}
        assert values == {hash_bytes(b): b}

    def test_quarantine_survives_index_rebuild(self):
        file_store, document_store = FileStore(), DocumentStore()
        store = ChunkStore(file_store, document_store)
        a = b"alpha" * 100
        store.ingest(refs([a]), pack_id="p0")
        store.quarantine([hash_bytes(a)])
        reopened = ChunkStore(file_store, document_store)
        assert reopened.quarantined_digests() == [hash_bytes(a)]

    def test_reingest_heals_a_quarantined_chunk(self):
        store = make_store()
        a = b"alpha" * 100
        store.ingest(refs([a, a]), pack_id="p0")
        store.quarantine([hash_bytes(a)])
        report = store.ingest(refs([a]), pack_id="p1")
        # The quarantined copy counts as absent: the bytes are re-stored.
        assert report.chunks_new == 1
        assert store.quarantined_digests() == []
        assert store.references(hash_bytes(a)) == 3  # prior refs preserved
        assert store.fetch([hash_bytes(a)])[hash_bytes(a)] == a

    def test_healed_chunk_survives_index_rebuild(self):
        # The old pack's entry is marked superseded, so a rebuild must
        # resolve the digest to the healthy replacement copy — not
        # resurrect the corrupt location.
        from repro.storage.faults import corrupt_artifact

        file_store, document_store = FileStore(), DocumentStore()
        store = ChunkStore(file_store, document_store)
        a, b = b"alpha" * 100, b"beta" * 100
        r0 = store.ingest(refs([a, b]), pack_id="p0")
        chunk = store._chunks[hash_bytes(a)]
        corrupt_artifact(file_store, r0.pack_artifact, offset=chunk.offset)
        store.quarantine([hash_bytes(a)])
        store.ingest(refs([a]), pack_id="p1")
        reopened = ChunkStore(file_store, document_store)
        assert reopened.quarantined_digests() == []
        out = reopened.fetch([hash_bytes(a), hash_bytes(b)])
        assert out[hash_bytes(a)] == a and out[hash_bytes(b)] == b

    def test_repair_replaces_the_bytes_in_place(self):
        from repro.storage.faults import corrupt_artifact

        file_store, document_store = FileStore(), DocumentStore()
        store = ChunkStore(file_store, document_store)
        a = b"alpha" * 100
        r0 = store.ingest(refs([a, a, a]), pack_id="p0")
        corrupt_artifact(file_store, r0.pack_artifact)
        store.quarantine([hash_bytes(a)])
        store.repair(hash_bytes(a), a)
        assert store.quarantined_digests() == []
        assert store.references(hash_bytes(a)) == 3
        assert store.fetch([hash_bytes(a)])[hash_bytes(a)] == a
        # And the repair wins over the superseded pack after a rebuild.
        reopened = ChunkStore(file_store, document_store)
        assert reopened.fetch([hash_bytes(a)])[hash_bytes(a)] == a

    def test_repair_rejects_wrong_bytes(self):
        from repro.errors import ChunkCorruptionError

        store = make_store()
        a = b"alpha" * 100
        store.ingest(refs([a]), pack_id="p0")
        with pytest.raises(ChunkCorruptionError):
            store.repair(hash_bytes(a), b"not the content")

    def test_sweep_preserves_quarantine_flags(self):
        store = make_store()
        a, b, c = b"a" * 100, b"b" * 100, b"c" * 100
        store.ingest(refs([a, b, c]), pack_id="p0")
        store.quarantine([hash_bytes(a)])
        store.release([hash_bytes(b)])
        store.sweep()
        assert store.quarantined_digests() == [hash_bytes(a)]


class TestGCCrashConsistency:
    """Satellite: a crash mid-GC (even mid-sweep) must neither leak
    zero-reference chunks nor delete chunks a surviving set still uses."""

    def _build_archive(self, directory):
        from repro.core.manager import MultiModelManager
        from repro.core.model_set import ModelSet

        manager = MultiModelManager.open(str(directory), "update", ArchiveConfig(dedup=True))
        models = ModelSet.build("FFNN-48", num_models=3, seed=0)
        base = manager.save_set(models)
        derived = models.copy()
        derived.state(0)["0.bias"][:] += 1.0
        derived.state(2)["4.weight"][:] *= 1.5
        second = manager.save_set(derived, base_set_id=base)
        return base, second, models, derived

    def test_crash_at_every_gc_fault_point_recovers_consistent(self, tmp_path):
        import shutil

        from repro.core.fsck import ArchiveFsck
        from repro.core.manager import MultiModelManager
        from repro.core.retention import RetentionManager
        from repro.errors import SimulatedCrashError
        from repro.storage.faults import FaultInjector, inject_faults

        template = tmp_path / "template"
        base, second, models, derived = self._build_archive(template)

        # Dry run: count the pass's fault points without firing any.
        probe = tmp_path / "probe"
        shutil.copytree(template, probe)
        probe_manager = MultiModelManager.open(str(probe), "update", ArchiveConfig(dedup=True))
        injector = inject_faults(probe_manager.context, FaultInjector())
        RetentionManager(probe_manager.context).keep_last(1)
        ops = injector.ops
        assert ops > 0

        for point in range(ops):
            workdir = tmp_path / f"crash-{point}"
            shutil.copytree(template, workdir)
            manager = MultiModelManager.open(str(workdir), "update", ArchiveConfig(dedup=True))
            inject_faults(
                manager.context, FaultInjector(seed=point, crash_at=point)
            )
            with pytest.raises(SimulatedCrashError):
                RetentionManager(manager.context).keep_last(1)

            reopened = MultiModelManager.open(str(workdir), "update", ArchiveConfig(dedup=True))
            assert not reopened.recovery_report.clean
            # Both sets survive (the GC never half-applies) and recover
            # byte-identically; the chunk ledger balances exactly.
            assert reopened.list_sets() == [base, second]
            assert reopened.recover_set(base).equals(models)
            assert reopened.recover_set(second).equals(derived)
            report = ArchiveFsck(reopened.context).run()
            assert report.ok, f"crash at op {point}: {report.summary()}"

    def test_completed_gc_passes_fsck(self, tmp_path):
        from repro.core.fsck import ArchiveFsck
        from repro.core.manager import MultiModelManager
        from repro.core.retention import RetentionManager

        base, second, _models, derived = self._build_archive(tmp_path)
        manager = MultiModelManager.open(str(tmp_path), "update", ArchiveConfig(dedup=True))
        RetentionManager(manager.context).keep_last(1)
        reopened = MultiModelManager.open(str(tmp_path), "update", ArchiveConfig(dedup=True))
        assert reopened.list_sets() == [second]
        assert reopened.recover_set(second).equals(derived)
        report = ArchiveFsck(reopened.context).run()
        assert report.ok, report.summary()
