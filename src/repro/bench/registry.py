"""Registry query benchmark: catalog latency over a long version chain.

Builds an in-memory update-approach archive with one synthetic family of
``versions`` delta saves (each perturbing a single layer, the shape a
long fine-tuning run leaves behind), then times the public query surface
— ``families`` / ``versions`` / ``resolve`` / ``derived_from`` /
``diff`` — against the populated catalog.

The headline claim measured here is the one the registry exists for:
``diff`` answers layer-level change sets from stored hash metadata with
**zero parameter-byte reads**, no matter how long the chain is.  The
report carries the file-store stats delta observed around the diff calls
so the benchmark (and CI) can assert it, not just state it.
"""

import json
import statistics
import time
from pathlib import Path
from typing import Any

from repro.core.manager import MultiModelManager
from repro.core.model_set import ModelSet
from repro.core.save_info import SetMetadata

FAMILY = "bench"


def _build_chain(
    versions: int, num_models: int, architecture: str
) -> tuple[MultiModelManager, list[str]]:
    manager = MultiModelManager.with_approach("update")
    models = ModelSet.build(architecture, num_models=num_models, seed=0)
    names = models.schema.layer_names()
    set_ids = [
        manager.save_set(models, metadata=SetMetadata(extra={"family": FAMILY}))
    ]
    for step in range(versions - 1):
        models = models.copy()
        state = models.state(step % num_models)
        name = names[step % len(names)]
        state[name] = (state[name] + 0.25).astype(state[name].dtype)
        set_ids.append(manager.save_set(models, base_set_id=set_ids[-1]))
    return manager, set_ids


def _timed(fn, repeats: int) -> dict[str, float]:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e3)
    return {
        "mean_ms": statistics.fmean(samples),
        "p50_ms": statistics.median(samples),
        "max_ms": max(samples),
    }


def run_registry_benchmark(
    versions: int = 500,
    num_models: int = 4,
    architecture: str = "FFNN-48",
    repeats: int = 25,
) -> dict[str, Any]:
    build_start = time.perf_counter()
    manager, set_ids = _build_chain(versions, num_models, architecture)
    build_s = time.perf_counter() - build_start
    registry = manager.context.registry
    root, head = set_ids[0], set_ids[-1]
    mid = set_ids[len(set_ids) // 2]

    queries = {
        "families": lambda: registry.families(),
        "versions": lambda: registry.versions(FAMILY),
        "resolve_latest": lambda: registry.resolve(FAMILY),
        "derived_from_transitive": lambda: registry.derived_from(
            root, transitive=True
        ),
        "diff_adjacent": lambda: registry.diff(mid, head),
        "diff_root_to_head": lambda: registry.diff(root, head),
    }

    # Stats delta around the diff timing loops proves the layer-level
    # change sets come from stored hashes, not recovered parameters.
    before = manager.context.file_store.stats.snapshot()
    latency = {name: _timed(fn, repeats) for name, fn in queries.items()}
    delta = manager.context.file_store.stats.delta_since(before)

    head_diff = registry.diff(root, head)
    return {
        "config": {
            "versions": versions,
            "num_models": num_models,
            "architecture": architecture,
            "repeats": repeats,
        },
        "build_s": build_s,
        "catalog": {
            "families": len(registry.families()),
            "versions_in_family": len(registry.versions(FAMILY)),
            "resolved_latest": registry.resolve(FAMILY),
        },
        "diff_root_to_head": {
            "source": head_diff.source,
            "models_changed": len(head_diff.changed),
        },
        "latency": latency,
        "stats": {
            "parameter_reads": delta.reads,
            "parameter_bytes_read": delta.bytes_read,
        },
    }


def write_report(report: dict[str, Any], path: "str | Path") -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def format_report(report: dict[str, Any]) -> str:
    """Human-readable registry-latency summary."""
    config = report["config"]
    stats = report["stats"]
    lines = [
        "Registry queries — {versions}-version {architecture} family "
        "x {num_models} models ({repeats} repeats)".format(**config),
        "",
        f"build      : {report['build_s']:.2f}s to save the chain",
        f"diff       : root->head touches "
        f"{report['diff_root_to_head']['models_changed']} models "
        f"(source: {report['diff_root_to_head']['source']}), "
        f"{stats['parameter_bytes_read']:,} parameter bytes read "
        f"({stats['parameter_reads']} reads)",
    ]
    for name, timing in sorted(report["latency"].items()):
        lines.append(
            f"{name:<24}: p50 {timing['p50_ms']:.2f}ms  "
            f"mean {timing['mean_ms']:.2f}ms  max {timing['max_ms']:.2f}ms"
        )
    return "\n".join(lines)
