"""Tests for the Update approach's diff granularity (ablation A5)."""

import numpy as np
import pytest

from repro.core.model_set import ModelSet
from repro.core.update import UpdateApproach


@pytest.fixture
def models():
    return ModelSet.build("FFNN-48", num_models=8, seed=0)


def partial_change(models, model_index):
    derived = models.copy()
    derived.state(model_index)["4.weight"] = (
        derived.state(model_index)["4.weight"] + 0.5
    ).astype(np.float32)
    return derived


class TestModelGranularity:
    def test_roundtrip(self, context, models):
        approach = UpdateApproach(context, granularity="model")
        base_id = approach.save_initial(models)
        derived = partial_change(models, 3)
        set_id = approach.save_derived(derived, base_id)
        assert approach.recover(set_id).equals(derived)

    def test_stores_whole_model_on_any_change(self, context, models):
        approach = UpdateApproach(context, granularity="model")
        base_id = approach.save_initial(models)
        derived = partial_change(models, 3)
        before = context.file_store.stats.bytes_written
        approach.save_derived(derived, base_id)
        written = context.file_store.stats.bytes_written - before
        assert written == models.schema.num_bytes  # full model, not one layer

    def test_layer_granularity_stores_less_for_partial_updates(
        self, context, models
    ):
        layer = UpdateApproach(type(context).create(), granularity="layer")
        model = UpdateApproach(type(context).create(), granularity="model")
        results = {}
        for name, approach in (("layer", layer), ("model", model)):
            base_id = approach.save_initial(models)
            derived = partial_change(models, 2)
            before = approach.context.file_store.stats.bytes_written
            approach.save_derived(derived, base_id)
            results[name] = (
                approach.context.file_store.stats.bytes_written - before
            )
        assert results["layer"] < results["model"]

    def test_equal_cost_for_full_updates(self, context, models):
        # When every layer changed, the granularities converge.
        layer = UpdateApproach(type(context).create(), granularity="layer")
        model = UpdateApproach(type(context).create(), granularity="model")
        results = {}
        for name, approach in (("layer", layer), ("model", model)):
            base_id = approach.save_initial(models)
            derived = models.copy()
            for key in derived.state(5):
                derived.state(5)[key] = (derived.state(5)[key] + 1.0).astype(
                    np.float32
                )
            before = approach.context.file_store.stats.bytes_written
            approach.save_derived(derived, base_id)
            results[name] = (
                approach.context.file_store.stats.bytes_written - before
            )
        assert results["layer"] == results["model"]

    def test_granularity_recorded_in_document(self, context, models):
        approach = UpdateApproach(context, granularity="model")
        base_id = approach.save_initial(models)
        set_id = approach.save_derived(partial_change(models, 0), base_id)
        assert context.set_document(set_id)["granularity"] == "model"

    def test_invalid_granularity_rejected(self, context):
        with pytest.raises(ValueError):
            UpdateApproach(context, granularity="tensor")

    def test_single_model_recovery_under_model_granularity(self, context, models):
        approach = UpdateApproach(context, granularity="model")
        base_id = approach.save_initial(models)
        derived = partial_change(models, 3)
        set_id = approach.save_derived(derived, base_id)
        state = approach.recover_model(set_id, 3)
        expected = derived.state(3)
        assert all(np.array_equal(state[k], expected[k]) for k in expected)
