"""Property-based tests over the serving cache.

The serving invariant: for ANY interleaving of saves, recoveries,
deletions, GC sweeps, scrubs, and cache evictions, a recovery routed
through the tiered cache returns bytes identical to what a fresh
uncached recovery of the same set returns at that moment.  The cache
may change *when* bytes are fetched, never *which* bytes come back —
including after invalidation events have dropped entries, and including
degraded reads that fail over to a surviving replica while a stale
tier-1 entry for the pre-outage world has been evicted.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ArchiveConfig, ServingConfig
from repro.core.manager import MultiModelManager
from repro.core.model_set import ModelSet
from repro.core.retention import RetentionManager

ARCH = "FFNN-48"

#: Operation alphabet for the interleaving machine.  Each op is a
#: (kind, seeded payload) pair; set targets are resolved modulo the
#: live-set count at execution time.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("save"), st.integers(0, 7)),
        st.tuples(st.just("recover"), st.integers(0, 7)),
        st.tuples(st.just("recover_model"), st.integers(0, 7)),
        st.tuples(st.just("gc"), st.integers(0, 7)),
        st.tuples(st.just("evict"), st.booleans()),
        st.tuples(st.just("scrub"), st.booleans()),
    ),
    min_size=3,
    max_size=12,
)


def _perturb(model_set: ModelSet, seed: int) -> ModelSet:
    rng = np.random.default_rng(seed)
    derived = model_set.copy()
    state = derived.state(int(rng.integers(0, len(derived))))
    name = list(state)[int(rng.integers(0, len(state)))]
    state[name] = (state[name] + np.float32(rng.standard_normal())).astype(
        np.float32
    )
    return derived


def assert_bytes_identical(recovered, reference):
    for index in range(len(reference.states)):
        for name, values in reference.state(index).items():
            assert (
                recovered.state(index)[name].tobytes() == values.tobytes()
            ), (index, name)


class TestCacheOracleEquivalence:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        ops=OPS,
        approach=st.sampled_from(["baseline", "update"]),
        dedup=st.booleans(),
    )
    def test_any_interleaving_serves_oracle_bytes(self, ops, approach, dedup):
        config = ArchiveConfig(
            dedup=dedup,
            serving=ServingConfig(enabled=True, set_cache_bytes=1 << 20),
        )
        manager = MultiModelManager.with_approach(approach, config)
        base = ModelSet.build(ARCH, num_models=2, seed=0)
        live = {manager.save_set(base): base}
        newest = next(iter(live))
        for kind, payload in ops:
            set_ids = sorted(live)
            target = set_ids[payload % len(set_ids)] if set_ids else None
            if kind == "save":
                derived = _perturb(live[newest], payload)
                newest = manager.save_set(derived, base_set_id=newest)
                live[newest] = derived
            elif kind == "recover":
                served = manager.recover_set(target)
                assert_bytes_identical(served, live[target])
            elif kind == "recover_model":
                index = payload % len(live[target])
                state = manager.recover_model(target, index)
                reference = live[target].state(index)
                for name in reference:
                    assert state[name].tobytes() == reference[name].tobytes()
            elif kind == "gc":
                if target != newest:
                    RetentionManager(manager.context).collect(
                        keep=[s for s in set_ids if s != target]
                    )
                    # GC keeps chain ancestors alive; drop only what is gone.
                    remaining = set(manager.list_sets())
                    live = {s: m for s, m in live.items() if s in remaining}
            elif kind == "evict":
                manager.context.serving.evict(chunks=payload)
            elif kind == "scrub":
                if dedup and payload:
                    manager.context.chunk_store().sweep()
        # Every surviving set still round-trips byte-identically, twice
        # (cold-or-warm, then certainly warm).
        for set_id, reference in live.items():
            assert_bytes_identical(manager.recover_set(set_id), reference)
            assert_bytes_identical(manager.recover_set(set_id), reference)
            oracle = manager.approach.recover(set_id)
            assert_bytes_identical(oracle, reference)


class TestDegradedReads:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        replica=st.integers(0, 1),
        dedup=st.booleans(),
        seed=st.integers(0, 5),
    )
    def test_replica_down_bypasses_stale_entry_and_matches_oracle(
        self, replica, dedup, seed
    ):
        from repro.storage.faults import FaultInjector, inject_replica_faults

        config = ArchiveConfig(
            replicas=2,
            dedup=dedup,
            serving=ServingConfig(enabled=True),
        )
        manager = MultiModelManager.with_approach("update", config)
        base = ModelSet.build(ARCH, num_models=2, seed=seed)
        base_id = manager.save_set(base)
        derived = _perturb(base, seed)
        derived_id = manager.save_set(derived, base_set_id=base_id)
        manager.recover_set(derived_id)  # warm tier 1
        inject_replica_faults(
            manager.context,
            replica,
            FaultInjector(down_at=0, down_mode="before"),
        )
        # A warm hit still serves the correct bytes during the outage.
        assert_bytes_identical(manager.recover_set(derived_id), derived)
        # Drop the (now stale-by-scenario) entry: the cold re-read must
        # fail over to the surviving replica, not serve the dead one.
        manager.context.serving.evict(chunks=True)
        assert_bytes_identical(manager.recover_set(derived_id), derived)
        assert_bytes_identical(
            manager.approach.recover(derived_id), derived
        )
