"""Capture of the training environment.

Provenance information includes "detailed soft and hardware information"
(§2.2) so a recovered training run can verify it executes in a compatible
environment.  MMlib-base saves this same record *per model* — one of the
redundancies (O1/O2) the set-oriented approaches eliminate.
"""

from __future__ import annotations

import platform
import sys
from dataclasses import asdict, dataclass

import numpy as np


@dataclass(frozen=True)
class EnvironmentInfo:
    """Software and hardware description of a training environment."""

    python_version: str
    numpy_version: str
    platform: str
    machine: str
    processor: str
    library_version: str

    def to_json(self) -> dict[str, str]:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict[str, str]) -> "EnvironmentInfo":
        return cls(**data)

    def is_compatible_with(self, other: "EnvironmentInfo") -> bool:
        """Whether deterministic replay across the two environments is safe.

        Bit-exact float32 replay requires matching numpy and Python
        versions; the hardware fields are informational.
        """
        return (
            self.numpy_version == other.numpy_version
            and self.python_version == other.python_version
        )


def capture_environment() -> EnvironmentInfo:
    """Capture the current process's environment."""
    from repro import __version__

    return EnvironmentInfo(
        python_version=sys.version.split()[0],
        numpy_version=np.__version__,
        platform=platform.platform(),
        machine=platform.machine(),
        processor=platform.processor() or "unknown",
        library_version=__version__,
    )
