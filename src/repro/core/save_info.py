"""Descriptors accompanying a save: set metadata and update provenance."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.datasets.registry import DatasetRef
from repro.training.pipeline import PipelineConfig


@dataclass(frozen=True)
class SetMetadata:
    """User-facing metadata of one saved model set.

    Kept deliberately small: the paper's Baseline minimizes "the amount of
    saved metadata" and our accounting should reflect a lean record.
    """

    use_case: str = ""
    description: str = ""
    extra: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "use_case": self.use_case,
            "description": self.description,
            "extra": self.extra,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "SetMetadata":
        return cls(
            use_case=str(data.get("use_case", "")),
            description=str(data.get("description", "")),
            extra=dict(data.get("extra", {})),
        )


@dataclass(frozen=True)
class ModelUpdate:
    """Provenance of one model's update within an update cycle.

    Attributes
    ----------
    model_index:
        Position of the model in the set.
    dataset_ref:
        Reference to the (externally stored) training data used.
    pipeline_key:
        Key into :attr:`UpdateInfo.pipelines` naming the training
        procedure variant ("full" or "partial" in the default scenario).
    """

    model_index: int
    dataset_ref: DatasetRef
    pipeline_key: str

    def to_json(self) -> list[Any]:
        # Compact positional encoding: these records dominate the
        # Provenance approach's per-model storage cost.
        return [self.model_index, self.dataset_ref.to_json(), self.pipeline_key]

    @classmethod
    def from_json(cls, data: list[Any]) -> "ModelUpdate":
        index, ref, key = data
        return cls(
            model_index=int(index),
            dataset_ref=DatasetRef.from_json(ref),
            pipeline_key=str(key),
        )


@dataclass(frozen=True)
class UpdateInfo:
    """Complete provenance of one update cycle over a model set.

    The training procedure "differs only by the used data" (§3.4,
    assumption 1) up to a small number of named variants — full and
    partial updates in the paper's scenario — so pipelines are stored
    once here and per-model records only carry a key.
    """

    pipelines: dict[str, PipelineConfig]
    updates: tuple[ModelUpdate, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "updates", tuple(self.updates))
        missing = {u.pipeline_key for u in self.updates} - set(self.pipelines)
        if missing:
            raise ValueError(f"updates reference unknown pipeline keys: {missing}")

    @property
    def updated_indices(self) -> list[int]:
        return [update.model_index for update in self.updates]

    def to_json(self) -> dict[str, Any]:
        return {
            "pipelines": {
                key: config.to_json() for key, config in self.pipelines.items()
            },
            "updates": [update.to_json() for update in self.updates],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "UpdateInfo":
        return cls(
            pipelines={
                key: PipelineConfig.from_json(config)
                for key, config in data["pipelines"].items()
            },
            updates=tuple(ModelUpdate.from_json(item) for item in data["updates"]),
        )
