"""Property-based tests over the newer approaches and their invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.approach import SaveContext
from repro.core.model_set import ModelSet
from repro.core.pas import PasDeltaApproach
from repro.core.quantized import QuantizedBaselineApproach

#: Arbitrary float32 bit patterns, including NaN/Inf/subnormals: the
#: XOR-delta codec must round-trip *any* parameter value bit-exactly.
float_bits = st.integers(min_value=0, max_value=2**32 - 1)


def bits_to_model_set(bit_lists):
    """Build a 2-model FFNN-48 set whose first-layer bias carries the
    given raw bit patterns (48 values per model)."""
    models = ModelSet.build("FFNN-48", num_models=2, seed=0)
    for model_index, bits in enumerate(bit_lists):
        values = np.array(bits, dtype=np.uint32).view(np.float32)
        state = models.state(model_index)
        state["0.bias"] = values.reshape(state["0.bias"].shape).copy()
    return models


class TestPasDeltaProperties:
    @given(
        base_bits=st.lists(float_bits, min_size=48, max_size=48),
        new_bits=st.lists(float_bits, min_size=48, max_size=48),
    )
    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_xor_delta_roundtrips_any_bit_pattern(self, base_bits, new_bits):
        base = bits_to_model_set([base_bits, base_bits])
        derived = bits_to_model_set([new_bits, base_bits])
        approach = PasDeltaApproach(SaveContext.create())
        base_id = approach.save_initial(base)
        set_id = approach.save_derived(derived, base_id)
        recovered = approach.recover(set_id)
        for index in range(2):
            for name in derived.state(index):
                assert (
                    recovered.state(index)[name].tobytes()
                    == derived.state(index)[name].tobytes()
                ), name

    @given(
        chain_length=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_chain_of_any_length_recovers(self, chain_length, seed):
        rng = np.random.default_rng(seed)
        approach = PasDeltaApproach(SaveContext.create())
        current = ModelSet.build("FFNN-48", num_models=3, seed=0)
        ids = [approach.save_initial(current)]
        history = [current]
        for _step in range(chain_length):
            current = current.copy()
            model_index = int(rng.integers(3))
            state = current.state(model_index)
            state["2.weight"] = (
                state["2.weight"] + rng.normal(0, 0.1, size=state["2.weight"].shape)
            ).astype(np.float32)
            ids.append(approach.save_derived(current, ids[-1]))
            history.append(current)
        # Every generation along the chain recovers bit-exactly.
        for set_id, expected in zip(ids, history):
            assert approach.recover(set_id).equals(expected)


class TestQuantizedProperties:
    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_fp16_error_always_bounded(self, seed):
        models = ModelSet.build("FFNN-48", num_models=2, seed=seed)
        approach = QuantizedBaselineApproach(SaveContext.create())
        set_id = approach.save_initial(models)
        recovered = approach.recover(set_id)
        # Kaiming-initialized weights are well inside fp16's normal
        # range, so the roundtrip error obeys the half-precision epsilon.
        assert recovered.equals(models, atol=1e-3)
        assert not recovered.equals(models)  # and is genuinely lossy

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_quantization_is_idempotent(self, seed):
        """Saving an already-quantized set loses nothing further."""
        models = ModelSet.build("FFNN-48", num_models=1, seed=seed)
        approach = QuantizedBaselineApproach(SaveContext.create())
        once = approach.recover(approach.save_initial(models))
        twice = approach.recover(approach.save_initial(once))
        assert twice.equals(once)  # bit-exact the second time
