"""E6 — Figure 5: median time-to-recover per use case, M1 and server.

Times recovery of every saved set.  Shape claims from the paper:
MMlib-base and Baseline are flat across use cases (independent sets),
MMlib-base is far slower (per-model round trips), and Update shows the
staircase caused by its recursive chain recovery.  The Update series is
therefore pinned to ``recovery="replay"`` — the engine's default
delta-chain compaction flattens exactly this staircase, and its payoff
is measured separately in ``bench_parallel_scaling.py``.  The Provenance
staircase is covered in ``bench_provenance_training.py``, mirroring the
paper's reduced-training methodology (§4.4).
"""

import pytest

from benchmarks.conftest import record_series
from repro.bench.metrics import measure_recover
from repro.bench.runner import _save_all
from repro.storage.hardware import M1_PROFILE, SERVER_PROFILE

PROFILES = {"server": SERVER_PROFILE, "m1": M1_PROFILE}


@pytest.mark.parametrize("profile_name", sorted(PROFILES))
@pytest.mark.parametrize("approach", ("mmlib-base", "baseline", "update"))
def test_ttr_per_use_case(benchmark, cases, approach, profile_name):
    profile = PROFILES[profile_name]
    kwargs = {"recovery": "replay"} if approach == "update" else {}
    manager, set_ids, _saves = _save_all(approach, cases, profile, **kwargs)

    def run():
        return [measure_recover(manager, set_id)[1] for set_id in set_ids]

    measurements = benchmark.pedantic(run, rounds=3, iterations=1)
    ttr = [m.total_s for m in measurements]
    record_series(benchmark, {f"{approach}@{profile_name}": ttr}, unit="s")
    if approach == "update":
        # Staircase: recovering U3-3 walks a 3-delta chain.  Assert on
        # the deterministic read counts — wall time is noisy at the
        # reduced bench scale.
        reads = [m.reads for m in measurements]
        assert reads[3] > reads[2] > reads[1] > reads[0]


def test_baseline_ttr_flat_and_fastest(benchmark, cases):
    managers = {
        approach: _save_all(approach, cases, SERVER_PROFILE)[:2]
        for approach in ("mmlib-base", "baseline", "update")
    }

    def run():
        result = {}
        for approach, (manager, set_ids) in managers.items():
            result[approach] = [
                measure_recover(manager, set_id)[1] for set_id in set_ids
            ]
        return result

    measurements = benchmark.pedantic(run, rounds=3, iterations=1)
    baseline = [m.total_s for m in measurements["baseline"]]
    # Flat across use cases (within noise) and better than MMlib-base.
    assert max(baseline) < 5 * min(baseline) + 1e-3
    for index in range(4):
        assert baseline[index] < measurements["mmlib-base"][index].total_s
    # Update's final-set recovery does strictly more I/O than Baseline's
    # (base snapshot plus the delta chain) — deterministic at any scale.
    assert (
        measurements["update"][3].bytes_read
        > measurements["baseline"][3].bytes_read
    )
