"""Tests for the experiment driver: every experiment reproduces its
paper artifact's *shape* at small scale."""

import pytest

from repro.bench.runner import (
    APPROACH_NAMES,
    EXPERIMENTS,
    ExperimentSettings,
    main,
    run_experiment,
)

SMALL = ExperimentSettings(num_models=40, cycles=2, runs=1)


@pytest.fixture(scope="module")
def figure3_result():
    return run_experiment("figure3", SMALL)


class TestFigure3:
    def test_all_approaches_reported(self, figure3_result):
        assert set(figure3_result.data["series"]) == set(APPROACH_NAMES)

    def test_mmlib_base_worst_in_every_use_case(self, figure3_result):
        series = figure3_result.data["series"]
        for index in range(3):
            for approach in ("baseline", "update", "provenance"):
                assert series[approach][index] < series["mmlib-base"][index]

    def test_baseline_constant_across_use_cases(self, figure3_result):
        values = figure3_result.data["series"]["baseline"]
        assert max(values) - min(values) < 0.01 * max(values)

    def test_update_above_baseline_in_u1_then_far_below(self, figure3_result):
        series = figure3_result.data["series"]
        assert series["update"][0] > series["baseline"][0]
        assert series["update"][1] < 0.3 * series["baseline"][1]

    def test_provenance_u3_reduction_over_99_percent(self, figure3_result):
        series = figure3_result.data["series"]
        assert series["provenance"][1] < 0.01 * series["mmlib-base"][1]

    def test_baseline_beats_mmlib_by_20_to_35_percent(self, figure3_result):
        # Paper: 29% (server) / 33% (M1).
        series = figure3_result.data["series"]
        improvement = 1 - series["baseline"][0] / series["mmlib-base"][0]
        assert 0.15 < improvement < 0.40


class TestOtherExperiments:
    def test_update_rates_only_update_scales(self):
        result = run_experiment("update-rates", SMALL)
        per_rate = result.data["per_rate"]
        assert per_rate["30%"]["update"] > 2 * per_rate["10%"]["update"]
        assert per_rate["30%"]["baseline"] == pytest.approx(
            per_rate["10%"]["baseline"], rel=0.01
        )
        assert per_rate["30%"]["provenance"] < 0.05 * per_rate["10%"]["update"]

    def test_model_size_ratios_match_paper(self):
        result = run_experiment("model-size", SMALL)
        ratios = result.data["ratios"]
        assert 1.5 < ratios["mmlib-base"] < 1.9  # paper: 1.7
        assert 1.9 < ratios["baseline"] < 2.1  # paper: ~2.0
        assert ratios["provenance"] == pytest.approx(1.0, abs=0.05)

    def test_cifar_same_trends(self):
        result = run_experiment("cifar", SMALL)
        series = result.data["series"]
        assert series["baseline"][0] < series["mmlib-base"][0]
        assert series["provenance"][1] < 0.01 * series["baseline"][1]

    def test_figure4_tts_ordering(self):
        result = run_experiment("figure4", SMALL)
        series = result.data["series"]
        for index in range(3):
            assert series["baseline"][index] < series["mmlib-base"][index]
        # Update pays for hashing on top of Baseline's save path.
        assert series["update"][0] > series["baseline"][0]

    def test_figure5_staircase_and_constants(self):
        result = run_experiment("figure5", SMALL)
        series = result.data["series"]
        # Update TTR grows along the chain; baseline stays flat.
        assert series["update"][2] > series["update"][0]
        baseline = series["baseline"]
        assert max(baseline) < 3 * min(baseline) + 1e-3
        assert len(series["provenance"]) == 3

    def test_breakdown_accounts_parameters_exactly(self):
        result = run_experiment("breakdown", SMALL)
        baseline_u1 = result.data["data"]["baseline"][0]
        assert baseline_u1["parameters"] == result.data["params_bytes"]

    def test_snapshot_interval_tradeoff(self):
        result = run_experiment("snapshot-interval", SMALL)
        data = result.data["data"]
        # Snapshots cost storage but bound recovery time.
        assert data["2"]["storage_mb"] > data["none (paper)"]["storage_mb"]
        assert data["2"]["final_ttr_s"] <= data["none (paper)"]["final_ttr_s"] * 1.5

    def test_compression_preserves_recovery_and_reduces_storage(self):
        result = run_experiment("compression", SMALL)
        data = result.data["data"]
        assert data["shuffle-zlib"]["u3_storage_mb"] < data["none"]["u3_storage_mb"]

    def test_recommender_covers_three_regimes(self):
        result = run_experiment("recommender", SMALL)
        picks = set(result.data["recommendations"].values())
        assert picks == {"provenance", "update", "baseline"}

    def test_quantization_halves_storage_with_negligible_quality_loss(self):
        result = run_experiment("quantization", SMALL)
        storage = result.data["storage_mb"]
        assert storage["baseline-fp16"] == pytest.approx(
            storage["baseline"] / 2, rel=0.01
        )
        assert result.data["lossy_mse"] < result.data["exact_mse"] * 1.05 + 1e-5

    def test_timeline_validates_recommender_ordering(self):
        result = run_experiment("timeline", SMALL)
        assert (
            result.data["predicted_storage_order"]
            == result.data["measured_storage_order"]
        )
        measured = result.data["measured"]
        # MMlib-base is worst on both axes, as the paper concludes.
        assert measured["mmlib-base"]["storage_mb"] == max(
            values["storage_mb"] for values in measured.values()
        )
        assert measured["mmlib-base"]["time_s"] == max(
            values["time_s"] for values in measured.values()
        )

    def test_delta_encoding_trades_storage_for_save_time(self):
        result = run_experiment("delta-encoding", SMALL)
        data = result.data["data"]
        assert data["pas-delta"]["u3_storage_mb"] < data["update"]["u3_storage_mb"]
        assert data["pas-delta"]["median_u3_tts_s"] > data["update"]["median_u3_tts_s"]

    def test_snapshot_placement_optimum_is_feasible_and_cheapest(self):
        result = run_experiment("snapshot-placement", SMALL)
        data = result.data["data"]
        bound = result.data["bound_s"]
        assert data["optimal"]["max_recovery_s"] <= bound + 1e-9
        for key, values in data.items():
            if key != "optimal" and values.get("feasible"):
                assert data["optimal"]["storage_mb"] <= values["storage_mb"] + 1e-9

    def test_set_size_sweep_shows_amortization(self):
        result = run_experiment("set-size-sweep", SMALL)
        data = result.data["data"]
        sizes = sorted(data)
        raw_bytes = 4_993 * 4
        # MMlib-base per-model cost is flat in n; Baseline amortizes its
        # per-set overhead down to the raw parameter cost.
        mmlib_small = data[sizes[0]]["mmlib-base"]["bytes_per_model"]
        mmlib_large = data[sizes[-1]]["mmlib-base"]["bytes_per_model"]
        assert abs(mmlib_large - mmlib_small) < 0.05 * mmlib_small
        baseline_large = data[sizes[-1]]["baseline"]["bytes_per_model"]
        assert baseline_large < raw_bytes * 1.01
        assert (
            data[sizes[0]]["baseline"]["bytes_per_model"] > baseline_large
        )

    def test_layer_granularity_beats_model_granularity(self):
        result = run_experiment("granularity", SMALL)
        data = result.data["data"]
        assert data["layer"]["u3_storage_mb"] < data["model"]["u3_storage_mb"]

    def test_single_model_recovery_cheaper_than_full_set(self):
        result = run_experiment("single-model", SMALL)
        data = result.data["data"]
        per_model_mb = 4_993 * 4 / 1e6
        for approach in ("mmlib-base", "baseline", "update"):
            assert data[approach]["single_ttr_s"] < data[approach]["full_ttr_s"]
        # Baseline range-reads exactly one model's bytes.
        assert data["baseline"]["single_read_mb"] == pytest.approx(
            per_model_mb, rel=0.01
        )

    def test_provenance_training_staircase(self):
        result = run_experiment(
            "provenance-training", ExperimentSettings(num_models=3, cycles=3, runs=1)
        )
        ttr = result.data["ttr"]
        # U1 < U3-1 < U3-2 < U3-3 — each recovery replays one more cycle.
        assert ttr[0] < ttr[1] < ttr[2] < ttr[3]
        # Roughly linear staircase (paper: 6h/12h/18h = 1:2:3).
        assert 1.5 < ttr[3] / ttr[1] < 4.0


class TestCli:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("figure99", SMALL)

    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "figure3",
            "figure4",
            "figure5",
            "update-rates",
            "model-size",
            "cifar",
            "provenance-training",
            "breakdown",
            "snapshot-interval",
            "compression",
            "recommender",
            "single-model",
            "granularity",
            "set-size-sweep",
            "delta-encoding",
            "snapshot-placement",
            "timeline",
            "quantization",
        }

    def test_main_runs_one_experiment(self, capsys):
        exit_code = main(["recommender", "--num-models", "10"])
        assert exit_code == 0
        assert "Ablation A3" in capsys.readouterr().out

    def test_main_writes_json(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "results.json"
        exit_code = main(
            ["recommender", "--num-models", "10", "--json", str(out_file)]
        )
        assert exit_code == 0
        payload = json.loads(out_file.read_text())
        assert "recommender" in payload
        assert "recommendations" in payload["recommender"]
