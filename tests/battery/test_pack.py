"""Tests for the battery-pack simulation."""

import numpy as np
import pytest

from repro.battery.drive_cycles import generate_drive_cycle
from repro.battery.pack import BatteryPack, PackConfig


@pytest.fixture(scope="module")
def small_pack():
    return BatteryPack(PackConfig(series_groups=3, parallel_cells=2, seed=0))


@pytest.fixture(scope="module")
def telemetry(small_pack):
    current = generate_drive_cycle(0, seed=1, duration_s=120).current_a
    return small_pack.simulate(current * small_pack.config.parallel_cells)


class TestPackConfig:
    def test_num_cells(self):
        assert PackConfig(series_groups=96, parallel_cells=4).num_cells == 384

    def test_validation(self):
        with pytest.raises(ValueError):
            PackConfig(series_groups=0)
        with pytest.raises(ValueError):
            PackConfig(parallel_cells=-1)
        with pytest.raises(ValueError):
            PackConfig(parameter_spread=1.0)


class TestConstruction:
    def test_cells_are_perturbed_individually(self, small_pack):
        params = [small_pack.cell_parameters(i) for i in range(small_pack.num_cells)]
        capacities = {round(p.capacity_ah, 6) for p in params}
        assert len(capacities) == small_pack.num_cells

    def test_deterministic_per_seed(self):
        config = PackConfig(series_groups=2, parallel_cells=2, seed=7)
        a = BatteryPack(config).cell_parameters(3)
        b = BatteryPack(config).cell_parameters(3)
        assert a == b

    def test_per_cell_soh_applied(self):
        config = PackConfig(series_groups=1, parallel_cells=2, seed=0)
        soh = [1.0, 0.8]
        pack = BatteryPack(config, soh_per_cell=soh)
        fresh = BatteryPack(config)
        assert pack.cell_parameters(1).capacity_ah == pytest.approx(
            fresh.cell_parameters(1).capacity_ah * 0.8
        )

    def test_soh_validation(self):
        config = PackConfig(series_groups=1, parallel_cells=2)
        with pytest.raises(ValueError):
            BatteryPack(config, soh_per_cell=[1.0])
        with pytest.raises(ValueError):
            BatteryPack(config, soh_per_cell=[1.0, 1.5])


class TestSimulation:
    def test_telemetry_shapes(self, small_pack, telemetry):
        assert telemetry.current_a.shape == (120, small_pack.num_cells)
        assert telemetry.pack_voltage.shape == (120,)

    def test_current_conservation_per_group(self, small_pack, telemetry):
        parallel = small_pack.config.parallel_cells
        pack_current = telemetry.current_a[:, :parallel].sum(axis=1)
        for group in range(1, small_pack.config.series_groups):
            start = group * parallel
            group_current = telemetry.current_a[:, start : start + parallel].sum(
                axis=1
            )
            assert np.allclose(group_current, pack_current, atol=1e-9)

    def test_pack_voltage_is_sum_of_group_voltages(self, small_pack, telemetry):
        # Series string: pack voltage ~ groups x single-cell voltage.
        per_group = telemetry.pack_voltage / small_pack.config.series_groups
        assert np.all((per_group > 2.0) & (per_group < 4.5))

    def test_weak_cell_carries_less_current(self):
        config = PackConfig(series_groups=1, parallel_cells=2, seed=0,
                            parameter_spread=0.0)
        pack = BatteryPack(config, soh_per_cell=[1.0, 0.7])
        current = np.full(300, 6.0)
        telemetry = pack.simulate(current)
        healthy = telemetry.current_a[:, 0].mean()
        weak = telemetry.current_a[:, 1].mean()
        assert weak < healthy

    def test_weak_cell_sits_at_lower_soc_under_load(self):
        config = PackConfig(series_groups=1, parallel_cells=2, seed=0,
                            parameter_spread=0.0)
        pack = BatteryPack(config, soh_per_cell=[1.0, 0.7])
        telemetry = pack.simulate(np.full(1800, 5.0))
        # Lower capacity drains faster even at reduced current share.
        assert telemetry.soc[-1, 1] < telemetry.soc[-1, 0]

    def test_deterministic(self):
        config = PackConfig(series_groups=2, parallel_cells=2, seed=3)
        current = np.full(60, 4.0)
        a = BatteryPack(config).simulate(current)
        b = BatteryPack(config).simulate(current)
        assert np.array_equal(a.voltage, b.voltage)
        assert np.array_equal(a.current_a, b.current_a)

    def test_cell_accessor(self, telemetry):
        channels = telemetry.cell(0)
        assert set(channels) == {
            "current_a", "voltage", "temperature_c", "charge_ah", "soc"
        }
        assert channels["voltage"].shape == (120,)

    def test_rejects_bad_dt(self, small_pack):
        with pytest.raises(ValueError):
            small_pack.simulate(np.ones(10), dt_s=0.0)


class TestImbalanceReport:
    def test_homogeneous_fresh_pack_is_balanced(self):
        config = PackConfig(series_groups=2, parallel_cells=3, seed=0,
                            parameter_spread=0.0)
        pack = BatteryPack(config)
        telemetry = pack.simulate(np.full(120, 6.0))
        report = pack.imbalance_report(telemetry)
        assert report["current_spread"] < 1e-9
        assert report["soc_spread"] < 1e-9

    def test_spread_grows_with_inhomogeneity(self):
        current = np.full(300, 6.0)
        tight = BatteryPack(
            PackConfig(series_groups=2, parallel_cells=3, seed=0,
                       parameter_spread=0.01)
        )
        loose = BatteryPack(
            PackConfig(series_groups=2, parallel_cells=3, seed=0,
                       parameter_spread=0.10)
        )
        tight_report = tight.imbalance_report(tight.simulate(current))
        loose_report = loose.imbalance_report(loose.simulate(current))
        assert loose_report["current_spread"] > tight_report["current_spread"]
