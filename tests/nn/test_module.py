"""Tests for Module/Parameter/Sequential: registration, state dicts, modes."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.errors import ArchitectureMismatchError
from repro.nn import Linear, Module, Parameter, ReLU, Sequential, Tanh


class TwoLayer(Module):
    def __init__(self) -> None:
        super().__init__()
        self.first = Linear(3, 4, rng=np.random.default_rng(0))
        self.act = ReLU()
        self.second = Linear(4, 2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.second(self.act(self.first(x)))

    def backward(self, grad):
        return self.first.backward(self.act.backward(self.second.backward(grad)))


class TestParameter:
    def test_data_cast_to_float32(self):
        param = Parameter(np.ones((2, 2), dtype=np.float64))
        assert param.data.dtype == np.float32

    def test_grad_initialized_to_zero(self):
        param = Parameter(np.ones((3,)))
        assert np.all(param.grad == 0)
        assert param.grad.shape == (3,)

    def test_zero_grad_resets_in_place(self):
        param = Parameter(np.ones((3,)))
        grad_ref = param.grad
        param.grad += 5.0
        param.zero_grad()
        assert param.grad is grad_ref
        assert np.all(param.grad == 0)

    def test_shape_and_size(self):
        param = Parameter(np.zeros((4, 5)))
        assert param.shape == (4, 5)
        assert param.size == 20


class TestModuleRegistration:
    def test_named_parameters_order_is_registration_order(self):
        model = TwoLayer()
        names = [name for name, _p in model.named_parameters()]
        assert names == ["first.weight", "first.bias", "second.weight", "second.bias"]

    def test_num_parameters(self):
        model = TwoLayer()
        assert model.num_parameters() == (3 * 4 + 4) + (4 * 2 + 2)

    def test_layer_names_match_state_dict_keys(self):
        model = TwoLayer()
        assert model.layer_names() == list(model.state_dict())

    def test_zero_grad_clears_all(self):
        model = TwoLayer()
        for param in model.parameters():
            param.grad += 1.0
        model.zero_grad()
        assert all(np.all(p.grad == 0) for p in model.parameters())


class TestTrainEvalModes:
    def test_train_propagates_to_children(self):
        model = TwoLayer().eval()
        assert not model.first.training
        model.train()
        assert model.training and model.first.training and model.second.training

    def test_eval_propagates_to_children(self):
        model = TwoLayer().train()
        model.eval()
        assert not model.training and not model.first.training


class TestStateDict:
    def test_state_dict_returns_copies(self):
        model = TwoLayer()
        state = model.state_dict()
        state["first.weight"][:] = 99.0
        assert not np.any(model.first.weight.data == 99.0)

    def test_roundtrip_is_exact(self):
        model_a, model_b = TwoLayer(), TwoLayer()
        model_b.load_state_dict(model_a.state_dict())
        for (name_a, p_a), (name_b, p_b) in zip(
            model_a.named_parameters(), model_b.named_parameters()
        ):
            assert name_a == name_b
            assert np.array_equal(p_a.data, p_b.data)

    def test_load_rejects_missing_key(self):
        model = TwoLayer()
        state = model.state_dict()
        del state["second.bias"]
        with pytest.raises(ArchitectureMismatchError):
            model.load_state_dict(state)

    def test_load_rejects_extra_key(self):
        model = TwoLayer()
        state = model.state_dict()
        state["ghost"] = np.zeros(3, dtype=np.float32)
        with pytest.raises(ArchitectureMismatchError):
            model.load_state_dict(state)

    def test_load_rejects_reordered_keys(self):
        model = TwoLayer()
        state = model.state_dict()
        reordered = OrderedDict(reversed(list(state.items())))
        with pytest.raises(ArchitectureMismatchError):
            model.load_state_dict(reordered)

    def test_load_rejects_wrong_shape(self):
        model = TwoLayer()
        state = model.state_dict()
        state["first.weight"] = np.zeros((4, 4), dtype=np.float32)
        with pytest.raises(ArchitectureMismatchError):
            model.load_state_dict(state)

    def test_load_casts_dtype(self):
        model = TwoLayer()
        state = model.state_dict()
        state["first.bias"] = state["first.bias"].astype(np.float64) + 1.0
        model.load_state_dict(state)
        assert model.first.bias.data.dtype == np.float32


class TestSequential:
    def test_state_dict_uses_positional_names(self):
        model = Sequential(Linear(2, 3), Tanh(), Linear(3, 1))
        assert list(model.state_dict()) == [
            "0.weight",
            "0.bias",
            "2.weight",
            "2.bias",
        ]

    def test_len_iter_getitem(self):
        layers = [Linear(2, 2), ReLU(), Linear(2, 2)]
        model = Sequential(*layers)
        assert len(model) == 3
        assert list(model) == layers
        assert model[1] is layers[1]

    def test_forward_chains_layers(self):
        model = Sequential(Linear(2, 2, rng=np.random.default_rng(0)), ReLU())
        x = np.array([[1.0, -1.0]], dtype=np.float32)
        manual = model[1](model[0](x))
        assert np.array_equal(model(x), manual)

    def test_backward_reverses_layers(self):
        model = Sequential(
            Linear(2, 3, rng=np.random.default_rng(0)),
            Tanh(),
            Linear(3, 1, rng=np.random.default_rng(1)),
        )
        out = model(np.array([[0.5, -0.5]], dtype=np.float32))
        grad_in = model.backward(np.ones_like(out))
        assert grad_in.shape == (1, 2)

    def test_abstract_module_raises(self):
        module = Module()
        with pytest.raises(NotImplementedError):
            module.forward(np.zeros((1, 1)))
        with pytest.raises(NotImplementedError):
            module.backward(np.zeros((1, 1)))
