"""A4 — single-model recovery vs. full-set recovery.

The deployment scenario "only recover[s] a selected number of models,
for example, after an accident" (§1).  This bench quantifies how much
cheaper that is than a full-set recovery under each approach.
"""

from benchmarks.conftest import BENCH_NUM_MODELS
from repro.bench.runner import ExperimentSettings, run_experiment


def test_single_model_recovery(benchmark):
    settings = ExperimentSettings(num_models=BENCH_NUM_MODELS, cycles=3, runs=3)

    def run():
        return run_experiment("single-model", settings).data["data"]

    data = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["per_approach"] = {
        approach: {metric: round(value, 6) for metric, value in values.items()}
        for approach, values in data.items()
    }

    per_model_mb = 4_993 * 4 / 1e6
    # Baseline reads exactly one model's bytes via a range read.
    assert abs(data["baseline"]["single_read_mb"] - per_model_mb) < 1e-4
    # Update reads at most one model slice per chain hop.
    assert data["update"]["single_read_mb"] <= per_model_mb * (settings.cycles + 1)
    # Single-model recovery is at least an order of magnitude cheaper
    # than materializing the whole set, for every approach.
    for approach, values in data.items():
        assert values["single_ttr_s"] * 10 < values["full_ttr_s"], approach
