"""Parallel save/recover scaling and delta-chain compaction benchmark.

Sweeps the engine's ``workers`` knob over a U1 save and a deep-chain
recovery and quantifies what delta-chain compaction saves over the
paper's recursive recovery.  Two claims are checked:

* **scaling** — with ``workers = n`` the striped/vectored store transfers
  pay the makespan of their stripes across *n* lanes instead of the
  serial sum, so time-to-save and time-to-recover drop toward 1/n of the
  serial time on transfer-dominated profiles (the default
  :data:`~repro.storage.hardware.ARCHIVE_PROFILE` models such a store);
* **compaction** — recovering a depth-*d* chain reads exactly one full
  set of parameter bytes, strictly fewer than the recursive replay's
  base-plus-every-delta, while producing the identical model set.

Everything measured here is deterministic: the scenario is seeded and
the simulated store charges do not depend on the host.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Sequence

from repro.bench.metrics import measure_recover, measure_save
from repro.config import ArchiveConfig
from repro.core.manager import MultiModelManager
from repro.core.model_set import ModelSet
from repro.core.update import UpdateApproach
from repro.nn.serialization import parameters_to_bytes
from repro.storage.hardware import ARCHIVE_PROFILE, HardwareProfile
from repro.workloads.scenario import MultiModelScenario, ScenarioConfig, UseCase


def build_chain_cases(
    num_models: int,
    chain_depth: int,
    seed: int = 0,
    architecture: str = "FFNN-48",
) -> list[UseCase]:
    """A U1 save followed by ``chain_depth`` linearly chained U3 updates.

    Each cycle mixes full and partial model updates (the paper's U3), so
    the resulting delta chain exercises both whole-model and single-layer
    diff entries — the cases compaction must resolve correctly.
    """
    config = ScenarioConfig(
        num_models=num_models,
        architecture=architecture,
        num_update_cycles=chain_depth,
        full_update_fraction=0.05,
        partial_update_fraction=0.10,
        seed=seed,
    )
    return list(MultiModelScenario(config).use_cases())


def set_digest(model_set: ModelSet) -> str:
    """Content hash of a recovered set, for byte-identity checks."""
    hasher = hashlib.sha256()
    for state in model_set.states:
        hasher.update(parameters_to_bytes(state))
    return hasher.hexdigest()


def run_parallel_scaling(
    num_models: int = 1000,
    chain_depth: int = 6,
    workers: Sequence[int] = (1, 2, 4, 8),
    profile: HardwareProfile = ARCHIVE_PROFILE,
    seed: int = 0,
) -> dict[str, Any]:
    """Run the full sweep; returns a JSON-serializable report.

    For every worker count the same seeded scenario is saved with a fresh
    Update manager (U1 TTS and total chain TTS are recorded) and the
    deepest set is recovered (TTR).  The recovered sets' content digests
    are included so callers can assert byte-identity across worker
    counts, and a replay-vs-compact recovery of the same archive records
    the parameter bytes each strategy reads.
    """
    cases = build_chain_cases(num_models, chain_depth, seed=seed)
    report: dict[str, Any] = {
        "config": {
            "num_models": num_models,
            "chain_depth": chain_depth,
            "workers": list(workers),
            "profile": profile.name,
            "seed": seed,
        },
        "save": {},
        "recover": {},
    }

    for lane_count in workers:
        manager = MultiModelManager.with_approach(
            "update", ArchiveConfig(profile=profile, workers=lane_count)
        )
        set_ids: list[str] = []
        save_total = save_real = save_simulated = 0.0
        u1_tts = u1_simulated = 0.0
        for case in cases:
            base_id = (
                set_ids[case.base_index] if case.base_index is not None else None
            )
            set_id, measurement = measure_save(
                manager,
                case.model_set,
                base_set_id=base_id,
                update_info=case.update_info,
            )
            set_ids.append(set_id)
            save_total += measurement.total_s
            save_real += measurement.real_s
            save_simulated += measurement.simulated_s
            if case.base_index is None:
                u1_tts = measurement.total_s
                u1_simulated = measurement.simulated_s
        recovered, recover_measurement = measure_recover(manager, set_ids[-1])
        key = str(lane_count)
        report["save"][key] = {
            "u1_tts_s": u1_tts,
            "u1_simulated_s": u1_simulated,
            "chain_tts_s": save_total,
            "real_s": save_real,
            "simulated_s": save_simulated,
        }
        report["recover"][key] = {
            "ttr_s": recover_measurement.total_s,
            "real_s": recover_measurement.real_s,
            "simulated_s": recover_measurement.simulated_s,
            "bytes_read": recover_measurement.bytes_read,
            "digest": set_digest(recovered),
        }

    first, *rest = [str(lane_count) for lane_count in workers]
    report["speedup"] = {
        f"save_w{other}_vs_w{first}": (
            report["save"][first]["chain_tts_s"]
            / report["save"][other]["chain_tts_s"]
        )
        for other in rest
    } | {
        f"recover_w{other}_vs_w{first}": (
            report["recover"][first]["ttr_s"] / report["recover"][other]["ttr_s"]
        )
        for other in rest
    }
    report["compaction"] = _compare_recovery_bytes(cases, profile)
    return report


def _compare_recovery_bytes(
    cases: list[UseCase], profile: HardwareProfile
) -> dict[str, Any]:
    """Parameter bytes read by recursive vs. compacted chain recovery.

    Both strategies recover the deepest set of one shared archive with a
    serial engine; compaction must read strictly fewer file-store bytes
    (exactly one full set) and produce the identical models.  The
    recorded times tell the other half of the story: each compacted
    range pays the store's per-request latency, so on small-layer
    architectures a *serial* compaction can be slower than replay on
    high-latency stores — the ranges parallelize perfectly across worker
    lanes (see the main sweep's TTR column), which is where compaction
    also wins on time.
    """
    manager = MultiModelManager.with_approach("update", ArchiveConfig(profile=profile))
    set_ids: list[str] = []
    for case in cases:
        base_id = set_ids[case.base_index] if case.base_index is not None else None
        set_ids.append(
            manager.save_set(
                case.model_set, base_set_id=base_id, update_info=case.update_info
            )
        )
    context = manager.context
    replayer = MultiModelManager(UpdateApproach(context, recovery="replay"))
    compactor = MultiModelManager(UpdateApproach(context, recovery="compact"))
    replayed, replay_measurement = measure_recover(replayer, set_ids[-1])
    compacted, compact_measurement = measure_recover(compactor, set_ids[-1])
    return {
        "chain_depth": len(cases) - 1,
        "replay_file_bytes_read": replay_measurement.file_stats.bytes_read,
        "compact_file_bytes_read": compact_measurement.file_stats.bytes_read,
        "replay_ttr_s": replay_measurement.total_s,
        "compact_ttr_s": compact_measurement.total_s,
        "identical": set_digest(replayed) == set_digest(compacted),
    }


def write_report(report: dict[str, Any], path: str | Path) -> Path:
    """Write the report as JSON next to the other benchmark results."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def format_report(report: dict[str, Any]) -> str:
    """Human-readable summary of a sweep report."""
    lines = [
        "Parallel scaling — {num_models} x FFNN, chain depth {chain_depth}, "
        "{profile} profile".format(**report["config"]),
    ]
    for key in (str(w) for w in report["config"]["workers"]):
        save = report["save"][key]
        recover = report["recover"][key]
        lines.append(
            f"  workers={key:>2}: chain TTS {save['chain_tts_s']:.4f}s "
            f"(U1 {save['u1_tts_s']:.4f}s), TTR {recover['ttr_s']:.4f}s"
        )
    compaction = report["compaction"]
    lines.append(
        f"  compaction: {compaction['compact_file_bytes_read']:,} bytes read "
        f"vs {compaction['replay_file_bytes_read']:,} recursive "
        f"(depth {compaction['chain_depth']})"
    )
    return "\n".join(lines)
