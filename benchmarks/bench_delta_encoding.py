"""A6 — PAS-style XOR-delta encoding vs Update (§2.2 / §4.5).

The paper defers "delta encoding and other compression techniques"
(citing ModelHub) to future work.  This bench measures the trade-off:
XOR-bit deltas compress unchanged bits *within* retrained layers (which
Update's exact-layer dedup cannot), at the cost of materializing the
base set on every save.
"""

from benchmarks.conftest import BENCH_NUM_MODELS
from repro.bench.runner import ExperimentSettings, run_experiment


def test_delta_encoding_tradeoff(benchmark):
    settings = ExperimentSettings(num_models=BENCH_NUM_MODELS, cycles=2, runs=1)

    def run():
        return run_experiment("delta-encoding", settings).data["data"]

    data = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["approaches"] = {
        name: {metric: round(value, 5) for metric, value in values.items()}
        for name, values in data.items()
    }

    # Storage: the XOR encoding wins by a large margin on partial updates.
    assert data["pas-delta"]["u3_storage_mb"] < 0.8 * data["update"]["u3_storage_mb"]
    # Save time: deltaing against a materialized base is much slower.
    assert data["pas-delta"]["median_u3_tts_s"] > 2 * data["update"]["median_u3_tts_s"]
