"""Module base class, parameter container, and sequential composition.

The design deliberately mirrors PyTorch's ``nn.Module`` where it matters
for the paper: modules expose an *ordered* mapping from dotted layer names
to float32 arrays via :meth:`Module.state_dict`, and parameters can be
loaded back with :meth:`Module.load_state_dict`.  The multi-model
management approaches operate exclusively on this interface.

Unlike PyTorch there is no autograd tape; each layer implements an
explicit ``backward`` that consumes the upstream gradient and accumulates
parameter gradients into ``Parameter.grad``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.errors import ArchitectureMismatchError

DTYPE = np.float32


class Parameter:
    """A trainable tensor with an associated gradient buffer.

    Parameters
    ----------
    data:
        Initial value.  Copied and cast to float32.
    """

    __slots__ = ("data", "grad")

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.ascontiguousarray(data, dtype=DTYPE)
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the gradient buffer to zero in place."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class for all neural-network modules.

    Subclasses register parameters and sub-modules simply by assigning
    them as attributes; registration order is preserved, which keeps
    ``state_dict`` keys deterministic — a property the Update approach's
    per-layer hashing relies on.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- attribute-based registration ----------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # -- forward / backward --------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Propagate ``grad_out`` backwards, accumulating parameter grads.

        Returns the gradient with respect to the module input.  Modules
        without parameters may simply transform the gradient.
        """
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- training-mode switches ----------------------------------------
    def train(self) -> "Module":
        """Put this module and all sub-modules into training mode."""
        self.training = True
        for child in self._modules.values():
            child.train()
        return self

    def eval(self) -> "Module":
        """Put this module and all sub-modules into evaluation mode."""
        self.training = False
        for child in self._modules.values():
            child.eval()
        return self

    # -- parameter access ------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs in registration order."""
        for name, param in self._parameters.items():
            yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters in registration order."""
        for _name, param in self.named_parameters():
            yield param

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the module tree."""
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        """Reset every parameter gradient in the module tree."""
        for param in self.parameters():
            param.zero_grad()

    # -- state dict -------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Return an ordered mapping from dotted names to parameter copies."""
        return OrderedDict(
            (name, param.data.copy()) for name, param in self.named_parameters()
        )

    def load_state_dict(self, state: "OrderedDict[str, np.ndarray] | dict") -> None:
        """Load parameter values from ``state``.

        The keys and shapes must match this module's parameters exactly;
        otherwise :class:`ArchitectureMismatchError` is raised.
        """
        own = OrderedDict(self.named_parameters())
        own_keys = list(own)
        new_keys = list(state)
        if own_keys != new_keys:
            raise ArchitectureMismatchError(
                f"state dict keys {new_keys!r} do not match module keys {own_keys!r}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=DTYPE)
            if value.shape != param.data.shape:
                raise ArchitectureMismatchError(
                    f"parameter {name!r}: expected shape {param.data.shape}, "
                    f"got {value.shape}"
                )
            param.data = np.ascontiguousarray(value)

    def layer_names(self) -> list[str]:
        """Dotted names of all parameters, in deterministic order."""
        return [name for name, _param in self.named_parameters()]


class Sequential(Module):
    """Compose modules into a feed-forward chain.

    Sub-modules are named by their position (``"0"``, ``"1"``, ...), so a
    ``Sequential(Linear(...), ReLU(), Linear(...))`` yields state-dict keys
    like ``"0.weight"`` and ``"2.bias"`` — the same convention PyTorch uses.
    """

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers: list[Module] = []
        for index, module in enumerate(modules):
            setattr(self, str(index), module)
            self._layers.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self._layers:
            x = layer(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self._layers):
            grad_out = layer.backward(grad_out)
        return grad_out
