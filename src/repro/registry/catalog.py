"""The model registry: families, versions, tags, and the derivation DAG.

One queryable source of truth over what an archive (or a whole fleet)
holds.  Every committed save appends one *version record* to a family:

* **family** — a named line of model sets.  Explicit via
  ``SetMetadata(extra={"family": "pack-a"})``; otherwise a derived set
  joins its base's family and an initial set roots a new family named
  after its own set id.
* **version** — 1-based position within the family, assigned at save
  time in commit order.
* **tags** — ``"latest"`` is maintained automatically (always the
  newest surviving version); arbitrary tags are pinned with
  :meth:`Registry.tag` and feed
  ``manager.recover_set(family=..., tag=...)``.

Records are written under the archive's own save journal — one registry
record per committed save, rolled back with the save on crash — and the
whole catalog is rebuildable from descriptor documents via
:meth:`Registry.rebuild` (``repro-archive register --rebuild``).

:meth:`Registry.diff` answers "which layers changed between A and B"
from the Update approach's stored per-layer hashes (or a chunked set's
digest matrix) and reads **zero parameter bytes** when both sets carry
hash metadata; sets without it fall back to recover-and-hash.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import RegistryError
from repro.observability import trace as _trace
from repro.registry.records import (
    FAMILIES_COLLECTION,
    HASH_COLLECTION,
    REGISTRY_COLLECTIONS,
    REGISTRY_DIR,
    SETS_COLLECTION,
    TAGS_COLLECTION,
    VERSIONS_COLLECTION,
    journaled_delete,
    journaled_write,
    open_registry_store,
)
from repro.storage.journal import innermost

#: The automatically maintained tag: always the newest surviving version.
LATEST_TAG = "latest"


@dataclass(frozen=True)
class VersionRecord:
    """One registered set: family membership plus descriptor summary."""

    set_id: str
    family: str
    version: int
    base_set: "str | None"
    kind: str
    approach: str
    architecture: str
    num_models: int
    #: Owning shard on a fleet registry; ``None`` on plain archives.
    shard: "int | None" = None

    @classmethod
    def from_doc(cls, set_id: str, doc: dict) -> "VersionRecord":
        return cls(
            set_id=set_id,
            family=str(doc["family"]),
            version=int(doc["version"]),
            base_set=doc.get("base_set"),
            kind=str(doc.get("kind", "full")),
            approach=str(doc.get("approach", "")),
            architecture=str(doc.get("architecture", "")),
            num_models=int(doc.get("num_models", 0)),
            shard=doc.get("shard"),
        )

    def to_json(self) -> dict:
        data = {
            "set_id": self.set_id,
            "family": self.family,
            "version": self.version,
            "base_set": self.base_set,
            "kind": self.kind,
            "approach": self.approach,
            "architecture": self.architecture,
            "num_models": self.num_models,
        }
        if self.shard is not None:
            data["shard"] = self.shard
        return data


@dataclass(frozen=True)
class RegistryModelDiff:
    """Per-model slice of a :class:`RegistryDiff`."""

    model_index: int
    changed_layers: tuple[str, ...]


@dataclass(frozen=True)
class RegistryDiff:
    """Layer-level change set between two registered model sets.

    ``source`` records how each side's digest matrix was obtained:
    ``hash-info`` (Update's stored per-layer hashes), ``chunk-digests``
    (a chunked set's descriptor matrix), or ``recovered``
    (recover-and-hash fallback).  The first two read zero parameter
    bytes.
    """

    set_a: str
    set_b: str
    num_models: int
    layers: tuple[str, ...]
    changed: tuple[RegistryModelDiff, ...]
    source: str

    @property
    def changed_models(self) -> tuple[int, ...]:
        return tuple(entry.model_index for entry in self.changed)

    @property
    def identical(self) -> bool:
        return not self.changed

    def to_json(self) -> dict:
        return {
            "set_a": self.set_a,
            "set_b": self.set_b,
            "num_models": self.num_models,
            "layers": list(self.layers),
            "source": self.source,
            "changed": [
                {
                    "model_index": entry.model_index,
                    "changed_layers": list(entry.changed_layers),
                }
                for entry in self.changed
            ],
        }


def _callable(value) -> "Callable[[], Any]":
    if value is None:
        return lambda: None
    if callable(value):
        return value
    return lambda: value


class Registry:
    """Document-store-backed catalog over one archive or a whole fleet.

    Parameters
    ----------
    store:
        The (innermost) document store holding the registry collections.
        Plain archives share their archive's document store; fleets keep
        a dedicated store under ``root/registry/``.
    journal:
        The journal registry mutations log their undo information to —
        a :class:`~repro.storage.journal.SaveJournal` or a zero-argument
        callable returning one (``None`` disables undo logging).  Inside
        a save transaction, records join the save's entry; standalone
        mutations open their own ``registry`` transaction.
    resolver:
        ``resolver(shard)`` returns the :class:`SaveContext` holding a
        record's descriptor and hash documents (``shard`` is ``None`` on
        plain archives).
    metrics:
        A :class:`~repro.observability.metrics.MetricsRegistry` (or
        callable returning one) for the registry counters.

    Thread safety: one reentrant lock serializes every catalog
    mutation and query — required on fleets, where saves commit
    concurrently across shards but the journal underneath the registry
    is single-writer.
    """

    def __init__(self, store, journal=None, resolver=None, metrics=None) -> None:
        self._store = innermost(store)
        self._journal = _callable(journal)
        self._resolver = resolver
        self._metrics = _callable(metrics)
        self._lock = threading.RLock()

    # -- factories ---------------------------------------------------------
    @classmethod
    def for_context(cls, context) -> "Registry":
        """Registry sharing a plain archive's document store and journal.

        The journal is read through the context on every mutation, so a
        journal attached *after* this registry (the open/attach order of
        durable archives and tests) is still honored.
        """
        return cls(
            innermost(context.document_store),
            journal=lambda: context.journal,
            resolver=lambda shard: context,
            metrics=lambda: context.metrics,
        )

    # -- plumbing ----------------------------------------------------------
    @contextmanager
    def _registry_txn(self):
        """A journal transaction for one standalone registry mutation.

        Inside an open save/GC transaction this *joins* it (nested
        begin), making the registry record atomic with the save; with no
        journal the mutation applies unlogged.
        """
        journal = self._journal()
        if journal is None:
            yield
            return
        with journal.begin("registry"):
            yield

    def _write(self, collection: str, doc_id: str, document: dict) -> None:
        journaled_write(self._store, self._journal(), collection, doc_id, document)

    def _delete(self, collection: str, doc_id: str) -> None:
        journaled_delete(self._store, self._journal(), collection, doc_id)

    def _inc(self, name: str, description: str) -> None:
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter(name, description).inc()

    def _context_for(self, shard: "int | None"):
        if self._resolver is None:
            raise RegistryError(
                "this registry has no archive contexts attached; "
                "descriptor-backed operations (record, diff, rebuild "
                "sources) are unavailable"
            )
        return self._resolver(shard)

    @staticmethod
    def _check_name(what: str, name: str) -> str:
        if not name or ":" in name:
            raise RegistryError(
                f"invalid {what} name {name!r}: must be non-empty and "
                "must not contain ':'"
            )
        return name

    def _version_doc(self, set_id: str) -> "dict | None":
        return self._store._read_raw(VERSIONS_COLLECTION, set_id)

    def _require_version(self, set_id: str) -> dict:
        doc = self._version_doc(set_id)
        if doc is None:
            raise RegistryError(
                f"set {set_id!r} is not in the registry; if it exists in "
                "the archive, run `repro-archive <dir> register --rebuild`"
            )
        return doc

    def _version_docs(self) -> "list[tuple[str, dict]]":
        return [
            (set_id, self._store._read_raw(VERSIONS_COLLECTION, set_id))
            for set_id in self._store.collection_ids(VERSIONS_COLLECTION)
        ]

    def _family_docs(self, family: str) -> "list[tuple[str, dict]]":
        return [
            (set_id, doc)
            for set_id, doc in self._version_docs()
            if doc.get("family") == family
        ]

    def _family_tags(self, family: str) -> "list[tuple[str, dict]]":
        return [
            (tag_id, self._store._read_raw(TAGS_COLLECTION, tag_id))
            for tag_id in self._store.collection_ids(TAGS_COLLECTION)
            if tag_id.startswith(f"{family}:")
        ]

    # -- record side (called by the save / retention paths) ----------------
    def record_save(self, set_id: str, shard: "int | None" = None) -> VersionRecord:
        """Register one committed save (called inside the save txn).

        On plain archives the manager calls this between the approach's
        save and the transaction commit, so the record is atomic with
        the save.  Fleet saves record post-commit into the fleet-level
        registry (its own journal), keyed with the owning ``shard``.
        """
        context = self._context_for(shard)
        descriptor = innermost(context.document_store)._read_raw(
            SETS_COLLECTION, set_id
        )
        if descriptor is None:
            raise RegistryError(
                f"cannot register {set_id!r}: no descriptor document"
            )
        with self._lock:
            with _trace.span("registry-record", kind="registry", set_id=set_id):
                with self._registry_txn():
                    record = self._record(set_id, descriptor, shard)
        self._inc("registry_records_total", "registry version records written")
        return record

    def _record(
        self, set_id: str, descriptor: dict, shard: "int | None"
    ) -> VersionRecord:
        existing = self._version_doc(set_id)
        explicit = descriptor.get("metadata", {}).get("extra", {}).get("family")
        if existing is not None:
            # Idempotent re-record (rebuild heal, save retry): keep the
            # assigned family/version, refresh the descriptor summary.
            family = str(existing["family"])
            version = int(existing["version"])
        elif explicit is not None:
            family = self._check_name("family", str(explicit))
        else:
            base = descriptor.get("base_set") or descriptor.get("compacted_from")
            base_doc = self._version_doc(base) if base is not None else None
            family = str(base_doc["family"]) if base_doc is not None else set_id
        if existing is None:
            version = 1 + max(
                (int(doc["version"]) for _sid, doc in self._family_docs(family)),
                default=0,
            )
        if self._store._read_raw(FAMILIES_COLLECTION, family) is None:
            self._write(FAMILIES_COLLECTION, family, {"root_set": set_id})
        record: dict = {
            "family": family,
            "version": version,
            "base_set": descriptor.get("base_set"),
            "kind": descriptor.get("kind", "full"),
            "approach": descriptor.get("type"),
            "architecture": descriptor.get("architecture"),
            "num_models": descriptor.get("num_models"),
        }
        if shard is not None:
            record["shard"] = int(shard)
        self._write(VERSIONS_COLLECTION, set_id, record)
        latest = self._store._read_raw(TAGS_COLLECTION, f"{family}:{LATEST_TAG}")
        latest_doc = (
            self._version_doc(latest["set_id"]) if latest is not None else None
        )
        if latest_doc is None or int(latest_doc["version"]) <= version:
            self._write(
                TAGS_COLLECTION,
                f"{family}:{LATEST_TAG}",
                {"family": family, "tag": LATEST_TAG, "set_id": set_id},
            )
        return VersionRecord.from_doc(set_id, record)

    def record_delete(self, set_id: str) -> None:
        """Unregister a garbage-collected set (inside the GC txn).

        The family's ``latest`` tag retargets to the newest surviving
        version; pinned tags on the deleted set are dropped; a family
        with no surviving versions disappears entirely.  Unregistered
        ids are ignored, so callers can feed every deleted set through.
        """
        with self._lock:
            with self._registry_txn():
                record = self._version_doc(set_id)
                if record is None:
                    return
                family = str(record["family"])
                self._delete(VERSIONS_COLLECTION, set_id)
                survivors = self._family_docs(family)
                if not survivors:
                    self._delete(FAMILIES_COLLECTION, family)
                    for tag_id, _doc in self._family_tags(family):
                        self._delete(TAGS_COLLECTION, tag_id)
                    self._inc(
                        "registry_deletes_total", "registry version records removed"
                    )
                    return
                newest = max(survivors, key=lambda item: int(item[1]["version"]))[0]
                for tag_id, tag_doc in self._family_tags(family):
                    if tag_doc.get("set_id") != set_id:
                        continue
                    if tag_doc.get("tag") == LATEST_TAG:
                        self._write(
                            TAGS_COLLECTION,
                            tag_id,
                            {"family": family, "tag": LATEST_TAG, "set_id": newest},
                        )
                    else:
                        self._delete(TAGS_COLLECTION, tag_id)
        self._inc("registry_deletes_total", "registry version records removed")

    def record_compact(self, set_id: str) -> None:
        """Reflect an in-place compaction (delta rewritten as full).

        The derivation edge is preserved — compaction keeps ``base_set``
        as ``compacted_from`` history, and the DAG outlives the bytes.
        """
        with self._lock:
            with self._registry_txn():
                record = self._version_doc(set_id)
                if record is None:
                    return
                updated = dict(record)
                updated["kind"] = "full"
                self._write(VERSIONS_COLLECTION, set_id, updated)

    def rebuild(self, sources) -> int:
        """Drop and re-derive the whole catalog from descriptor documents.

        ``sources`` is an iterable of ``(shard, context)`` pairs
        (``shard=None`` on plain archives).  Set ids are zero-padded
        commit counters, so id order is commit order: replaying
        descriptors in id order reproduces the incremental family and
        version assignment exactly (on archives that were never
        garbage-collected; after GC, versions renumber densely).

        Deliberately **unjournaled**: a catalog-sized transaction would
        rewrite its journal entry per record (quadratic), and rebuild is
        already idempotent — rerunning after an interruption converges
        on the same catalog.  Pinned tags are not derivable from
        descriptors and must be re-created; ``latest`` is restored.

        Returns the number of sets registered.
        """
        with self._lock:
            for collection in REGISTRY_COLLECTIONS:
                for doc_id in list(self._store.collection_ids(collection)):
                    self._store._delete_raw(collection, doc_id)
            descriptors = []
            for shard, context in sources:
                store = innermost(context.document_store)
                for set_id in store.collection_ids(SETS_COLLECTION):
                    descriptors.append(
                        (set_id, store._read_raw(SETS_COLLECTION, set_id), shard)
                    )
            descriptors.sort(key=lambda item: item[0])
            for set_id, descriptor, shard in descriptors:
                self._record(set_id, descriptor, shard)
        self._inc("registry_rebuilds_total", "registry rebuilds completed")
        return len(descriptors)

    # -- query side --------------------------------------------------------
    def families(self) -> list[str]:
        """All family names, sorted."""
        self._inc("registry_queries_total", "registry queries answered")
        with self._lock:
            return list(self._store.collection_ids(FAMILIES_COLLECTION))

    def versions(self, family: str) -> list[VersionRecord]:
        """A family's version records, oldest first."""
        self._inc("registry_queries_total", "registry queries answered")
        with self._lock:
            if self._store._read_raw(FAMILIES_COLLECTION, family) is None:
                raise RegistryError(
                    f"unknown family {family!r}; known: {self.families()}"
                )
            docs = self._family_docs(family)
        return sorted(
            (VersionRecord.from_doc(set_id, doc) for set_id, doc in docs),
            key=lambda record: record.version,
        )

    def describe(self, set_id: str) -> VersionRecord:
        """The version record of one registered set."""
        self._inc("registry_queries_total", "registry queries answered")
        with self._lock:
            return VersionRecord.from_doc(set_id, self._require_version(set_id))

    def records(self) -> list[VersionRecord]:
        """Every version record in the catalog, ordered by set id."""
        self._inc("registry_queries_total", "registry queries answered")
        with self._lock:
            docs = self._version_docs()
        return [VersionRecord.from_doc(set_id, doc) for set_id, doc in docs]

    def derived_from(self, set_id: str, transitive: bool = False) -> list[str]:
        """Ids of sets derived from ``set_id`` (children, or whole subtree)."""
        self._inc("registry_queries_total", "registry queries answered")
        with self._lock:
            self._require_version(set_id)
            docs = self._version_docs()
        children: dict[str, list[str]] = {}
        for child, doc in docs:
            base = doc.get("base_set")
            if base is not None:
                children.setdefault(base, []).append(child)
        direct = sorted(children.get(set_id, []))
        if not transitive:
            return direct
        seen: set[str] = set()
        frontier = list(direct)
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(children.get(current, []))
        return sorted(seen)

    def tags(self, family: str) -> dict[str, str]:
        """``{tag: set_id}`` of a family (always includes ``latest``)."""
        self._inc("registry_queries_total", "registry queries answered")
        with self._lock:
            if self._store._read_raw(FAMILIES_COLLECTION, family) is None:
                raise RegistryError(
                    f"unknown family {family!r}; known: {self.families()}"
                )
            return {
                doc["tag"]: doc["set_id"]
                for _tag_id, doc in self._family_tags(family)
            }

    def resolve(self, family: str, tag: str = LATEST_TAG) -> str:
        """The set id a ``family:tag`` pair points at.

        Feeds ``manager.recover_set(family=..., tag=...)``; on fleets the
        resolved record also carries the owning shard (:meth:`shard_of`).
        """
        self._inc("registry_queries_total", "registry queries answered")
        with _trace.span("registry-query", kind="registry", op="resolve"):
            with self._lock:
                doc = self._store._read_raw(TAGS_COLLECTION, f"{family}:{tag}")
                if doc is None:
                    if self._store._read_raw(FAMILIES_COLLECTION, family) is None:
                        raise RegistryError(
                            f"unknown family {family!r}; known: {self.families()}"
                        )
                    raise RegistryError(
                        f"family {family!r} has no tag {tag!r}; "
                        f"known: {sorted(self.tags(family))}"
                    )
                return str(doc["set_id"])

    def tag(self, family: str, tag: str, set_id: str) -> None:
        """Pin ``family:tag`` to a registered set of that family."""
        self._check_name("tag", tag)
        if tag == LATEST_TAG:
            raise RegistryError(
                f"tag {LATEST_TAG!r} is maintained automatically"
            )
        with self._lock:
            with self._registry_txn():
                record = self._require_version(set_id)
                if record.get("family") != family:
                    raise RegistryError(
                        f"set {set_id!r} belongs to family "
                        f"{record.get('family')!r}, not {family!r}"
                    )
                self._write(
                    TAGS_COLLECTION,
                    f"{family}:{tag}",
                    {"family": family, "tag": tag, "set_id": set_id},
                )

    def shard_of(self, set_id: str) -> "int | None":
        """Owning shard recorded for a set (``None`` on plain archives)."""
        with self._lock:
            return self._require_version(set_id).get("shard")

    # -- diff --------------------------------------------------------------
    def diff(self, set_a: str, set_b: str) -> RegistryDiff:
        """Layer-level change set between two registered sets.

        Answered from stored digest matrices — Update's per-layer hash
        documents or a chunked set's ``chunk_digests`` — whenever both
        sides carry one, reading **zero parameter bytes**.  A set
        without digest metadata (e.g. plain Baseline) falls back to
        recover-and-hash for that side only.  Both matrices are full
        SHA-256 over each layer's raw bytes, so every source agrees with
        the ground-truth recover-and-compare oracle.
        """
        self._inc("registry_queries_total", "registry queries answered")
        with _trace.span(
            "registry-query", kind="registry", op="diff", a=set_a, b=set_b
        ):
            with self._lock:
                record_a = self._require_version(set_a)
                record_b = self._require_version(set_b)
            sides = []
            for set_id, record in ((set_a, record_a), (set_b, record_b)):
                context = self._context_for(record.get("shard"))
                descriptor = innermost(context.document_store)._read_raw(
                    SETS_COLLECTION, set_id
                )
                if descriptor is None:
                    raise RegistryError(
                        f"registered set {set_id!r} has no descriptor in its "
                        "archive; run `repro-archive <dir> register --rebuild`"
                    )
                sides.append((set_id, context, descriptor))
            (_, ctx_a, doc_a), (_, ctx_b, doc_b) = sides
            for label, field_a, field_b in (
                ("architecture", doc_a.get("architecture"), doc_b.get("architecture")),
                ("num_models", doc_a.get("num_models"), doc_b.get("num_models")),
            ):
                if field_a != field_b:
                    raise RegistryError(
                        f"cannot diff {set_a!r} and {set_b!r}: "
                        f"{label} differs ({field_a!r} vs {field_b!r})"
                    )
            matrices = [
                self._digest_matrix(set_id, context, descriptor)
                or self._recovered_matrix(set_id, context, descriptor)
                for set_id, context, descriptor in sides
            ]
            (layers_a, rows_a, source_a), (layers_b, rows_b, source_b) = matrices
            if list(layers_a) != list(layers_b):
                raise RegistryError(
                    f"cannot diff {set_a!r} and {set_b!r}: layer schemas differ"
                )
            changed = []
            for index, (row_a, row_b) in enumerate(zip(rows_a, rows_b)):
                changed_layers = tuple(
                    layer
                    for layer, digest_a, digest_b in zip(layers_a, row_a, row_b)
                    if digest_a != digest_b
                )
                if changed_layers:
                    changed.append(RegistryModelDiff(index, changed_layers))
            source = source_a if source_a == source_b else f"{source_a}+{source_b}"
            return RegistryDiff(
                set_a=set_a,
                set_b=set_b,
                num_models=int(doc_a.get("num_models", len(rows_a))),
                layers=tuple(layers_a),
                changed=tuple(changed),
                source=source,
            )

    @staticmethod
    def _digest_matrix(set_id: str, context, descriptor: dict):
        """A stored per-layer digest matrix, read without parameter bytes."""
        hash_doc = innermost(context.document_store)._read_raw(
            HASH_COLLECTION, set_id
        )
        if hash_doc is not None:
            return list(hash_doc["layers"]), hash_doc["hashes"], "hash-info"
        digests = descriptor.get("chunk_digests")
        if digests is not None:
            from repro.nn.serialization import StateSchema

            layers = StateSchema.from_json(descriptor["schema"]).layer_names()
            return layers, digests, "chunk-digests"
        return None

    @staticmethod
    def _recovered_matrix(set_id: str, context, descriptor: dict):
        """Fallback for digest-less sets: recover and hash each layer."""
        from repro.core.manager import APPROACHES
        from repro.core.update import _set_hashes

        approach_name = str(descriptor.get("type"))
        if approach_name not in APPROACHES:
            raise RegistryError(
                f"set {set_id!r} has unknown approach {approach_name!r}"
            )
        model_set = APPROACHES[approach_name](context).recover(set_id)
        return (
            model_set.schema.layer_names(),
            _set_hashes(model_set, workers=context.workers),
            "recovered",
        )


def attach_registry(context) -> Registry:
    """Wire a :class:`Registry` onto a plain archive context (idempotent)."""
    if getattr(context, "registry", None) is None:
        context.registry = Registry.for_context(context)
    return context.registry


def open_fleet_registry(
    directory, resolver=None, metrics=None
) -> Registry:
    """Open (or create) the fleet-level registry store.

    Durable fleets keep it under ``root/registry/`` — outside every
    shard, like ``deadletter/``, so the catalog stays queryable while a
    shard is DOWN; ``directory=None`` builds an in-memory catalog.  The
    store carries a private journal replayed on open, so a crash
    mid-record never surfaces a torn catalog entry.
    """
    store, journal = open_registry_store(directory)
    return Registry(store, journal=journal, resolver=resolver, metrics=metrics)


__all__ = [
    "LATEST_TAG",
    "REGISTRY_DIR",
    "Registry",
    "RegistryDiff",
    "RegistryModelDiff",
    "VersionRecord",
    "attach_registry",
    "open_fleet_registry",
]
