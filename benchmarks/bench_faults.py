"""Fault-injection sweep: crash matrix, retry overhead, salvage yield.

Kills a derived save at every mutating operation for every approach
(dedup off and on), replays the same workload under seeded transient
faults with retries attached, and corrupts a single chunk of a dedup
archive, writing the full report to ``results/faults.json``.

Claims asserted here (all deterministic — seeded fault schedules,
simulated backoff charges, content digests):

* every fault point of every approach's derived save recovers to the
  previous consistent state (prior set byte-identical, fsck clean);
* the retry policy absorbs a 10 % transient error rate for each fixed
  seed — the save completes, recovery is byte-identical, and the
  backoff latency charged is exactly the policy's schedule;
* one corrupt chunk costs exactly one model: salvage recovery returns
  every other model and names the lost one.
"""

import os
from pathlib import Path

from repro.bench.faults import format_report, run_fault_benchmark, write_report
from repro.bench.replication import (
    format_report as format_replication_report,
    run_replication_benchmark,
    write_report as write_replication_report,
)

NUM_MODELS = int(os.environ.get("REPRO_BENCH_FAULT_MODELS", "6"))

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results" / "faults.json"
REPLICATION_RESULTS_PATH = (
    Path(__file__).resolve().parent.parent / "results" / "replication.json"
)


def test_fault_sweep(benchmark, fault_seed):
    # The classic pair (7, 9) at the default seed; shifted as a pair by
    # --seed / REPRO_FAULT_SEED so a sweep explores fresh schedules.
    seeds = (fault_seed + 7, fault_seed + 9)
    report = benchmark.pedantic(
        lambda: run_fault_benchmark(num_models=NUM_MODELS, seeds=seeds),
        rounds=1,
        iterations=1,
    )
    report["fault_seed"] = fault_seed
    write_report(report, RESULTS_PATH)
    print(format_report(report))
    benchmark.extra_info["report"] = report

    # Every fault point of every approach rolls back to a consistent
    # archive — the crash matrix must be dense and fully green.
    for key, entry in report["crash_matrix"].items():
        assert entry["fault_points"] > 0, key
        assert entry["consistent_recoveries"] == entry["fault_points"], key

    # Retries absorb the transient error rate for both fixed seeds.
    for entry in report["retries"]:
        assert entry["succeeded"], entry["seed"]
        assert entry["recovery_identical"], entry["seed"]
        assert entry["retries"] > 0, entry["seed"]
        assert entry["simulated_retry_s"] > 0.0, entry["seed"]

    # A single corrupt chunk loses exactly one model; the rest salvage.
    salvage = report["salvage"]
    assert salvage["corrupt_chunks"] == 1
    assert salvage["models_lost"] == [0]
    assert salvage["models_recovered"] == NUM_MODELS - 1
    assert salvage["base_set_complete"]


def test_replication_sweep(benchmark):
    """N=3 quorum replication: degraded saves, hedged reads, scrub cost.

    Claims asserted (seeded fault schedules, simulated latencies):

    * a save with one of three replicas crashed still commits at W=2,
      recovery is byte-identical, and the quorum write path is no
      slower than a fully healthy save;
    * when the preferred read replica degrades 50x, hedged reads
      restore near-healthy recovery latency (hedging off pays the
      full degraded cost);
    * one anti-entropy pass copies the missed save onto the revived
      replica, a second pass finds nothing, and a deep fsck is clean.
    """
    report = benchmark.pedantic(
        lambda: run_replication_benchmark(num_models=NUM_MODELS),
        rounds=1,
        iterations=1,
    )
    write_replication_report(report, REPLICATION_RESULTS_PATH)
    print(format_replication_report(report))
    benchmark.extra_info["report"] = report

    degraded = report["degraded_save"]
    assert degraded["save_succeeded"] and degraded["recovery_identical"]
    assert degraded["pending_repairs_flushed"] > 0
    assert degraded["degraded_write_s"] <= degraded["healthy_write_s"] * 1.01
    assert degraded["scrub_converged"] and degraded["fsck_clean"]

    hedged = report["hedged_reads"]
    assert hedged["hedges_without_policy"] == 0
    assert hedged["hedges_fired"] > 0
    assert hedged["read_s_hedged"] < hedged["read_s_no_hedge"] / 5

    scrub = report["scrub_convergence"]
    assert scrub["bytes_copied"] > 0
    assert scrub["first_pass_exit"] == 1 and scrub["second_pass_exit"] == 0
    assert scrub["fsck_clean"] and scrub["recovery_identical"]
