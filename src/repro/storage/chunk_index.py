"""Content-addressed, refcounted chunk layer over the artifact stores.

The paper's O1 observation — thousands of same-architecture models share
most of their bytes — is exploited here at the finest useful grain: one
**chunk** per layer tensor, keyed by the SHA-256 of its serialized bytes.
A chunk is stored exactly once, no matter how many models (in one set,
across a derivation chain, or across sibling chains) reference it.

Layout
------
* Chunk *bytes* live in the regular file store, packed: each save appends
  only its **new** unique chunks, concatenated in first-seen order, as one
  "pack" artifact (``<set-id>-chunks``).  Elided chunks cost no file-store
  operation at all — only the metadata below — which is what makes the
  simulated time-to-save gain deterministic.
* The chunk *index* lives in the document store, so persistent archives
  reopen with the index intact:

  - ``chunk_packs``: one document per pack artifact with the digests and
    lengths of its chunks (offsets are the running sum), and
  - ``chunk_refs``: a single ledger document mapping digest → reference
    count, rewritten whenever counts change (the "metadata cost" charged
    for a deduplicated save).

Reads use the **single-fetch fan-out**: :meth:`ChunkStore.fetch` groups
the requested digests by pack, coalesces adjacent ranges, and issues one
vectored :meth:`get_ranges` per pack — each unique chunk crosses the wire
once, and the caller copies it into every referencing (model, layer) slot.

Garbage collection is refcount-driven: deleting a set releases its
references (:meth:`release`), and :meth:`sweep` mark-and-sweeps the index
— packs whose chunks are all dead are deleted outright, packs holding a
mix are rewritten to contain only their live chunks, so the bytes
reclaimed equal exactly the bytes of zero-reference chunks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import ChunkCorruptionError, StorageError
from repro.storage.hashing import hash_bytes

#: Collection holding one layout document per pack artifact.
PACKS_COLLECTION = "chunk_packs"

#: Collection holding the single refcount ledger document.
REFS_COLLECTION = "chunk_refs"

#: Document id of the refcount ledger.
REFS_DOC_ID = "refcounts"


@dataclass
class _Chunk:
    """Index entry: where a chunk's bytes live and how many refs hold it."""

    artifact_id: str
    offset: int
    length: int
    refs: int = 0
    #: Stored bytes failed digest verification; reads refuse the chunk,
    #: refcounts are preserved, and the next ingest or an explicit repair
    #: re-stores clean bytes.
    quarantined: bool = False


@dataclass(frozen=True)
class IngestReport:
    """What one ingest (save) did at the chunk layer."""

    chunks_total: int
    chunks_new: int
    chunks_deduped: int
    bytes_new: int
    bytes_deduped: int
    pack_artifact: str | None


@dataclass
class SweepReport:
    """What one mark-and-sweep pass reclaimed."""

    chunks_reclaimed: int = 0
    bytes_reclaimed: int = 0
    packs_deleted: list[str] = field(default_factory=list)
    packs_rewritten: list[str] = field(default_factory=list)


class IngestSession:
    """Streaming ingest of one save's chunk references.

    References are added one at a time (:meth:`add`), so a 5000-model save
    never holds more than one new chunk's bytes beyond the pack writer's
    buffer.  The pack artifact writer is opened lazily on the first *new*
    chunk: a fully deduplicated save performs no file-store operation.
    Close with :meth:`close`; usable as a context manager (an exception
    aborts the pack without storing anything).
    """

    def __init__(
        self,
        store: "ChunkStore",
        pack_id: str,
        category: str = "parameters",
        workers: int = 1,
    ) -> None:
        self._store = store
        self._pack_id = pack_id
        self._category = category
        self._workers = workers
        self._writer = None
        #: digests first stored by this session, in pack order.
        self._new: list[tuple[str, int]] = []
        self._new_lengths: dict[str, int] = {}
        self._offset = 0
        self._refs: dict[str, int] = {}
        self._total = 0
        self._deduped = 0
        self._bytes_new = 0
        self._bytes_deduped = 0
        self._closed = False

    def add(self, digest: str, data: bytes | Callable[[], bytes]) -> None:
        """Reference one chunk; stores its bytes only if not yet present.

        ``data`` may be the bytes themselves or a zero-argument callable
        producing them — the callable is only invoked for chunks that
        actually need storing, so callers can defer serialization.
        """
        if self._closed:
            raise StorageError("ingest session already closed")
        self._total += 1
        self._refs[digest] = self._refs.get(digest, 0) + 1
        known = self._store._chunks.get(digest)
        # A quarantined chunk counts as absent: its stored bytes are
        # corrupt, so this save re-stores a clean copy (healing the index
        # for every set referencing the digest).
        if known is not None and known.quarantined:
            known = None
        if known is not None or digest in self._new_lengths:
            length = known.length if known is not None else self._new_lengths[digest]
            self._deduped += 1
            self._bytes_deduped += length
            return
        payload = data() if callable(data) else bytes(data)
        if self._writer is None:
            self._writer = self._store.file_store.open_writer(
                self._pack_id, category=self._category, workers=self._workers
            )
        self._writer.write(payload)
        self._new.append((digest, len(payload)))
        self._new_lengths[digest] = len(payload)
        self._offset += len(payload)
        self._bytes_new += len(payload)

    def close(self) -> IngestReport:
        """Finalize the pack (if any) and commit index + refcounts."""
        if self._closed:
            raise StorageError("ingest session already closed")
        self._closed = True
        store = self._store
        pack_artifact: str | None = None
        if self._writer is not None:
            pack_artifact = self._writer.close()
            offset = 0
            for digest, length in self._new:
                prior = store._chunks.get(digest)
                if prior is not None:
                    # Re-store of a quarantined chunk: the clean copy takes
                    # over the digest, keeping accumulated references, and
                    # the corrupt location is disowned so an index rebuild
                    # cannot resurrect it.
                    store._mark_superseded(digest, prior)
                store._chunks[digest] = _Chunk(
                    pack_artifact,
                    offset,
                    length,
                    refs=prior.refs if prior is not None else 0,
                )
                offset += length
            store.document_store.insert(
                PACKS_COLLECTION,
                {
                    "artifact": pack_artifact,
                    "digests": [digest for digest, _ in self._new],
                    "lengths": [length for _, length in self._new],
                },
                doc_id=pack_artifact,
                category="chunk-index",
            )
        for digest, count in self._refs.items():
            store._chunks[digest].refs += count
        store._persist_refs()
        store.file_store.stats.record_chunks(
            self._total, self._deduped, self._bytes_deduped
        )
        return IngestReport(
            chunks_total=self._total,
            chunks_new=len(self._new),
            chunks_deduped=self._deduped,
            bytes_new=self._bytes_new,
            bytes_deduped=self._bytes_deduped,
            pack_artifact=pack_artifact,
        )

    def abort(self) -> None:
        """Discard the session: no pack, no index or refcount changes."""
        self._closed = True
        if self._writer is not None:
            self._writer.abort()

    def __enter__(self) -> "IngestSession":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is not None:
            self.abort()
        elif not self._closed:
            self.close()


class ChunkStore:
    """Refcounted content-addressed chunk index over one store pair.

    One instance per :class:`~repro.core.approach.SaveContext`; the index
    is rebuilt from the document store on construction (management plane,
    uncharged), so persistent archives resume deduplicating against
    everything they already hold.
    """

    def __init__(self, file_store, document_store) -> None:
        self.file_store = file_store
        self.document_store = document_store
        self._chunks: dict[str, _Chunk] = {}
        #: Callables invoked with an iterable of digests the moment those
        #: digests stop being servable (quarantined or swept).  The
        #: serving cache registers here so a doomed chunk can never be
        #: served from cache after the store has disowned it.
        self.invalidation_listeners: list[Callable[[Iterable[str]], None]] = []
        packs = document_store._collections.get(PACKS_COLLECTION, {})
        # Deterministic rebuild: repair packs apply last so a repaired
        # digest always resolves to its clean copy, and a pack's
        # ``superseded`` digests (disowned by a later re-store or repair)
        # never claim the digest back.
        ordered = sorted(
            packs.values(), key=lambda doc: bool(doc.get("repair", False))
        )
        for doc in ordered:
            superseded = set(doc.get("superseded", []))
            offset = 0
            for digest, length in zip(doc["digests"], doc["lengths"]):
                if digest not in superseded:
                    self._chunks[digest] = _Chunk(
                        str(doc["artifact"]), offset, int(length)
                    )
                offset += int(length)
        refs_doc = document_store._collections.get(REFS_COLLECTION, {}).get(
            REFS_DOC_ID
        )
        if refs_doc:
            for digest, refs in refs_doc["refs"].items():
                if digest in self._chunks:
                    self._chunks[digest].refs = int(refs)
            for digest in refs_doc.get("quarantined", []):
                if digest in self._chunks:
                    self._chunks[digest].quarantined = True

    # -- write ----------------------------------------------------------------
    def open_ingest(
        self, pack_id: str, category: str = "parameters", workers: int = 1
    ) -> IngestSession:
        """Begin ingesting one save's chunk references (see IngestSession)."""
        return IngestSession(self, pack_id, category=category, workers=workers)

    def ingest(
        self,
        references: Iterable[tuple[str, bytes | Callable[[], bytes]]],
        pack_id: str,
        category: str = "parameters",
        workers: int = 1,
    ) -> IngestReport:
        """Convenience wrapper: ingest an iterable of (digest, data) refs."""
        with self.open_ingest(pack_id, category=category, workers=workers) as session:
            for digest, data in references:
                session.add(digest, data)
            return session.close()

    def _persist_refs(self) -> None:
        """Rewrite the refcount ledger document (the metadata charge)."""
        document = {
            "refs": {
                digest: chunk.refs
                for digest, chunk in sorted(self._chunks.items())
            }
        }
        quarantined = sorted(
            digest for digest, chunk in self._chunks.items() if chunk.quarantined
        )
        if quarantined:
            document["quarantined"] = quarantined
        if self.document_store.exists(REFS_COLLECTION, REFS_DOC_ID):
            self.document_store.replace(REFS_COLLECTION, REFS_DOC_ID, document)
        else:
            self.document_store.insert(
                REFS_COLLECTION, document, doc_id=REFS_DOC_ID, category="chunk-index"
            )

    def _mark_superseded(self, digest: str, old_chunk: _Chunk) -> None:
        """Disown ``digest``'s old location in its pack's layout document.

        The digest (and its offset math) stays in the pack document so the
        surviving chunks' offsets remain valid, but an index rebuild will
        never resolve the digest to the disowned (corrupt) bytes again.
        """
        doc = self.document_store._read_raw(PACKS_COLLECTION, old_chunk.artifact_id)
        if doc is None:
            return
        superseded = set(doc.get("superseded", []))
        if digest in superseded:
            return
        superseded.add(digest)
        doc["superseded"] = sorted(superseded)
        self.document_store.replace(PACKS_COLLECTION, old_chunk.artifact_id, doc)

    # -- read -----------------------------------------------------------------
    def fetch(self, digests: Iterable[str], workers: int = 1) -> dict[str, bytes]:
        """Fetch the bytes of every *unique* digest, one pass per pack.

        Requested digests are grouped by pack artifact and sorted by
        offset; exactly adjacent chunks are coalesced into one range, and
        each pack is served by a single vectored :meth:`get_ranges` call.
        Each unique chunk is read once regardless of how many (model,
        layer) slots the caller fans it out to.
        """
        unique = dict.fromkeys(digests)
        quarantined = [
            digest
            for digest in unique
            if digest in self._chunks and self._chunks[digest].quarantined
        ]
        if quarantined:
            raise ChunkCorruptionError(
                f"{len(quarantined)} requested chunk(s) are quarantined as "
                "corrupt; use fetch_verified/salvage to recover the rest",
                digests=tuple(quarantined),
            )
        by_pack: dict[str, list[tuple[int, int, str]]] = {}
        for digest in unique:
            try:
                chunk = self._chunks[digest]
            except KeyError:
                raise StorageError(f"unknown chunk {digest!r}") from None
            by_pack.setdefault(chunk.artifact_id, []).append(
                (chunk.offset, chunk.length, digest)
            )
        out: dict[str, bytes] = {}
        for artifact_id, entries in by_pack.items():
            entries.sort()
            ranges: list[tuple[int, int]] = []
            groups: list[list[tuple[int, int, str]]] = []
            for offset, length, digest in entries:
                if ranges and offset == ranges[-1][0] + ranges[-1][1]:
                    ranges[-1] = (ranges[-1][0], ranges[-1][1] + length)
                    groups[-1].append((offset, length, digest))
                else:
                    ranges.append((offset, length))
                    groups.append([(offset, length, digest)])
            blobs = self.file_store.get_ranges(artifact_id, ranges, workers=workers)
            for blob, (range_offset, _), group in zip(blobs, ranges, groups):
                view = memoryview(blob)
                for offset, length, digest in group:
                    relative = offset - range_offset
                    out[digest] = bytes(view[relative : relative + length])
        return out

    # -- corruption handling ---------------------------------------------------
    def fetch_verified(
        self, digests: Iterable[str], workers: int = 1, quarantine: bool = True
    ) -> tuple[dict[str, bytes], set[str]]:
        """Fetch unique digests, verifying every chunk against its digest.

        Returns ``(values, corrupted)``: corrupted digests are absent from
        ``values`` instead of aborting the whole read, which is what lets
        salvage recovery return every intact model.  Already-quarantined
        chunks are reported corrupted without touching the bytes; freshly
        discovered corruption (bitrot, unreadable pack regions) is
        quarantined and persisted when ``quarantine=True`` so subsequent
        plain :meth:`fetch` calls refuse fast.
        """
        unique = dict.fromkeys(digests)
        corrupted: set[str] = set()
        to_read: list[str] = []
        for digest in unique:
            chunk = self._chunks.get(digest)
            if chunk is None:
                raise StorageError(f"unknown chunk {digest!r}")
            if chunk.quarantined:
                corrupted.add(digest)
            else:
                to_read.append(digest)
        values: dict[str, bytes] = {}
        newly: list[str] = []
        if to_read:
            try:
                values = self.fetch(to_read, workers=workers)
            except (StorageError, OSError):
                # A pack is unreadable (missing, truncated) — fall back to
                # per-digest reads so one bad pack only loses its own chunks.
                for digest in to_read:
                    try:
                        values.update(self.fetch([digest]))
                    except (StorageError, OSError):
                        corrupted.add(digest)
                        newly.append(digest)
        for digest in to_read:
            data = values.get(digest)
            if data is None:
                continue
            if hash_bytes(data) != digest:
                corrupted.add(digest)
                newly.append(digest)
                del values[digest]
        if newly and quarantine:
            self.quarantine(newly)
        return values, corrupted

    def quarantine(self, digests: Iterable[str]) -> None:
        """Mark chunks' stored bytes as corrupt (persisted in the ledger).

        Reads refuse quarantined chunks until a clean copy takes over the
        digest — via :meth:`repair` or simply the next save that stores it.
        Reference counts are untouched: the *identity* is fine, only the
        bytes at the current location are bad.
        """
        newly_quarantined: list[str] = []
        for digest in digests:
            chunk = self._chunks.get(digest)
            if chunk is None:
                raise StorageError(f"quarantine of unknown chunk {digest!r}")
            if not chunk.quarantined:
                chunk.quarantined = True
                newly_quarantined.append(digest)
        if newly_quarantined:
            self._persist_refs()
            self._notify_invalidated(newly_quarantined)

    def repair(self, digest: str, data: bytes) -> None:
        """Replace a quarantined chunk's bytes with a verified clean copy.

        The payload must hash to ``digest`` (salvage finds candidates in
        replicas: another set's full artifact holding the same layer
        bytes).  The clean copy is stored as a single-chunk repair pack,
        the corrupt location is disowned, and the digest keeps its
        accumulated reference count.
        """
        chunk = self._chunks.get(digest)
        if chunk is None:
            raise StorageError(f"repair of unknown chunk {digest!r}")
        payload = bytes(data)
        if hash_bytes(payload) != digest:
            raise ChunkCorruptionError(
                f"repair payload does not hash to {digest[:16]}...",
                digests=(digest,),
            )
        pack_id = f"repair-{digest[:16]}"
        while self.file_store.exists(pack_id):
            pack_id += "-r"
        self.file_store.put(
            payload, artifact_id=pack_id, category="parameters", digest=digest
        )
        self.document_store.insert(
            PACKS_COLLECTION,
            {
                "artifact": pack_id,
                "digests": [digest],
                "lengths": [len(payload)],
                "repair": True,
            },
            doc_id=pack_id,
            category="chunk-index",
        )
        self._mark_superseded(digest, chunk)
        self._chunks[digest] = _Chunk(
            pack_id, 0, len(payload), refs=chunk.refs, quarantined=False
        )
        self._persist_refs()

    def quarantined_digests(self) -> list[str]:
        """Digests currently refusing reads (management plane)."""
        return sorted(d for d, c in self._chunks.items() if c.quarantined)

    # -- reference management -------------------------------------------------
    def release(self, digests: Iterable[str]) -> None:
        """Drop one reference per digest (set deletion); persists the ledger."""
        changed = False
        for digest in digests:
            chunk = self._chunks.get(digest)
            if chunk is None:
                raise StorageError(f"release of unknown chunk {digest!r}")
            chunk.refs -= 1
            changed = True
        if changed:
            self._persist_refs()

    # -- garbage collection ---------------------------------------------------
    def sweep(self, workers: int = 1) -> SweepReport:
        """Mark-and-sweep: reclaim the bytes of zero-reference chunks.

        Dead chunks are removed from the index; a pack whose chunks are
        all dead is deleted, and a pack holding both live and dead chunks
        is rewritten with only its live bytes (the rewrite I/O is charged
        honestly).  Afterwards the store holds exactly the live chunks.
        """
        report = SweepReport()
        swept_digests: list[str] = []
        by_pack: dict[str, list[tuple[str, _Chunk]]] = {}
        for digest, chunk in self._chunks.items():
            by_pack.setdefault(chunk.artifact_id, []).append((digest, chunk))
        for artifact_id, entries in sorted(by_pack.items()):
            dead = [(d, c) for d, c in entries if c.refs <= 0]
            if not dead:
                continue
            live = [(d, c) for d, c in entries if c.refs > 0]
            report.chunks_reclaimed += len(dead)
            report.bytes_reclaimed += sum(c.length for _, c in dead)
            for digest, _ in dead:
                del self._chunks[digest]
                swept_digests.append(digest)
            if not live:
                self.file_store.delete(artifact_id)
                self.document_store.delete(PACKS_COLLECTION, artifact_id)
                report.packs_deleted.append(artifact_id)
                continue
            # Rewrite the pack with only its live chunks, preserving order.
            live.sort(key=lambda item: item[1].offset)
            blobs = self.file_store.get_ranges(
                artifact_id,
                [(c.offset, c.length) for _, c in live],
                workers=workers,
            )
            new_id = f"{artifact_id}-gc"
            while self.file_store.exists(new_id):
                new_id += "-gc"
            hasher = hashlib.sha256()
            for blob in blobs:
                hasher.update(blob)
            self.file_store.put(
                b"".join(blobs),
                artifact_id=new_id,
                category="parameters",
                workers=workers,
                digest=hasher.hexdigest(),
            )
            self.file_store.delete(artifact_id)
            offset = 0
            for digest, chunk in live:
                self._chunks[digest] = _Chunk(
                    new_id,
                    offset,
                    chunk.length,
                    refs=chunk.refs,
                    quarantined=chunk.quarantined,
                )
                offset += chunk.length
            self.document_store.delete(PACKS_COLLECTION, artifact_id)
            self.document_store.insert(
                PACKS_COLLECTION,
                {
                    "artifact": new_id,
                    "digests": [digest for digest, _ in live],
                    "lengths": [chunk.length for _, chunk in live],
                },
                doc_id=new_id,
                category="chunk-index",
            )
            report.packs_rewritten.append(new_id)
        if report.chunks_reclaimed:
            self._persist_refs()
        if swept_digests:
            self._notify_invalidated(swept_digests)
        return report

    def _notify_invalidated(self, digests: "list[str]") -> None:
        for listener in self.invalidation_listeners:
            listener(digests)

    # -- inspection (management plane, not charged) ---------------------------
    def __contains__(self, digest: str) -> bool:
        return digest in self._chunks

    def __len__(self) -> int:
        return len(self._chunks)

    def references(self, digest: str) -> int:
        """Current reference count of one chunk (0 if unknown)."""
        chunk = self._chunks.get(digest)
        return chunk.refs if chunk is not None else 0

    def is_quarantined(self, digest: str) -> bool:
        """Whether a digest's stored bytes currently refuse reads."""
        chunk = self._chunks.get(digest)
        return chunk is not None and chunk.quarantined

    def chunk_length(self, digest: str) -> int:
        """Stored byte length of one chunk (raises for unknown digests)."""
        try:
            return self._chunks[digest].length
        except KeyError:
            raise StorageError(f"unknown chunk {digest!r}") from None

    def total_references(self) -> int:
        return sum(chunk.refs for chunk in self._chunks.values())

    def live_bytes(self) -> int:
        """Bytes held by chunks with at least one reference."""
        return sum(c.length for c in self._chunks.values() if c.refs > 0)

    def dead_bytes(self) -> int:
        """Bytes held by zero-reference chunks (reclaimable by sweep)."""
        return sum(c.length for c in self._chunks.values() if c.refs <= 0)

    def stored_bytes(self) -> int:
        """Bytes of all indexed chunks, live or dead."""
        return sum(c.length for c in self._chunks.values())

    def dedup_ratio(self) -> float:
        """1 - unique/references: the fraction of references served free."""
        refs = self.total_references()
        if refs == 0:
            return 0.0
        return 1.0 - len(self._chunks) / refs
