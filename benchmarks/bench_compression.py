"""A2 — ablation: compression of Update's delta artifacts (§4.5).

The paper leaves compression as future work, citing ModelHub's delta
encoding.  This bench measures the storage/TTS/TTR trade-off of DEFLATE
and byte-plane-shuffled DEFLATE on the delta blobs.
"""

from benchmarks.conftest import BENCH_NUM_MODELS
from repro.bench.runner import ExperimentSettings, run_experiment


def test_compression_tradeoff(benchmark):
    settings = ExperimentSettings(num_models=BENCH_NUM_MODELS, cycles=2, runs=1)

    def run():
        return run_experiment("compression", settings).data["data"]

    data = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["codecs"] = {
        k: {m: round(v, 5) for m, v in values.items()} for k, values in data.items()
    }

    # Compression reduces storage (shuffle > plain zlib on float data)
    # at the cost of save-time compute.
    assert data["zlib"]["u3_storage_mb"] < data["none"]["u3_storage_mb"]
    assert data["shuffle-zlib"]["u3_storage_mb"] < data["zlib"]["u3_storage_mb"]
    assert data["zlib"]["median_u3_tts_s"] > data["none"]["median_u3_tts_s"]
