"""Loss functions with fused forward/backward computation."""

from __future__ import annotations

import numpy as np

from repro.nn.activations import softmax
from repro.nn.module import DTYPE


class Loss:
    """Base class: ``forward`` returns a scalar, ``backward`` the input grad."""

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return self.forward(prediction, target)


class MSELoss(Loss):
    """Mean squared error, averaged over all elements.

    The battery voltage-regression models train with this loss.
    """

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction = np.asarray(prediction, dtype=DTYPE)
        target = np.asarray(target, dtype=DTYPE)
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction shape {prediction.shape} != target shape {target.shape}"
            )
        self._diff = prediction - target
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return (2.0 / self._diff.size) * self._diff


class CrossEntropyLoss(Loss):
    """Softmax cross entropy over integer class targets.

    ``prediction`` holds raw logits of shape ``(batch, classes)``;
    ``target`` holds integer class indices of shape ``(batch,)``.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._target: np.ndarray | None = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction = np.asarray(prediction, dtype=DTYPE)
        target = np.asarray(target)
        if prediction.ndim != 2:
            raise ValueError(f"expected 2-D logits, got shape {prediction.shape}")
        if target.shape != (prediction.shape[0],):
            raise ValueError(
                f"expected target shape ({prediction.shape[0]},), got {target.shape}"
            )
        if target.min() < 0 or target.max() >= prediction.shape[1]:
            raise ValueError("target class index out of range")
        self._probs = softmax(prediction)
        self._target = target.astype(np.int64)
        batch = prediction.shape[0]
        picked = self._probs[np.arange(batch), self._target]
        return float(-np.mean(np.log(np.maximum(picked, 1e-12))))

    def backward(self) -> np.ndarray:
        if self._probs is None or self._target is None:
            raise RuntimeError("backward called before forward")
        batch = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(batch), self._target] -= 1.0
        return grad / batch
