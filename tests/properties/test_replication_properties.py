"""Property-based tests over replicated storage.

The replication invariant: with overlapping quorums (W + R > N), no
single-replica fault schedule — a crash (before/after/torn write) or a
silent corruption, at any operation, on any replica — can change the
bytes a recovery returns or prevent a save from committing.  And after
the replica is revived, one anti-entropy scrub restores a fully
converged, deep-fsck-clean archive.
"""

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.config import ArchiveConfig
from repro.core.approach import SaveContext
from repro.core.fsck import ArchiveFsck, scrub_archive
from repro.core.manager import MultiModelManager
from repro.core.model_set import ModelSet
from repro.storage.faults import FaultInjector, inject_replica_faults
from repro.storage.journal import attach_journal

NUM_REPLICAS = 3

#: (W, R) pairs with W + R > N.  A quorum of 3 needs every replica
#: reachable, so those pairs only tolerate faults that leave the victim
#: responding (silent corruption), not crashes.
QUORUMS = [(2, 2), (2, 3), (3, 2)]


def build_models(seed):
    return ModelSet.build("FFNN-48", num_models=2, seed=seed)


def make_manager(approach, dedup, write_quorum, read_quorum):
    context = SaveContext.create(
        ArchiveConfig(
            replicas=NUM_REPLICAS,
            write_quorum=write_quorum,
            read_quorum=read_quorum,
            dedup=dedup,
        )
    )
    attach_journal(context)
    return MultiModelManager.with_approach(approach, context=context)


def assert_bytes_identical(recovered, reference):
    for index in range(len(reference.states)):
        for name, values in reference.state(index).items():
            assert (
                recovered.state(index)[name].tobytes() == values.tobytes()
            ), (index, name)


class TestSingleReplicaFaultSchedules:
    @given(
        approach=st.sampled_from(["baseline", "update", "pas-delta"]),
        dedup=st.booleans(),
        derived=st.booleans(),
        replica=st.integers(min_value=0, max_value=NUM_REPLICAS - 1),
        quorums=st.sampled_from(QUORUMS),
        kind=st.sampled_from(["down", "corrupt", "both"]),
        raw_point=st.integers(min_value=0, max_value=10_000),
        raw_second=st.integers(min_value=0, max_value=10_000),
        fault_seed=st.integers(min_value=0, max_value=2**16),
        data_seed=st.integers(min_value=0, max_value=32),
    )
    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_recovery_unchanged_by_any_single_replica_fault(
        self,
        approach,
        dedup,
        derived,
        replica,
        quorums,
        kind,
        raw_point,
        raw_second,
        fault_seed,
        data_seed,
    ):
        write_quorum, read_quorum = quorums
        # A crashed replica cannot serve either quorum, so down faults
        # need W and R both satisfiable by the surviving replicas.
        assume(
            kind == "corrupt"
            or (write_quorum < NUM_REPLICAS and read_quorum < NUM_REPLICAS)
        )

        base = build_models(0)
        target = build_models(data_seed) if derived else base

        # Fault-free dry run: the oracle bytes and the op count on the
        # victim replica, which bounds the fault schedule.
        probe = make_manager(approach, dedup, write_quorum, read_quorum)
        probe_base = probe.save_set(base) if derived else None
        counter = inject_replica_faults(probe.context, replica, FaultInjector())
        if derived:
            probe_id = probe.save_set(target, base_set_id=probe_base)
        else:
            probe_id = probe.save_set(target)
        reference = probe.recover_set(probe_id)
        ops = counter.ops
        assume(ops > 0)

        schedule = {}
        if kind in ("down", "both"):
            schedule["down_at"] = raw_point % ops
        if kind in ("corrupt", "both"):
            schedule["corrupt_at"] = raw_second % ops

        manager = make_manager(approach, dedup, write_quorum, read_quorum)
        base_id = manager.save_set(base) if derived else None
        injector = inject_replica_faults(
            manager.context,
            replica,
            FaultInjector(seed=fault_seed, **schedule),
        )
        if derived:
            set_id = manager.save_set(target, base_set_id=base_id)
        else:
            set_id = manager.save_set(target)

        # The save committed and recovery — with the replica still
        # faulty — returns exactly the oracle bytes.
        assert_bytes_identical(manager.recover_set(set_id), reference)

        # Revive, scrub, and the archive converges to deep-clean.
        injector.revive()
        scrub = scrub_archive(manager.context, deep=True)
        assert scrub.converged, scrub.summary()
        fsck = ArchiveFsck(manager.context).run(deep=True)
        assert fsck.ok, fsck.summary()
        assert_bytes_identical(manager.recover_set(set_id), reference)
