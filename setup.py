"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` requires building an editable wheel (PEP 660), which
is unavailable offline here; ``python setup.py develop`` provides the
legacy egg-link editable install instead.
"""

from setuptools import setup

setup()
