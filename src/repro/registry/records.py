"""Registry record plumbing: collections, journaled raw writes, stores.

The registry is management-plane bookkeeping, exactly like the save
journal: its documents are written through the stores' uncharged
``_write_raw``/``_delete_raw`` paths so attaching a registry changes no
approach's benchmark accounting.  Unlike plain raw writes, every record
mutation logs its undo information into the *active journal transaction
first* — so a registry record made inside a save transaction commits or
rolls back atomically with the save itself, and a crash mid-record is
repaired by the same :meth:`~repro.storage.journal.SaveJournal.recover`
pass that repairs torn saves.
"""

from __future__ import annotations

from pathlib import Path

from repro.storage.journal import SaveJournal, innermost

#: Directory name of the fleet-level registry subtree under a fleet root
#: (outside every shard, like ``deadletter/``).
REGISTRY_DIR = "registry"

#: One document per model family: ``{"root_set": <first recorded id>}``.
FAMILIES_COLLECTION = "registry_families"
#: One document per registered set, keyed by set id: family membership,
#: version number, derivation edge, and (on fleets) shard placement.
VERSIONS_COLLECTION = "registry_versions"
#: One document per ``family:tag`` pair: ``{"family", "tag", "set_id"}``.
TAGS_COLLECTION = "registry_tags"

#: All collections owned by the registry (rebuild clears exactly these).
REGISTRY_COLLECTIONS = (
    FAMILIES_COLLECTION,
    VERSIONS_COLLECTION,
    TAGS_COLLECTION,
)

#: Mirrors :data:`repro.core.approach.SETS_COLLECTION` and
#: :data:`repro.core.update.HASH_COLLECTION`.  Not imported: the core
#: package builds registries, not the other way around (same convention
#: as :mod:`repro.storage.journal`).
SETS_COLLECTION = "model_sets"
HASH_COLLECTION = "hash_info"


def journaled_write(store, journal, collection: str, doc_id: str, document: dict):
    """Raw-write one registry document, undo-logged against any open txn.

    Inside a save transaction the op joins the save's journal entry;
    standalone callers open their own transaction around this.  With no
    journal (in-memory contexts) the write is plain raw.
    """
    txn = journal.active_txn() if journal is not None else None
    if txn is not None:
        prior = store._read_raw(collection, doc_id)
        if prior is None:
            txn.log_op(
                {"op": "insert_doc", "collection": collection, "doc_id": doc_id}
            )
        else:
            txn.log_op(
                {
                    "op": "replace_doc",
                    "collection": collection,
                    "doc_id": doc_id,
                    "prior": prior,
                }
            )
    store._write_raw(collection, doc_id, document)


def journaled_delete(store, journal, collection: str, doc_id: str):
    """Raw-delete one registry document, undo-logged against any open txn."""
    txn = journal.active_txn() if journal is not None else None
    if txn is not None:
        prior = store._read_raw(collection, doc_id)
        if prior is not None:
            txn.log_op(
                {
                    "op": "delete_doc",
                    "collection": collection,
                    "doc_id": doc_id,
                    "prior": prior,
                }
            )
    store._delete_raw(collection, doc_id)


def open_registry_store(directory: "str | Path | None"):
    """Build the standalone (fleet-level) registry store pair.

    ``directory=None`` builds an in-memory document store (in-memory
    fleets and tests); a path builds the durable ``registry/documents``
    subtree.  Either way the store gets a private
    :class:`~repro.storage.journal.SaveJournal` whose recovery runs on
    open, so a crash mid-record never surfaces a torn catalog entry.
    The journal's file store is a throwaway in-memory store: registry
    records are documents only.

    Returns ``(document_store, journal)``.
    """
    from repro.storage.file_store import FileStore

    if directory is None:
        from repro.storage.document_store import DocumentStore

        document_store = DocumentStore()
    else:
        from repro.storage.persistent import PersistentDocumentStore

        document_store = PersistentDocumentStore(Path(directory) / "documents")
    journal = SaveJournal(FileStore(), document_store)
    journal.recover()
    return document_store, journal


def raw_documents(store, collection: str):
    """``(doc_id, document)`` pairs of a collection, raw, in id order."""
    inner = innermost(store)
    return [
        (doc_id, inner._read_raw(collection, doc_id))
        for doc_id in inner.collection_ids(collection)
    ]
