"""Coalescing async ingest front door for the fleet engine.

Training jobs emit *per-model* updates ("model 3 of set X finished a
cycle"), but the archive's unit of persistence is the *set-level* save.
:class:`IngestQueue` sits between them: many concurrent clients
``submit()`` per-model states, the queue coalesces everything pending
for one recovery chain (last-writer-wins per model index), and flushes
one derived save per batch when either

* the batch holds ``flush_max_updates`` submitted updates, or
* the oldest pending update's age on the queue's :class:`SimClock`
  reaches ``flush_max_age_s``.

Flushes are dispatched to a bounded pool of shard-affine workers: jobs
for shard ``i`` always run on worker ``i % workers``, so per-chain save
order is preserved, shards proceed in parallel, and no lock is ever
shared across shards.  ``workers=0`` runs flushes inline on the
submitting thread (deterministic, useful in tests).

Determinism: set ids are allocated at *dispatch* time (under the queue
lock, in flush order), not when a worker gets around to the save — so
the archive an ingest run produces depends only on the submission
streams, not on thread scheduling.
"""

from __future__ import annotations

import queue
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.model_set import ModelSet
from repro.errors import ReproError
from repro.fleet.manager import FleetManager
from repro.simtime import SimClock

__all__ = ["IngestError", "IngestQueue", "SimClock"]


class IngestError(ReproError):
    """A submitted update could not be queued or flushed."""


@dataclass
class _Chain:
    """Pending state of one recovery chain (keyed by its root set id)."""

    root: str
    head: str  # id the next flush derives from
    last_saved: str = ""  # newest id that definitely exists on the shard
    inflight: int = 0  # dispatched batches not yet saved
    #: model index -> latest submitted state (last-writer-wins).
    pending: "OrderedDict[int, OrderedDict]" = field(default_factory=OrderedDict)
    updates: int = 0  # submissions absorbed by the current batch
    first_at: float = 0.0  # sim time the current batch started

    #: Materialized current contents, recovered once then updated in
    #: memory across flushes (the worker owning this chain's shard is
    #: the only mutator).
    materialized: "ModelSet | None" = None


_SHUTDOWN = object()


class IngestQueue:
    """Coalesces per-model updates into set-level saves on a fleet.

    Parameters
    ----------
    fleet:
        The :class:`~repro.fleet.manager.FleetManager` saves route
        through.
    flush_max_updates:
        Flush a chain once its batch has absorbed this many submitted
        updates (coalesced resubmissions count — they are work the
        queue elided).
    flush_max_age_s:
        Flush a chain once its oldest pending update is this old on the
        simulated clock (``None`` disables the age deadline; deadlines
        are checked on ``submit``/``advance``/``drain``).
    workers:
        Size of the flush worker pool, clamped to the shard count
        (``None`` = one worker per shard; ``0`` = flush inline on the
        submitting thread).
    """

    def __init__(
        self,
        fleet: FleetManager,
        flush_max_updates: int = 16,
        flush_max_age_s: "float | None" = None,
        workers: "int | None" = None,
        clock: "SimClock | None" = None,
    ) -> None:
        if flush_max_updates < 1:
            raise ValueError("flush_max_updates must be >= 1")
        self.fleet = fleet
        self.flush_max_updates = int(flush_max_updates)
        self.flush_max_age_s = flush_max_age_s
        self.clock = clock if clock is not None else SimClock()
        self._lock = threading.Lock()
        self._chains: dict[str, _Chain] = {}
        self._closed = False
        # -- counters (exported through the fleet's metrics registry) ------
        self.updates_submitted = 0
        self.updates_coalesced = 0
        self.flushes = 0
        self.models_written = 0
        #: One record per flush: set id, base, shard, batch accounting.
        self.flush_log: list[dict] = []
        # -- worker pool ---------------------------------------------------
        requested = fleet.num_shards if workers is None else int(workers)
        self._num_workers = max(0, min(requested, fleet.num_shards))
        self._queues: list["queue.Queue"] = [
            queue.Queue() for _ in range(self._num_workers)
        ]
        self._threads: list[threading.Thread] = []
        self._errors: list[BaseException] = []
        for index in range(self._num_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(self._queues[index],),
                name=f"ingest-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        registry = fleet.metrics
        if registry is not None:
            registry.register_provider("fleet:ingest", self._metrics)

    # -- metrics -----------------------------------------------------------
    @property
    def depth(self) -> int:
        """Pending (coalesced) per-model entries not yet flushed."""
        with self._lock:
            return sum(len(chain.pending) for chain in self._chains.values())

    @property
    def coalescing_ratio(self) -> float:
        """Submitted per-model updates per set-level save (>1 = batching)."""
        return self.updates_submitted / max(1, self.flushes)

    @property
    def write_elision_ratio(self) -> float:
        """Submitted updates per model actually written (>1 = overwrites
        absorbed by last-writer-wins before they hit storage)."""
        return self.updates_submitted / max(1, self.models_written)

    def _metrics(self) -> dict:
        with self._lock:
            depth = sum(len(chain.pending) for chain in self._chains.values())
        return {
            "ingest_queue_depth": depth,
            "ingest_updates_total": self.updates_submitted,
            "ingest_coalesced_updates_total": self.updates_coalesced,
            "ingest_flushes_total": self.flushes,
            "ingest_models_written_total": self.models_written,
            "ingest_coalescing_ratio": self.coalescing_ratio,
        }

    # -- submission --------------------------------------------------------
    def submit(self, set_id: str, model_index: int, state: "OrderedDict") -> None:
        """Queue one model's new state for the chain containing ``set_id``.

        A resubmission for a model index already pending replaces the
        previous state (last-writer-wins) — the superseded write never
        reaches storage.  May trigger flushes (of this chain by count,
        of any chain by age); with inline workers those saves run before
        ``submit`` returns.
        """
        if model_index < 0:
            raise IngestError(f"model index must be >= 0, got {model_index}")
        # Chain resolution may read descriptors; do it outside the queue
        # lock (memoized by the fleet).
        root = self.fleet.root_of(set_id)
        jobs = []
        with self._lock:
            if self._closed:
                raise IngestError("the ingest queue is closed")
            chain = self._chains.get(root)
            if chain is None:
                chain = _Chain(root=root, head=set_id, last_saved=set_id)
                self._chains[root] = chain
            if not chain.pending:
                chain.first_at = self.clock.now
            if model_index in chain.pending:
                self.updates_coalesced += 1
            chain.pending[model_index] = state
            chain.updates += 1
            self.updates_submitted += 1
            if chain.updates >= self.flush_max_updates:
                jobs.append(self._dispatch_locked(chain))
            jobs.extend(self._due_by_age_locked())
        self._run_or_enqueue(jobs)

    def advance(self, seconds: float) -> None:
        """Move the simulated clock and flush chains past the age deadline."""
        self.clock.advance(seconds)
        with self._lock:
            jobs = self._due_by_age_locked()
        self._run_or_enqueue(jobs)

    def flush(self, set_id: "str | None" = None) -> None:
        """Force-flush one chain (by any of its set ids) or everything."""
        root = self.fleet.root_of(set_id) if set_id is not None else None
        with self._lock:
            if root is None:
                chains = [c for c in self._chains.values() if c.pending]
                chains.sort(key=lambda chain: chain.root)
            else:
                chain = self._chains.get(root)
                chains = [chain] if chain is not None and chain.pending else []
            jobs = [self._dispatch_locked(chain) for chain in chains]
        self._run_or_enqueue(jobs)

    def drain(self) -> None:
        """Flush all pending batches and wait until every save finished.

        Re-raises the first worker error, if any.
        """
        self.flush()
        for job_queue in self._queues:
            job_queue.join()
        self._raise_pending_error()

    def close(self) -> None:
        """Drain, then stop the worker pool.  Idempotent.

        Close *never discards*: every pending-but-unflushed update is
        flushed and saved before the pool stops (``close()`` ==
        ``drain()`` + shutdown), and the first worker error — including
        a failed flush whose allocation was rolled back — is re-raised
        after the pool is already stopped, so no save can race the
        shutdown.  Callers that want crash semantics (drop pending work
        on the floor) use :meth:`abort` instead.
        """
        try:
            self.drain()
        finally:
            self._shutdown_pool()

    def abort(self) -> None:
        """Stop the pool *without* flushing pending updates.  Idempotent.

        Simulates the ingest tier dying: in-flight saves finish (a real
        crash would tear them through the journal instead, which the
        crash matrix covers), but pending-but-unflushed updates are
        discarded and ``submit`` refuses new work.  Worker errors are
        swallowed — the caller is abandoning the queue, and the fleet
        allocation rollback in :meth:`_execute` already ran.
        """
        with self._lock:
            for chain in self._chains.values():
                chain.pending = OrderedDict()
                chain.updates = 0
        self._shutdown_pool()
        with self._lock:
            self._errors.clear()

    def _shutdown_pool(self) -> None:
        """Mark the queue closed and stop the workers (idempotent)."""
        with self._lock:
            already = self._closed
            self._closed = True
        if not already:
            for job_queue in self._queues:
                job_queue.put(_SHUTDOWN)
            for thread in self._threads:
                thread.join()
        registry = self.fleet.metrics
        if registry is not None:
            registry.unregister_provider("fleet:ingest")

    def __enter__(self) -> "IngestQueue":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- dispatch ----------------------------------------------------------
    def _due_by_age_locked(self) -> list[dict]:
        if self.flush_max_age_s is None:
            return []
        now = self.clock.now
        due = [
            chain
            for chain in self._chains.values()
            if chain.pending and now - chain.first_at >= self.flush_max_age_s
        ]
        due.sort(key=lambda chain: chain.root)
        return [self._dispatch_locked(chain) for chain in due]

    def _dispatch_locked(self, chain: _Chain) -> dict:
        """Turn a chain's pending batch into a save job (queue lock held).

        Allocates the set id now — in dispatch order — and advances the
        chain head so back-to-back batches of one chain derive from each
        other even while earlier saves are still running on a worker.
        """
        base = chain.head
        set_id, shard = self.fleet.allocate_save(base_set_id=base)
        job = {
            "set_id": set_id,
            "base": base,
            "root": chain.root,
            "shard": shard,
            "states": chain.pending,
            "updates": chain.updates,
            "chain": chain,
        }
        chain.head = set_id
        chain.inflight += 1
        chain.pending = OrderedDict()
        chain.updates = 0
        return job

    def _run_or_enqueue(self, jobs: list[dict]) -> None:
        for job in jobs:
            if self._num_workers == 0:
                self._execute(job)
            else:
                self._queues[job["shard"] % self._num_workers].put(job)
        if self._num_workers == 0:
            self._raise_pending_error()

    def _worker_loop(self, job_queue: "queue.Queue") -> None:
        while True:
            job = job_queue.get()
            if job is _SHUTDOWN:
                job_queue.task_done()
                return
            try:
                self._execute(job)
            finally:
                job_queue.task_done()

    def _execute(self, job: dict) -> None:
        """Materialize the chain, apply the batch, save one derived set.

        Runs on the worker owning the chain's shard (or inline), which
        is the chain's only mutator — the materialized set needs no
        extra locking.
        """
        chain: _Chain = job["chain"]
        try:
            if chain.materialized is None:
                chain.materialized = self.fleet.recover_set(job["base"])
            current = chain.materialized
            for model_index, state in job["states"].items():
                if not 0 <= model_index < len(current):
                    raise IngestError(
                        f"model index {model_index} out of range for the "
                        f"{len(current)}-model chain rooted at {job['root']!r}"
                    )
                current.states[model_index] = state
            self.fleet.execute_save(
                job["set_id"],
                job["shard"],
                current,
                base_set_id=job["base"],
                coalesce={
                    "updates": job["updates"],
                    "models": len(job["states"]),
                },
            )
        except BaseException as error:  # noqa: BLE001 - surfaced by drain()
            # Roll the chain back to its last durable save: release the
            # phantom id, drop the half-applied materialization, and —
            # once no younger batch is in flight — point the head back at
            # a set that actually exists so later submissions still work.
            self.fleet.forget_allocation(job["set_id"])
            with self._lock:
                chain.inflight -= 1
                chain.materialized = None
                if chain.inflight == 0:
                    chain.head = chain.last_saved
                self._errors.append(error)
            return
        with self._lock:
            chain.inflight -= 1
            chain.last_saved = job["set_id"]
            self.flushes += 1
            self.models_written += len(job["states"])
            self.flush_log.append(
                {
                    "set_id": job["set_id"],
                    "base": job["base"],
                    "root": job["root"],
                    "shard": job["shard"],
                    "updates": job["updates"],
                    "models": len(job["states"]),
                }
            )

    def _raise_pending_error(self) -> None:
        with self._lock:
            if not self._errors:
                return
            error = self._errors.pop(0)
        raise error
