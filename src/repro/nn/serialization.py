"""Binary codecs for parameter dictionaries.

Two encodings are provided, matching the two ways the paper's approaches
persist parameters:

* A **self-describing** codec (:func:`serialize_state_dict` /
  :func:`deserialize_state_dict`) that embeds layer names and shapes in
  every blob.  MMlib-base uses this per model, which is exactly the
  per-model key/metadata redundancy the paper's O1 identifies.
* A **schema-split** codec (:func:`parameters_to_bytes` /
  :func:`bytes_to_parameters` with a :class:`StateSchema`) that stores the
  raw float32 stream only; names and shapes live in a schema saved once
  per model set.  Baseline/Update/Provenance use this.

All multi-byte integers are little-endian.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import SerializationError
from repro.nn.module import DTYPE

_MAGIC = b"RSD1"
_ITEM_SIZE = np.dtype(DTYPE).itemsize

StateDict = "OrderedDict[str, np.ndarray]"


@dataclass(frozen=True)
class StateSchema:
    """Layer names and shapes of a parameter dictionary, without values.

    One schema describes every model in a set that shares an architecture,
    which is what lets the set-oriented approaches save it only once.
    """

    entries: tuple[tuple[str, tuple[int, ...]], ...]

    @classmethod
    def from_state_dict(cls, state: "OrderedDict[str, np.ndarray]") -> "StateSchema":
        return cls(tuple((name, tuple(arr.shape)) for name, arr in state.items()))

    @property
    def num_parameters(self) -> int:
        return sum(int(np.prod(shape)) for _name, shape in self.entries)

    @property
    def num_bytes(self) -> int:
        """Bytes of one model's raw float32 parameter stream."""
        return self.num_parameters * _ITEM_SIZE

    def layer_names(self) -> list[str]:
        return [name for name, _shape in self.entries]

    def to_json(self) -> list[list[object]]:
        """JSON-serializable representation (used by document stores)."""
        return [[name, list(shape)] for name, shape in self.entries]

    @classmethod
    def from_json(cls, data: list[list[object]]) -> "StateSchema":
        try:
            entries = tuple(
                (str(name), tuple(int(d) for d in shape)) for name, shape in data
            )
        except (TypeError, ValueError) as exc:
            raise SerializationError(f"malformed schema JSON: {data!r}") from exc
        return cls(entries)


def serialize_state_dict(state: "OrderedDict[str, np.ndarray]") -> bytes:
    """Encode a state dict into a self-describing binary blob."""
    parts: list[bytes] = [_MAGIC, struct.pack("<I", len(state))]
    for name, array in state.items():
        # asarray, not ascontiguousarray: the latter promotes 0-dim arrays
        # to 1-dim and would record the wrong shape.  tobytes() emits
        # C-order bytes regardless of the input layout.
        array = np.asarray(array, dtype=DTYPE)
        encoded_name = name.encode("utf-8")
        if len(encoded_name) > 0xFFFF:
            raise SerializationError(f"layer name too long: {name!r}")
        parts.append(struct.pack("<H", len(encoded_name)))
        parts.append(encoded_name)
        parts.append(struct.pack("<B", array.ndim))
        parts.append(struct.pack(f"<{array.ndim}I", *array.shape))
        parts.append(array.tobytes())
    return b"".join(parts)


def deserialize_state_dict(blob: bytes) -> "OrderedDict[str, np.ndarray]":
    """Decode a blob produced by :func:`serialize_state_dict`."""
    if blob[:4] != _MAGIC:
        raise SerializationError("bad magic: not a serialized state dict")
    offset = 4
    try:
        (count,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for _ in range(count):
            (name_len,) = struct.unpack_from("<H", blob, offset)
            offset += 2
            name = blob[offset : offset + name_len].decode("utf-8")
            offset += name_len
            (ndim,) = struct.unpack_from("<B", blob, offset)
            offset += 1
            shape = struct.unpack_from(f"<{ndim}I", blob, offset)
            offset += 4 * ndim
            size = int(np.prod(shape)) if ndim else 1
            nbytes = size * _ITEM_SIZE
            array = np.frombuffer(blob, dtype=DTYPE, count=size, offset=offset)
            offset += nbytes
            state[name] = array.reshape(shape).copy()
    except (struct.error, UnicodeDecodeError, ValueError) as exc:
        raise SerializationError("truncated or corrupt state dict blob") from exc
    if offset != len(blob):
        raise SerializationError(
            f"trailing bytes in state dict blob: {len(blob) - offset}"
        )
    return state


def parameters_to_bytes(state: "OrderedDict[str, np.ndarray]") -> bytes:
    """Concatenate a state dict's float32 values into a raw byte stream."""
    return b"".join(
        np.asarray(arr, dtype=DTYPE).tobytes() for arr in state.values()
    )


def bytes_to_parameters(
    raw: bytes, schema: StateSchema, offset: int = 0
) -> "OrderedDict[str, np.ndarray]":
    """Decode one model's raw parameter stream according to ``schema``.

    ``offset`` addresses the model's start within a concatenated multi-model
    stream (Baseline stores all models in one file).
    """
    end = offset + schema.num_bytes
    if end > len(raw):
        raise SerializationError(
            f"parameter stream too short: need {end} bytes, have {len(raw)}"
        )
    state: "OrderedDict[str, np.ndarray]" = OrderedDict()
    cursor = offset
    for name, shape in schema.entries:
        size = int(np.prod(shape)) if shape else 1
        array = np.frombuffer(raw, dtype=DTYPE, count=size, offset=cursor)
        state[name] = array.reshape(shape).copy()
        cursor += size * _ITEM_SIZE
    return state


def state_dict_num_parameters(state: "OrderedDict[str, np.ndarray]") -> int:
    """Total number of scalar parameters in ``state``."""
    return sum(int(arr.size) for arr in state.values())


def state_dict_num_bytes(state: "OrderedDict[str, np.ndarray]") -> int:
    """Raw float32 payload size of ``state`` in bytes."""
    return state_dict_num_parameters(state) * _ITEM_SIZE
