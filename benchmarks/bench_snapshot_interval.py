"""A1 — ablation: bounding Update's recovery recursion with snapshots.

The paper notes (§2.2) that MMlib's delta chains cause "recursively
increasing recovery times that can be prevented by saving intermediate
model snapshots using the baseline approach".  This ablation quantifies
the storage-vs-TTR trade-off of that snapshot interval.
"""

from benchmarks.conftest import BENCH_NUM_MODELS
from repro.bench.runner import ExperimentSettings, run_experiment


def test_snapshot_interval_tradeoff(benchmark):
    settings = ExperimentSettings(num_models=BENCH_NUM_MODELS, cycles=6, runs=1)

    def run():
        return run_experiment("snapshot-interval", settings).data["data"]

    data = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["intervals"] = {
        k: {m: round(v, 5) for m, v in values.items()} for k, values in data.items()
    }

    none = data["none (paper)"]
    every2 = data["2"]
    every4 = data["4"]
    # Snapshots trade storage for recovery time.
    assert every2["storage_mb"] > every4["storage_mb"] > none["storage_mb"]
    assert every2["final_ttr_s"] < none["final_ttr_s"]
