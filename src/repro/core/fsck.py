"""Archive fsck and corruption-tolerant (salvage) recovery.

Two complementary tools for the "after an accident" half of the paper's
archival story:

* :class:`ArchiveFsck` — a structural audit of the whole archive:
  leftover journal transactions, set descriptors referencing missing
  artifacts, artifacts referenced by nothing (orphans a rolled-back save
  should have reclaimed), and a full refcount audit of the chunk ledger
  against the digest matrices of every chunked set.  ``deep=True`` also
  re-hashes every artifact against its recorded checksum and every chunk
  against its content digest.
* :func:`salvage_recover` — recovery that does not abort on the first
  corrupt byte.  Every model that still verifies is returned; the report
  lists exactly which models were lost and why.  For deduplicated sets
  the damage is isolated to the *chunk*: corrupt chunks are quarantined
  and, where another set stores the same layer bytes in a full artifact,
  repaired in place from that replica before any model is given up on.
* :func:`scrub_archive` — the anti-entropy pass for replicated archives
  (:mod:`repro.storage.replication`): flushes the replication layer's
  pending repair queues, converges every replica's documents onto the
  majority view (pruning stale journal entries and uncommitted minority
  writes), re-copies missing/corrupt/divergent artifact replicas from a
  verifying donor, prunes minority orphans, reassembles packs per chunk
  across replicas when no whole copy survives, and repairs quarantined
  chunks.  After a clean scrub the replicas are byte-identical again.

Exit-code convention (used by the ``repro-archive fsck`` / ``scrub``
CLI verbs): **0** clean, **1** issues that were (or can be) repaired,
**2** unrecoverable data loss.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.core.approach import SETS_COLLECTION, SaveContext
from repro.core.baseline import _chunked_digests, _layer_from_bytes
from repro.core.mmlib_base import MODELS_COLLECTION
from repro.core.update import HASH_COLLECTION, _layer_nbytes
from repro.errors import DocumentNotFoundError
from repro.nn.serialization import StateSchema, deserialize_state_dict
from repro.observability import trace as _trace
from repro.storage.chunk_index import PACKS_COLLECTION
from repro.storage.hashing import hash_array, hash_bytes
from repro.storage.journal import JOURNAL_COLLECTION


# ---------------------------------------------------------------------------
# fsck
# ---------------------------------------------------------------------------

@dataclass
class FsckReport:
    """Outcome of an archive consistency audit."""

    sets_checked: int = 0
    artifacts_checked: int = 0
    chunks_checked: int = 0
    #: Journal transactions still on disk — a crashed process whose
    #: cleanup has not run yet (``open()`` repairs these automatically).
    pending_journal: list[str] = field(default_factory=list)
    #: ``{"set_id", "artifact"}`` — referenced but absent from the store.
    missing_artifacts: list[dict] = field(default_factory=list)
    #: Stored artifacts no set, model document, or chunk pack references.
    orphan_artifacts: list[str] = field(default_factory=list)
    #: ``{"digest", "expected", "actual"}`` — ledger refcount disagrees
    #: with the count implied by the surviving digest matrices.
    refcount_mismatches: list[dict] = field(default_factory=list)
    #: Artifacts whose bytes no longer match their recorded checksum
    #: (deep scan only).
    corrupt_artifacts: list[str] = field(default_factory=list)
    #: Chunks whose bytes no longer hash to their digest (deep scan only).
    corrupt_chunks: list[str] = field(default_factory=list)
    #: Chunks already quarantined before this run.
    quarantined_chunks: list[str] = field(default_factory=list)
    #: Artifacts corrupt on *some* replica while a clean copy survives
    #: elsewhere — degraded, not lost; a scrub heals them (deep scan of a
    #: replicated archive only).
    degraded_artifacts: list[str] = field(default_factory=list)
    #: Per-replica diffs against the majority view (replicated archives
    #: only; see :func:`repro.storage.replication.replica_divergence`).
    replica_divergence: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.pending_journal
            or self.missing_artifacts
            or self.orphan_artifacts
            or self.refcount_mismatches
            or self.corrupt_artifacts
            or self.corrupt_chunks
            or self.quarantined_chunks
            or self.degraded_artifacts
            or self.replica_divergence
        )

    @property
    def exit_code(self) -> int:
        """0 clean; 1 repairable issues; 2 unrecoverable data loss.

        Loss means bytes with no surviving good copy: a referenced
        artifact absent everywhere, an artifact whose every copy fails
        verification, or a corrupt chunk.  Everything else — pending
        journal entries, orphans, refcount drift, quarantine records,
        degraded replicas, divergence — is repairable by recovery, GC,
        or a scrub.
        """
        if self.missing_artifacts or self.corrupt_artifacts or self.corrupt_chunks:
            return 2
        return 0 if self.ok else 1

    def summary(self) -> str:
        if self.ok:
            return (
                f"clean: {self.sets_checked} sets, "
                f"{self.artifacts_checked} artifacts, "
                f"{self.chunks_checked} chunks"
            )
        parts = []
        for label, items in (
            ("pending journal entries", self.pending_journal),
            ("missing artifacts", self.missing_artifacts),
            ("orphan artifacts", self.orphan_artifacts),
            ("refcount mismatches", self.refcount_mismatches),
            ("corrupt artifacts", self.corrupt_artifacts),
            ("corrupt chunks", self.corrupt_chunks),
            ("quarantined chunks", self.quarantined_chunks),
            ("degraded artifacts", self.degraded_artifacts),
            ("divergent replicas", self.replica_divergence),
        ):
            if items:
                parts.append(f"{len(items)} {label}")
        return "; ".join(parts)


class ArchiveFsck:
    """Structural (and optionally byte-level) audit of one save context."""

    def __init__(self, context: SaveContext) -> None:
        self.context = context

    def _collection(self, name: str) -> dict:
        return self.context.document_store._collections.get(name, {})

    def _referenced_artifacts(self) -> dict[str, str]:
        """artifact id -> the document that references it."""
        referenced: dict[str, str] = {}
        for set_id, doc in self._collection(SETS_COLLECTION).items():
            artifact = doc.get("params_artifact")
            if artifact is not None:
                referenced[str(artifact)] = set_id
        for model_id, doc in self._collection(MODELS_COLLECTION).items():
            for key in ("params_artifact", "code_artifact"):
                artifact = doc.get(key)
                if artifact is not None:
                    referenced[str(artifact)] = model_id
        for pack_id, doc in self._collection(PACKS_COLLECTION).items():
            referenced[str(doc["artifact"])] = pack_id
        return referenced

    def _expected_chunk_refs(self) -> dict[str, int]:
        """Reference counts implied by the surviving chunked sets.

        Mirrors the ingest accounting: every (model, layer) occurrence of
        a digest is one reference, duplicates within a set included.
        """
        expected: dict[str, int] = {}
        for set_id, doc in self._collection(SETS_COLLECTION).items():
            if doc.get("storage") != "chunked":
                continue
            try:
                matrix = _chunked_digests(self.context, doc, set_id)
            except DocumentNotFoundError:
                continue  # reported as missing-chunk-digests by verify
            for row in matrix:
                for digest in row:
                    expected[digest] = expected.get(digest, 0) + 1
        return expected

    def run(self, deep: bool = False) -> FsckReport:
        """Audit the archive; ``deep=True`` re-hashes every stored byte."""
        report = FsckReport()
        file_store = self.context.file_store
        report.pending_journal = sorted(
            self._collection(JOURNAL_COLLECTION)
        )
        report.sets_checked = len(self._collection(SETS_COLLECTION))

        referenced = self._referenced_artifacts()
        for artifact, owner in sorted(referenced.items()):
            if not file_store.exists(artifact):
                report.missing_artifacts.append(
                    {"set_id": owner, "artifact": artifact}
                )
        report.orphan_artifacts = sorted(
            set(file_store.ids()) - set(referenced)
        )
        report.artifacts_checked = len(referenced)

        if self._collection(PACKS_COLLECTION):
            chunk_store = self.context.chunk_store()
            expected = self._expected_chunk_refs()
            for digest in sorted(set(expected) | {
                d for d in chunk_store._chunks
            }):
                want = expected.get(digest, 0)
                have = chunk_store.references(digest)
                if want != have:
                    report.refcount_mismatches.append(
                        {"digest": digest, "expected": want, "actual": have}
                    )
            report.quarantined_chunks = chunk_store.quarantined_digests()
            report.chunks_checked = len(chunk_store)

        if deep:
            self._deep_scan(report, referenced)

        file_rep, doc_rep = self._replicated()
        if file_rep is not None or doc_rep is not None:
            from repro.storage.replication import replica_divergence

            report.replica_divergence = replica_divergence(
                file_rep, doc_rep, deep=deep
            )
        return report

    def _replicated(self):
        from repro.storage.replication import replicated_stores

        return replicated_stores(self.context)

    def _deep_scan(self, report: FsckReport, referenced: dict[str, str]) -> None:
        file_store = self.context.file_store
        file_rep, _doc_rep = self._replicated()
        pack_artifacts = {
            str(doc["artifact"]) for doc in self._collection(PACKS_COLLECTION).values()
        }
        lost_packs: set[str] = set()
        for artifact in sorted(referenced):
            # Pack artifacts are verified per chunk below — finer grain,
            # and a single flipped byte blames one chunk, not the pack —
            # except that a replicated archive still distinguishes a pack
            # copy gone bad on one replica (degraded) from all of them.
            if not file_store.exists(artifact):
                continue
            if file_rep is not None:
                verdicts = file_rep.verify_replicas(artifact).values()
                clean = sum(1 for verdict in verdicts if verdict is True)
                bad = sum(1 for verdict in verdicts if verdict is False)
                if bad and clean:
                    report.degraded_artifacts.append(artifact)
                elif bad:
                    report.corrupt_artifacts.append(artifact)
                    if artifact in pack_artifacts:
                        lost_packs.add(artifact)
                continue
            if artifact in pack_artifacts:
                continue
            if not file_store.verify_artifact(artifact):
                report.corrupt_artifacts.append(artifact)
        if self._collection(PACKS_COLLECTION):
            chunk_store = self.context.chunk_store()
            # Chunks whose pack has no clean copy anywhere cannot be
            # range-read; the pack is already reported as corrupt above.
            digests = [
                d
                for d, c in chunk_store._chunks.items()
                if not c.quarantined and c.artifact_id not in lost_packs
            ]
            _values, corrupted = chunk_store.fetch_verified(
                digests, workers=self.context.workers, quarantine=False
            )
            report.corrupt_chunks = sorted(corrupted)


# ---------------------------------------------------------------------------
# anti-entropy scrub (replicated archives)
# ---------------------------------------------------------------------------

@dataclass
class ScrubReport:
    """What one anti-entropy pass over a replicated archive did.

    ``exit_code`` follows the fsck convention: 0 — the replicas were
    already converged and nothing was touched; 1 — divergence was found
    and healed (or deferred because a replica is still unreachable);
    2 — at least one artifact has no recoverable copy anywhere.
    """

    replicas: int = 0
    #: Entries drained from the replication layer's repair queues.
    pending_flushed: int = 0
    #: Per-replica documents rewritten to the majority value.
    documents_healed: int = 0
    #: Per-replica documents deleted (stale journal entries, uncommitted
    #: minority writes the vote already hid).
    documents_pruned: int = 0
    #: ``(replica, artifact)`` copies re-written from a verifying donor.
    artifacts_healed: list[tuple] = field(default_factory=list)
    #: ``(replica, artifact)`` minority-orphan copies removed.
    artifacts_pruned: list[tuple] = field(default_factory=list)
    #: Pack artifacts rebuilt chunk by chunk across replicas because no
    #: whole copy verified anywhere.
    packs_reassembled: list[str] = field(default_factory=list)
    #: Quarantined chunk digests healed back into the chunk store.
    chunks_repaired: list[str] = field(default_factory=list)
    #: Bytes copied between replicas while healing.
    bytes_copied: int = 0
    #: Replicas that could not be scrubbed (still down); their repairs
    #: are deferred to the next pass.
    unreachable_replicas: list[str] = field(default_factory=list)
    #: Artifacts with no good copy on any replica — unrecoverable here
    #: (chunk-level salvage may still rescue parts of them).
    lost_artifacts: list[str] = field(default_factory=list)
    #: Divergence remaining after the pass (empty unless replicas are
    #: unreachable or data was lost).
    residual_divergence: list[dict] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(
            self.pending_flushed
            or self.documents_healed
            or self.documents_pruned
            or self.artifacts_healed
            or self.artifacts_pruned
            or self.packs_reassembled
            or self.chunks_repaired
        )

    @property
    def converged(self) -> bool:
        return not (
            self.lost_artifacts
            or self.residual_divergence
            or self.unreachable_replicas
        )

    @property
    def exit_code(self) -> int:
        if self.lost_artifacts:
            return 2
        if self.changed or not self.converged:
            return 1
        return 0

    def summary(self) -> str:
        if not self.changed and self.converged:
            return f"clean: {self.replicas} replicas converged"
        parts = []
        for label, count in (
            ("pending repairs flushed", self.pending_flushed),
            ("documents healed", self.documents_healed),
            ("documents pruned", self.documents_pruned),
            ("artifact copies healed", len(self.artifacts_healed)),
            ("artifact copies pruned", len(self.artifacts_pruned)),
            ("packs reassembled", len(self.packs_reassembled)),
            ("chunks repaired", len(self.chunks_repaired)),
            ("replicas unreachable", len(self.unreachable_replicas)),
            ("artifacts lost", len(self.lost_artifacts)),
            ("replicas still divergent", len(self.residual_divergence)),
        ):
            if count:
                parts.append(f"{count} {label}")
        return "; ".join(parts) or "no changes"


def scrub_archive(context: SaveContext, deep: bool = True) -> ScrubReport:
    """Converge every replica of a replicated archive (anti-entropy).

    The pass runs in dependency order: the replication layer's pending
    repair queues (file and document) are flushed first; documents are
    then synced onto the majority view (so the artifact heal below works
    against converged metadata); artifact copies are re-written from a
    verifying donor, with chunk-by-chunk cross-replica pack reassembly
    as the last resort when no whole copy survives; minority orphans are
    pruned; finally any quarantined chunks are repaired in place.
    ``deep=False`` trusts recorded digests instead of re-hashing every
    copy — cheaper, but a torn write (honest digest over torn bytes)
    needs ``deep=True``.

    Pruning (documents and minority-orphan artifacts) is refused while
    any replica is unreachable: a silent replica cannot cast its vote,
    so what looks like an uncommitted minority write may be committed
    data whose other holders are down.  Healing proceeds regardless —
    restoring redundancy is always safe — and the deferred prunes run
    on the next pass once every replica is back.

    On a non-replicated context this is a no-op that reports clean.

    Each scrub bumps the ``scrub_passes_total`` metrics counter and,
    when tracing is enabled on the context, records one ``scrub`` trace
    whose child spans cover the five passes.
    """
    metrics = getattr(context, "metrics", None)
    if metrics is not None:
        metrics.counter(
            "scrub_passes_total", "anti-entropy scrub passes run"
        ).inc()
    with context.trace("scrub", deep=deep):
        return _scrub_archive(context, deep)


def _scrub_archive(context: SaveContext, deep: bool) -> ScrubReport:
    from repro.storage.replication import (
        _REPLICA_FAILURES,
        _encode,
        _safe_digest,
        replica_divergence,
        replicated_stores,
    )

    file_rep, doc_rep = replicated_stores(context)
    report = ScrubReport()
    if file_rep is None or doc_rep is None:
        return report
    report.replicas = len(file_rep.replicas)
    unreachable: set[str] = set()

    # 0. Probe reachability up front: every pruning decision below must
    # know whether any replica is silent before it trusts a majority.
    for state in doc_rep.replicas:
        try:
            state.store._collections
        except _REPLICA_FAILURES:
            unreachable.add(state.name)
    for state in file_rep.replicas:
        try:
            state.store.ids()
        except _REPLICA_FAILURES:
            unreachable.add(state.name)

    with _trace.span("flush-repairs", kind="scrub"):
        # 1. Drain the targeted repairs failover already queued up.
        flushed = file_rep.repair_pending()
        doc_flushed = doc_rep.repair_pending()
        report.pending_flushed = (
            len(flushed["repaired"])
            + len(flushed["deleted"])
            + len(doc_flushed["repaired"])
            + len(doc_flushed["deleted"])
        )

    with _trace.span("converge-documents", kind="scrub"):
        # 2. Documents: every replica converges on the majority view.  This
        # also prunes stale journal entries and uncommitted minority writes
        # — but only with every replica present to vote.
        may_prune = not unreachable
        canonical_docs = doc_rep._collections
        for state in doc_rep.replicas:
            try:
                collections = state.store._collections
                for name, canonical in canonical_docs.items():
                    held = collections.get(name, {})
                    for doc_id, document in canonical.items():
                        if doc_id not in held or _encode(held[doc_id]) != _encode(
                            document
                        ):
                            state.store._write_raw(name, doc_id, document)
                            report.documents_healed += 1
                    if may_prune:
                        for doc_id in sorted(set(held) - set(canonical)):
                            state.store._delete_raw(name, doc_id)
                            report.documents_pruned += 1
                if may_prune:
                    for name in sorted(set(collections) - set(canonical_docs)):
                        for doc_id in sorted(collections[name]):
                            state.store._delete_raw(name, doc_id)
                            report.documents_pruned += 1
            except _REPLICA_FAILURES:
                unreachable.add(state.name)

    with _trace.span("heal-artifacts", kind="scrub"):
        # 3. Artifacts: the canonical set is every id held by a majority of
        # reachable replicas (majority digest), plus anything the converged
        # documents reference — a referenced copy must never be pruned even
        # if replication fell below majority.
        votes: dict[str, dict] = {}
        reachable = 0
        for state in file_rep.replicas:
            try:
                ids = state.store.ids()
            except _REPLICA_FAILURES:
                unreachable.add(state.name)
                continue
            reachable += 1
            for artifact_id in ids:
                digest = _safe_digest(state.store, artifact_id)
                counts = votes.setdefault(artifact_id, {})
                counts[digest] = counts.get(digest, 0) + 1
        referenced = ArchiveFsck(context)._referenced_artifacts()
        canonical: dict[str, str | None] = {}
        for artifact_id, counts in votes.items():
            holders = sum(counts.values())
            if holders * 2 > reachable or artifact_id in referenced:
                canonical[artifact_id] = max(counts.items(), key=lambda kv: kv[1])[0]

        pack_ids = set(canonical_docs.get(PACKS_COLLECTION, {}))
        for artifact_id in sorted(canonical):
            digest = canonical[artifact_id]
            donor = None
            for state in file_rep.replicas:
                try:
                    if not state.store.exists(artifact_id):
                        continue
                    if _safe_digest(state.store, artifact_id) != digest:
                        continue
                    if deep and not state.store.verify_artifact(artifact_id):
                        continue
                    data = state.store.get(artifact_id)
                except _REPLICA_FAILURES:
                    continue
                if digest is not None and hash_bytes(data) != digest:
                    continue
                donor = data
                break
            if donor is None and artifact_id in pack_ids:
                donor = _reassemble_pack(
                    file_rep, canonical_docs[PACKS_COLLECTION][artifact_id], artifact_id
                )
                if donor is not None:
                    digest = hash_bytes(donor)
                    report.packs_reassembled.append(artifact_id)
            if donor is None:
                report.lost_artifacts.append(artifact_id)
                continue
            for state in file_rep.replicas:
                if state.name in unreachable:
                    continue
                try:
                    healthy = (
                        state.store.exists(artifact_id)
                        and _safe_digest(state.store, artifact_id) == digest
                        and (not deep or state.store.verify_artifact(artifact_id))
                    )
                    if healthy:
                        continue
                    if state.store.exists(artifact_id):
                        state.store.delete(artifact_id)
                    state.store.put(
                        donor, artifact_id=artifact_id, category="repair", digest=digest
                    )
                except _REPLICA_FAILURES:
                    unreachable.add(state.name)
                    continue
                report.artifacts_healed.append((state.name, artifact_id))
                report.bytes_copied += len(donor)

    with _trace.span("prune-orphans", kind="scrub"):
        # 4. Prune minority orphans: copies no majority (and no document)
        # vouches for — leftovers of writes that never reached quorum.  Like
        # document pruning, refused while any replica is unreachable: the
        # "orphan" may be a committed artifact whose other holders are down.
        if not unreachable:
            for state in file_rep.replicas:
                try:
                    for artifact_id in sorted(
                        set(state.store.ids()) - set(canonical)
                    ):
                        state.store.delete(artifact_id)
                        report.artifacts_pruned.append((state.name, artifact_id))
                except _REPLICA_FAILURES:
                    unreachable.add(state.name)

    with _trace.span("repair-chunks", kind="scrub"):
        # 5. Quarantined chunks: with the packs converged, the damaged slice
        # can be re-read from any replica and verified against its digest.
        context._invalidate_chunk_store()
        if canonical_docs.get(PACKS_COLLECTION):
            chunk_store = context.chunk_store()
            for digest in chunk_store.quarantined_digests():
                record = chunk_store._chunks[digest]
                for state in file_rep.replicas:
                    try:
                        data = state.store.get_range(
                            record.artifact_id, record.offset, record.length
                        )
                    except Exception:
                        continue
                    if hash_bytes(data) == digest:
                        chunk_store.repair(digest, data)
                        report.chunks_repaired.append(digest)
                        break

    report.unreachable_replicas = sorted(unreachable)
    report.residual_divergence = replica_divergence(file_rep, doc_rep, deep=deep)
    return report


def _reassemble_pack(file_rep, pack_doc: dict, artifact_id: str) -> bytes | None:
    """Rebuild a pack whose every whole copy is damaged, chunk by chunk.

    Corruption rarely hits the same offsets on two replicas, so each
    chunk slice is tried against every replica and accepted where its
    content digest matches; the pack is byte-identical to the original
    exactly when all slices recover.
    """
    parts: list[bytes] = []
    offset = 0
    for digest, length in zip(pack_doc["digests"], pack_doc["lengths"]):
        length = int(length)
        slice_bytes = None
        for state in file_rep.replicas:
            try:
                if not state.store.exists(artifact_id):
                    continue
                data = state.store.get_range(artifact_id, offset, length)
            except Exception:
                continue
            if hash_bytes(data) == digest:
                slice_bytes = data
                break
        if slice_bytes is None:
            return None
        parts.append(slice_bytes)
        offset += length
    return b"".join(parts)


# ---------------------------------------------------------------------------
# salvage recovery
# ---------------------------------------------------------------------------

@dataclass
class SalvageReport:
    """Result of a corruption-tolerant recovery of one set.

    ``models`` holds every model that recovered *and verified*; ``failed``
    lists exactly the models that were lost, each with a reason.  For
    deduplicated sets ``corrupt_chunks`` names the damaged digests and
    ``repaired_chunks`` the ones healed from replicas before recovery.
    """

    set_id: str
    approach: str
    num_models: int
    models: "dict[int, OrderedDict]" = field(default_factory=dict)
    failed: list[dict] = field(default_factory=list)
    corrupt_chunks: list[str] = field(default_factory=list)
    repaired_chunks: list[str] = field(default_factory=list)

    @property
    def recovered_indices(self) -> list[int]:
        return sorted(self.models)

    @property
    def failed_indices(self) -> list[int]:
        return sorted(entry["model"] for entry in self.failed)

    @property
    def complete(self) -> bool:
        return not self.failed and len(self.models) == self.num_models


def salvage_recover(context: SaveContext, set_id: str) -> SalvageReport:
    """Recover every intact model of ``set_id``, reporting the rest.

    Dispatches on the set's storage format: chunked sets verify (and
    where possible repair) individual chunks, MMlib sets isolate damage
    to single model artifacts, and artifact-based sets fall back to
    per-model recovery checked against stored hash info when available.
    """
    document = context.document_store._collections.get(
        SETS_COLLECTION, {}
    ).get(set_id)
    if document is None:
        raise DocumentNotFoundError(f"unknown set {set_id!r}")
    approach_name = str(document.get("type"))
    report = SalvageReport(
        set_id=set_id,
        approach=approach_name,
        num_models=int(document.get("num_models", 0)),
    )
    if document.get("storage") == "chunked":
        _salvage_chunked(context, set_id, document, report)
    elif approach_name == "mmlib-base":
        _salvage_mmlib(context, document, report)
    else:
        _salvage_artifact_based(context, set_id, document, approach_name, report)
    return report


def _salvage_chunked(
    context: SaveContext, set_id: str, document: dict, report: SalvageReport
) -> None:
    """Chunk-precise salvage: damage is isolated to (model, layer) slots."""
    schema = StateSchema.from_json(document["schema"])
    dtype = str(document.get("param_dtype", "float32"))
    matrix = _chunked_digests(context, document, set_id)
    chunk_store = context.chunk_store()
    unique = dict.fromkeys(digest for row in matrix for digest in row)
    known = [digest for digest in unique if digest in chunk_store]
    missing = set(unique) - set(known)
    values, corrupted = chunk_store.fetch_verified(
        known, workers=context.workers, quarantine=True
    )
    if corrupted:
        repaired = _repair_from_replicas(context, sorted(corrupted))
        if repaired:
            healed, still_bad = chunk_store.fetch_verified(
                repaired, workers=context.workers, quarantine=True
            )
            values.update(healed)
            corrupted -= set(healed)
            corrupted |= still_bad
            report.repaired_chunks = sorted(healed)
    report.corrupt_chunks = sorted(corrupted)

    entries = schema.entries
    for index, row in enumerate(matrix):
        bad = [digest for digest in row if digest not in values]
        if bad:
            kinds = "missing" if all(d in missing for d in bad) else "corrupt"
            report.failed.append(
                {
                    "model": index,
                    "reason": f"{len(bad)} {kinds} chunk(s)",
                    "digests": sorted({d[:16] for d in bad}),
                }
            )
            continue
        state: "OrderedDict[str, Any]" = OrderedDict()
        for layer, (name, shape) in enumerate(entries):
            state[name] = _layer_from_bytes(values[row[layer]], shape, dtype)
        report.models[index] = state


def _repair_from_replicas(context: SaveContext, digests: list[str]) -> list[str]:
    """Heal corrupt chunks from full artifacts storing the same bytes.

    Any non-chunked full float32 set whose hash info lists one of the
    damaged digests holds a byte-identical replica of that layer at a
    computable offset; the slice is range-read, verified against the
    digest, and fed to :meth:`ChunkStore.repair`.  Returns the digests
    actually repaired.
    """
    remaining = set(digests)
    repaired: list[str] = []
    if not remaining:
        return repaired
    store = context.document_store
    chunk_store = context.chunk_store()
    sets = store._collections.get(SETS_COLLECTION, {})
    hash_docs = store._collections.get(HASH_COLLECTION, {})
    for other_id in sorted(sets):
        if not remaining:
            break
        doc = sets[other_id]
        if doc.get("storage") == "chunked":
            continue  # same chunk store — same corrupt bytes
        if doc.get("kind", "full") != "full" or "schema" not in doc:
            continue
        if doc.get("param_dtype", "float32") != "float32":
            continue
        hash_doc = hash_docs.get(other_id)
        if hash_doc is None:
            continue
        artifact = doc.get("params_artifact")
        if artifact is None or not context.file_store.exists(artifact):
            continue
        schema = StateSchema.from_json(doc["schema"])
        nbytes = _layer_nbytes(schema)
        offsets = [0] * len(nbytes)
        for layer in range(1, len(nbytes)):
            offsets[layer] = offsets[layer - 1] + nbytes[layer - 1]
        for model_index, row in enumerate(hash_doc["hashes"]):
            for layer, digest in enumerate(row):
                if digest not in remaining:
                    continue
                try:
                    data = context.file_store.get_range(
                        artifact,
                        offset=model_index * schema.num_bytes + offsets[layer],
                        length=nbytes[layer],
                    )
                except Exception:
                    continue  # replica itself unreadable — keep looking
                if hash_bytes(data) != digest:
                    continue  # replica damaged too
                chunk_store.repair(digest, data)
                remaining.discard(digest)
                repaired.append(digest)
    return repaired


def _salvage_mmlib(
    context: SaveContext, document: dict, report: SalvageReport
) -> None:
    """Per-model salvage: MMlib's one-artifact-per-model layout isolates
    damage to individual models by construction."""
    store = context.document_store
    file_store = context.file_store
    for index, model_id in enumerate(document.get("model_ids", [])):
        model_doc = store._collections.get(MODELS_COLLECTION, {}).get(model_id)
        if model_doc is None:
            report.failed.append(
                {"model": index, "reason": f"model document {model_id!r} missing"}
            )
            continue
        artifact = model_doc.get("params_artifact")
        if artifact is None or not file_store.exists(artifact):
            report.failed.append(
                {"model": index, "reason": "parameter artifact missing"}
            )
            continue
        if not file_store.verify_artifact(artifact):
            report.failed.append(
                {
                    "model": index,
                    "reason": "parameter artifact failed checksum verification",
                }
            )
            continue
        try:
            payload = file_store.get(artifact)
            report.models[index] = deserialize_state_dict(payload)
        except Exception as exc:
            report.failed.append({"model": index, "reason": str(exc)})


def _salvage_artifact_based(
    context: SaveContext,
    set_id: str,
    document: dict,
    approach_name: str,
    report: SalvageReport,
) -> None:
    """Salvage for full/delta artifact sets (baseline, update, …).

    Models are recovered one at a time so a failure (torn artifact,
    broken chain link) only loses the models it actually touches.  Sets
    with stored hash info (Update) verify every recovered model layer by
    layer — precise corruption attribution; sets without it fall back to
    the whole-artifact checksum, which can only vouch for all-or-nothing.
    """
    from repro.core.manager import APPROACHES

    approach = APPROACHES[approach_name](context)
    num_models = int(document.get("num_models", 0))
    hash_doc = context.document_store._collections.get(HASH_COLLECTION, {}).get(
        set_id
    )

    if hash_doc is None:
        # No per-model hashes: the artifact checksum is the only oracle.
        artifact = document.get("params_artifact")
        if artifact is not None and context.file_store.exists(artifact):
            if not context.file_store.verify_artifact(artifact):
                report.failed = [
                    {
                        "model": index,
                        "reason": "parameter artifact failed checksum "
                        "verification and the set stores no per-model "
                        "hashes to isolate the damage",
                    }
                    for index in range(num_models)
                ]
                return

    layer_names = None
    if hash_doc is not None:
        layer_names = list(hash_doc.get("layers", []))
    for index in range(num_models):
        try:
            state = approach.recover_model(set_id, index)
        except Exception as exc:
            report.failed.append({"model": index, "reason": str(exc)})
            continue
        if hash_doc is not None:
            names = layer_names or list(state)
            recomputed = [hash_array(state[name], length=64) for name in names]
            if recomputed != list(hash_doc["hashes"][index]):
                report.failed.append(
                    {
                        "model": index,
                        "reason": "recovered parameters do not match the "
                        "stored per-layer hash info",
                    }
                )
                continue
        report.models[index] = state
