"""E1 — Figure 3: storage consumption per use case, all approaches.

Benchmarks the save path of each approach over the full U1+U3 sequence
and records the per-use-case storage series.  Shape assertions pin the
paper's qualitative result: Baseline beats MMlib-base by ~30%, Update
drops an order of magnitude in U3, Provenance drops by >99%.
"""

import pytest

from benchmarks.conftest import record_series
from repro.bench.runner import APPROACH_NAMES, _save_all


@pytest.mark.parametrize("approach", APPROACH_NAMES)
def test_save_sequence_storage(benchmark, cases, settings, approach):
    def run():
        _manager, _ids, measurements = _save_all(approach, cases, settings.profile)
        return [m.bytes_written / 1e6 for m in measurements]

    per_case_mb = benchmark.pedantic(run, rounds=3, iterations=1)
    record_series(benchmark, {approach: per_case_mb}, unit="MB")

    raw_mb = cases[0].model_set.parameter_bytes / 1e6
    if approach in ("mmlib-base", "baseline"):
        # Full snapshots: constant across use cases, at least the raw payload.
        assert all(v >= raw_mb for v in per_case_mb)
        assert max(per_case_mb) - min(per_case_mb) < 0.01 * max(per_case_mb)
    if approach == "update":
        assert per_case_mb[1] < 0.3 * raw_mb
    if approach == "provenance":
        assert per_case_mb[1] < 0.01 * raw_mb


def test_baseline_beats_mmlib_base_by_about_30_percent(benchmark, cases, settings):
    def run():
        baseline = _save_all("baseline", [cases[0]], settings.profile)[2][0]
        mmlib = _save_all("mmlib-base", [cases[0]], settings.profile)[2][0]
        return 1.0 - baseline.bytes_written / mmlib.bytes_written

    improvement = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["improvement_vs_mmlib"] = round(improvement, 4)
    assert 0.15 < improvement < 0.40  # paper: 29% (server) / 33% (M1)
