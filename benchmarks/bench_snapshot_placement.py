"""A7 — optimal snapshot placement vs fixed intervals (cited work, §2.2).

Bhattacherjee et al.'s storage/recreation trade-off solved exactly on a
real Update chain with heterogeneous delta sizes: the DP optimum meets
the same recovery bound as the best fixed interval with strictly less
storage by snapshotting right after the expensive deltas.
"""

from benchmarks.conftest import BENCH_NUM_MODELS
from repro.bench.runner import ExperimentSettings, run_experiment


def test_snapshot_placement(benchmark):
    settings = ExperimentSettings(num_models=BENCH_NUM_MODELS, cycles=8, runs=1)

    def run():
        return run_experiment("snapshot-placement", settings).data

    data = benchmark.pedantic(run, rounds=2, iterations=1)
    placements = data["data"]
    benchmark.extra_info["placements"] = {
        name: {metric: round(value, 5) for metric, value in values.items()}
        for name, values in placements.items()
    }

    bound = data["bound_s"]
    assert placements["optimal"]["max_recovery_s"] <= bound + 1e-9
    # The optimum is at least as cheap as every feasible fixed interval —
    # and on this heterogeneous chain, strictly cheaper.
    for key, values in placements.items():
        if key == "optimal":
            continue
        if values.get("feasible"):
            assert (
                placements["optimal"]["storage_mb"] < values["storage_mb"] + 1e-9
            )
