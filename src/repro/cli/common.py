"""Shared plumbing for the ``repro-archive`` verb modules.

Every verb module receives the same two building blocks: the
:class:`~repro.config.ArchiveConfig` derived from the global flags
(:func:`config_from_args`) and a manager bound to the archive's
auto-detected approach (:func:`_manager_for`).  Keeping them here means
a verb module imports exactly one sibling and the argparse wiring in
:mod:`repro.cli.main` stays declarative.
"""

from __future__ import annotations

import argparse

from repro.config import ArchiveConfig, ObservabilityConfig, ServingConfig
from repro.core.approach import SETS_COLLECTION, SaveContext
from repro.core.manager import APPROACHES, MultiModelManager
from repro.errors import ReproError
from repro.storage.hardware import (
    ARCHIVE_PROFILE,
    LOCAL_PROFILE,
    M1_PROFILE,
    SERVER_PROFILE,
)

#: ``--profile`` choices → the latency model charged per store operation.
PROFILES = {
    "local": LOCAL_PROFILE,
    "server": SERVER_PROFILE,
    "m1": M1_PROFILE,
    "archive": ARCHIVE_PROFILE,
}


def config_from_args(args: argparse.Namespace) -> ArchiveConfig:
    """The :class:`ArchiveConfig` described by the global CLI flags.

    Each flag maps onto exactly one config field: ``--profile`` →
    ``profile``, ``--workers`` → ``workers``, ``--dedup`` → ``dedup``,
    ``--no-journal`` → ``journal=False``, ``--retries`` → ``retry``,
    ``--replicas``/``--write-quorum``/``--read-quorum`` → the replication
    topology, ``--serve-cache``/``--set-cache-bytes``/
    ``--chunk-cache-bytes`` → ``serving`` (the ``warm`` and ``evict``
    verbs imply ``--serve-cache``), and ``--trace``/``--trace-json`` →
    ``observability``.
    """
    retry = None
    if getattr(args, "retries", None):
        from repro.storage.faults import RetryPolicy

        retry = RetryPolicy(attempts=args.retries)
    trace_path = getattr(args, "trace_json", None)
    # warm/evict operate on the serving cache, so they imply it.
    serve = bool(
        getattr(args, "serve_cache", False)
        or getattr(args, "command", None) in ("warm", "evict")
    )
    serving = ServingConfig(
        enabled=serve,
        set_cache_bytes=getattr(args, "set_cache_bytes", None)
        or ServingConfig.set_cache_bytes,
        chunk_cache_bytes=getattr(args, "chunk_cache_bytes", None)
        or ServingConfig.chunk_cache_bytes,
    )
    return ArchiveConfig(
        profile=PROFILES[getattr(args, "profile_name", None) or "local"],
        workers=args.workers,
        dedup=getattr(args, "dedup", False),
        journal=not getattr(args, "no_journal", False),
        retry=retry,
        shards=getattr(args, "shards", None),
        replicas=args.replicas,
        write_quorum=args.write_quorum,
        read_quorum=args.read_quorum,
        serving=serving,
        observability=ObservabilityConfig(
            tracing=bool(getattr(args, "trace", False) or trace_path),
            metrics=bool(getattr(args, "live", False)),
            trace_path=trace_path,
        ),
    )


def _detect_approach(context: SaveContext) -> str | None:
    """The single approach used by the archive, or None if empty/mixed."""
    types = {
        str(doc.get("type"))
        for doc in context.document_store._collections.get(
            SETS_COLLECTION, {}
        ).values()
    }
    return types.pop() if len(types) == 1 else None


def _manager_for(context: SaveContext, approach: str | None) -> MultiModelManager:
    detected = _detect_approach(context)
    name = approach or detected
    if name is None:
        raise ReproError(
            "archive is empty or mixes approaches; pass --approach explicitly"
        )
    if name not in APPROACHES:
        raise ReproError(f"unknown approach {name!r}; known: {sorted(APPROACHES)}")
    return MultiModelManager.with_approach(name, context=context)
