"""Sampling which models get updated, and how, in one update cycle."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidUpdatePlanError
from repro.training.seeds import derive_seed


@dataclass(frozen=True)
class UpdatePlan:
    """Disjoint sets of fully and partially updated model indices."""

    full_indices: tuple[int, ...]
    partial_indices: tuple[int, ...]

    def __post_init__(self) -> None:
        overlap = set(self.full_indices) & set(self.partial_indices)
        if overlap:
            raise InvalidUpdatePlanError(
                f"models cannot be both fully and partially updated: {sorted(overlap)}"
            )

    @property
    def num_updated(self) -> int:
        return len(self.full_indices) + len(self.partial_indices)

    @classmethod
    def sample(
        cls,
        num_models: int,
        full_fraction: float,
        partial_fraction: float,
        seed: int,
        cycle: int,
    ) -> "UpdatePlan":
        """Draw the paper's update plan for one cycle.

        "We assume that for 5% of all models, a partial update of the
        parameters is necessary, and for another 5%, a full update"
        (§4.1) — i.e. two disjoint seeded samples.  Counts are rounded to
        the nearest integer of ``fraction * num_models``.
        """
        if num_models <= 0:
            raise InvalidUpdatePlanError("num_models must be positive")
        if full_fraction < 0 or partial_fraction < 0:
            raise InvalidUpdatePlanError("update fractions must be non-negative")
        if full_fraction + partial_fraction > 1.0:
            raise InvalidUpdatePlanError(
                "full and partial fractions may not exceed 1.0 combined"
            )
        num_full = min(round(num_models * full_fraction), num_models)
        # Both counts round independently, so their sum can overshoot a
        # small fleet (3 models at 0.5+0.5 rounds to 2+2); the partial
        # sample yields the overflow since full updates are the stronger
        # requirement.
        num_partial = min(
            round(num_models * partial_fraction), num_models - num_full
        )
        rng = np.random.default_rng(derive_seed("update-plan", seed, cycle))
        chosen = rng.choice(num_models, size=num_full + num_partial, replace=False)
        return cls(
            full_indices=tuple(int(i) for i in sorted(chosen[:num_full])),
            partial_indices=tuple(int(i) for i in sorted(chosen[num_full:])),
        )
