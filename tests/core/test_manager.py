"""Tests for the MultiModelManager facade."""

import pytest

from repro.config import ArchiveConfig
from repro.core.approach import SaveContext
from repro.core.manager import APPROACHES, MultiModelManager
from repro.core.model_set import ModelSet
from repro.storage.hardware import M1_PROFILE


@pytest.fixture
def models():
    return ModelSet.build("FFNN-48", num_models=5, seed=0)


class TestConstruction:
    def test_all_approaches_available(self):
        assert set(APPROACHES) == {
            "baseline",
            "update",
            "provenance",
            "mmlib-base",
            "pas-delta",
            "baseline-fp16",
        }

    @pytest.mark.parametrize("name", sorted(APPROACHES))
    def test_with_approach_builds_manager(self, name):
        manager = MultiModelManager.with_approach(name)
        assert manager.approach.name == name

    def test_unknown_approach_rejected(self):
        with pytest.raises(ValueError):
            MultiModelManager.with_approach("teleport")

    def test_profile_applied_to_fresh_context(self):
        manager = MultiModelManager.with_approach("baseline", ArchiveConfig(profile=M1_PROFILE))
        assert manager.context.file_store.profile is M1_PROFILE
        assert manager.context.document_store.profile is M1_PROFILE

    def test_shared_context_reused(self):
        context = SaveContext.create()
        manager = MultiModelManager.with_approach("baseline", context=context)
        assert manager.context is context

    def test_approach_kwargs_forwarded(self):
        manager = MultiModelManager.with_approach("update", snapshot_interval=3)
        assert manager.approach.snapshot_interval == 3


class TestSaveRecover:
    def test_initial_and_derived_dispatch(self, models):
        manager = MultiModelManager.with_approach("update")
        first = manager.save_set(models)
        derived = models.copy()
        derived.state(0)["0.weight"][:] += 1.0
        second = manager.save_set(derived, base_set_id=first)
        assert manager.recover_set(first).equals(models)
        assert manager.recover_set(second).equals(derived)

    def test_list_sets_in_save_order(self, models):
        manager = MultiModelManager.with_approach("baseline")
        ids = [manager.save_set(models) for _ in range(3)]
        assert manager.list_sets() == sorted(ids)

    def test_set_info_returns_descriptor(self, models):
        manager = MultiModelManager.with_approach("baseline")
        set_id = manager.save_set(models)
        info = manager.set_info(set_id)
        assert info["type"] == "baseline"
        assert info["num_models"] == 5

    def test_total_stored_bytes_grows(self, models):
        manager = MultiModelManager.with_approach("baseline")
        assert manager.total_stored_bytes() == 0
        manager.save_set(models)
        first = manager.total_stored_bytes()
        assert first > models.parameter_bytes
        manager.save_set(models)
        assert manager.total_stored_bytes() == pytest.approx(2 * first, rel=0.01)

    def test_set_ids_unique_across_approaches_on_shared_context(self, models):
        context = SaveContext.create()
        baseline = MultiModelManager.with_approach("baseline", context=context)
        update = MultiModelManager.with_approach("update", context=context)
        id_a = baseline.save_set(models)
        id_b = update.save_set(models)
        assert id_a != id_b
        assert baseline.recover_set(id_a).equals(models)
        assert update.recover_set(id_b).equals(models)
