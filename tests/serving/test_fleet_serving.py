"""Fleet serving: per-shard tier 1, one shared tier 2, aggregate counters."""

import numpy as np

from repro.config import ArchiveConfig, ServingConfig
from repro.core.model_set import ModelSet
from repro.fleet import FleetManager


def fleet_manager(shards=2, **serving_kwargs):
    config = ArchiveConfig(
        dedup=True,
        shards=shards,
        serving=ServingConfig(enabled=True, **serving_kwargs),
    )
    return FleetManager.with_approach("update", config)


def test_every_shard_gets_a_serving_cache():
    fleet = fleet_manager(shards=3)
    assert len(fleet.serving_caches) == 3
    for manager, cache in zip(fleet.shards, fleet.serving_caches):
        assert manager.context.serving is cache


def test_tier2_is_shared_across_shards():
    fleet = fleet_manager(shards=2)
    assert fleet.chunk_cache is not None
    for cache in fleet.serving_caches:
        assert cache.chunks is fleet.chunk_cache


def test_identical_sets_on_different_shards_share_chunks():
    fleet = fleet_manager(shards=2)
    models = ModelSet.build("FFNN-48", num_models=2, seed=0)
    first = fleet.save_set(models)
    second = fleet.save_set(models.copy())
    shard_a, shard_b = fleet.shard_of(first), fleet.shard_of(second)
    if shard_a == shard_b:  # placement collapsed both onto one shard
        return
    assert fleet.recover_set(first).equals(models)
    before = fleet.serving_counters()
    assert fleet.recover_set(second).equals(models)
    after = fleet.serving_counters()
    # The second shard's cold read found every chunk in the shared tier 2.
    assert after["chunk_hits"] - before["chunk_hits"] > 0
    assert after["chunk_misses"] == before["chunk_misses"]


def test_fleet_counters_do_not_double_count_the_shared_tier2():
    fleet = fleet_manager(shards=2)
    for seed in range(2):
        set_id = fleet.save_set(ModelSet.build("FFNN-48", num_models=2, seed=seed))
        fleet.recover_set(set_id)
    counters = fleet.serving_counters()
    assert counters["chunk_cache_entries"] == len(fleet.chunk_cache)


def test_fleet_recovery_byte_identical_with_cache():
    fleet = fleet_manager(shards=2)
    sets = {}
    for seed in range(3):
        models = ModelSet.build("FFNN-48", num_models=2, seed=seed)
        sets[fleet.save_set(models)] = models
    for set_id, models in sets.items():
        assert fleet.recover_set(set_id).equals(models)  # cold
        assert fleet.recover_set(set_id).equals(models)  # warm
    counters = fleet.serving_counters()
    assert counters["set_hits"] == 3
    assert counters["set_hit_rate"] == 0.5


def test_shard_configs_disable_their_own_serving():
    # The fleet installs the caches itself; a shard context opened from
    # the derived per-shard config must not build a second stack.
    from repro.fleet.manager import _shard_config

    config = ArchiveConfig(shards=2, serving=ServingConfig(enabled=True))
    assert _shard_config(config).serving.enabled is False
