"""State-of-health (SoH) aging schedule over update cycles.

The paper creates training data for the update use cases by decrementing
the SoH of the batteries every update cycle, "leading to different aging
trends from the initial SoH until the battery's end-of-life" (§4.1).
Each cell gets its own aging trend: a per-cell decrement rate drawn from
a seeded distribution, applied once per update cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: End-of-life threshold commonly used for EV cells.
END_OF_LIFE_SOH = 0.8


@dataclass
class AgingSchedule:
    """Deterministic per-cell SoH trajectories.

    Parameters
    ----------
    num_cells:
        Number of cells in the battery (models in the set).
    seed:
        Seed for the per-cell decrement rates.
    initial_soh:
        SoH of all cells at use case U1.
    mean_decrement / decrement_spread:
        Mean SoH loss per update cycle and the relative per-cell spread.
    """

    num_cells: int
    seed: int = 0
    initial_soh: float = 1.0
    mean_decrement: float = 0.01
    decrement_spread: float = 0.5
    _rates: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_cells <= 0:
            raise ValueError(f"num_cells must be positive, got {self.num_cells}")
        if not 0.0 < self.initial_soh <= 1.0:
            raise ValueError(f"initial_soh must be in (0, 1], got {self.initial_soh}")
        if self.mean_decrement < 0:
            raise ValueError("mean_decrement must be non-negative")
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 0xA61]))
        spread = self.mean_decrement * self.decrement_spread
        self._rates = rng.uniform(
            max(0.0, self.mean_decrement - spread),
            self.mean_decrement + spread,
            size=self.num_cells,
        )

    def soh_at(self, cell_index: int, update_cycle: int) -> float:
        """SoH of ``cell_index`` after ``update_cycle`` update cycles.

        Cycle 0 is the initial state (U1); each following cycle applies
        the cell's decrement rate.  Clamped to a small positive floor so
        the ECM stays well-defined past end-of-life.
        """
        if not 0 <= cell_index < self.num_cells:
            raise IndexError(f"cell_index {cell_index} out of range")
        if update_cycle < 0:
            raise ValueError(f"update_cycle must be non-negative, got {update_cycle}")
        soh = self.initial_soh - update_cycle * float(self._rates[cell_index])
        return max(soh, 0.05)

    def cells_past_end_of_life(self, update_cycle: int) -> list[int]:
        """Indices of cells at or below the end-of-life SoH threshold."""
        return [
            cell
            for cell in range(self.num_cells)
            if self.soh_at(cell, update_cycle) <= END_OF_LIFE_SOH
        ]
