"""Compare all four approaches on the paper's scenario, then ask the
recommender which to deploy.

Reproduces, at small scale, the trade-off picture of the paper's §4.5
discussion: storage consumption, time-to-save, and time-to-recover per
approach — and shows how the heuristic recommender (the paper's future
work) turns a scenario description into a deployment choice.

Run with::

    python examples/approach_comparison.py
"""

from repro.bench.metrics import measure_recover, measure_save
from repro.bench.report import format_table
from repro.config import ArchiveConfig
from repro.core.manager import MultiModelManager
from repro.core.recommender import ApproachRecommender, ScenarioProfile
from repro.storage.hardware import SERVER_PROFILE
from repro.workloads import MultiModelScenario, ScenarioConfig

NUM_MODELS = 150
CYCLES = 2


def main() -> None:
    scenario = MultiModelScenario(
        ScenarioConfig(num_models=NUM_MODELS, num_update_cycles=CYCLES, seed=1)
    )
    cases = list(scenario.use_cases())

    rows = []
    for approach in ("mmlib-base", "baseline", "update", "provenance"):
        manager = MultiModelManager.with_approach(approach, ArchiveConfig(profile=SERVER_PROFILE))
        set_ids: list[str] = []
        storage_mb = 0.0
        last_tts = 0.0
        for case in cases:
            base = set_ids[case.base_index] if case.base_index is not None else None
            set_id, measurement = measure_save(
                manager, case.model_set, base_set_id=base, update_info=case.update_info
            )
            set_ids.append(set_id)
            storage_mb += measurement.bytes_written / 1e6
            last_tts = measurement.total_s
        if approach == "provenance":
            # Replaying synthetic (non-trained) updates would not terminate
            # in matching parameters; recover the initial full set instead.
            _set, recover = measure_recover(manager, set_ids[0])
        else:
            _set, recover = measure_recover(manager, set_ids[-1])
        rows.append([approach, storage_mb, last_tts, recover.total_s])

    print(
        format_table(
            f"All approaches on {NUM_MODELS} x FFNN-48, U1 + {CYCLES} update cycles",
            ["approach", "total storage MB", "last TTS s", "TTR s"],
            rows,
            value_format="{:.4f}",
        )
    )

    print()
    recommender = ApproachRecommender(hardware=SERVER_PROFILE)
    fleet = ScenarioProfile(
        num_models=5000,
        update_rate=0.10,
        recoveries_per_cycle=0.0001,  # post-accident analysis only
        storage_price_per_gb=50.0,    # on-vehicle / fleet storage is scarce
        time_price_per_hour=1.0,
    )
    ranking = recommender.rank(fleet)
    print("recommended deployment for a 5000-cell fleet (archival use):")
    for estimate in ranking:
        print(
            f"  {estimate.approach:11s} cost/cycle={estimate.cost_per_cycle:10.5f} "
            f"(storage {estimate.storage_bytes_per_cycle / 1e6:8.2f} MB, "
            f"TTS {estimate.tts_s:7.3f} s, TTR {estimate.ttr_s:10.1f} s)"
        )
    print(f"-> choose: {ranking[0].approach}")


if __name__ == "__main__":
    main()
