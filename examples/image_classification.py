"""Image-classification scenario: the paper's second evaluation domain.

Manages a set of CIFAR-style CNN classifiers (e.g. per-device
personalized models) with the Update approach.  Each cycle, a few devices
fine-tune their classifier head on local data; the manager stores only
the changed layers.  The example demonstrates that the approaches are
domain-agnostic: everything the storage layer sees is a parameter
dictionary.

Run with::

    python examples/image_classification.py
"""

import numpy as np

from repro import MultiModelManager, ModelSet
from repro.datasets import SyntheticCifarDataset
from repro.nn.functional import accuracy, predict
from repro.training.pipeline import PipelineConfig, TrainingPipeline

NUM_DEVICES = 8
FINETUNED_DEVICES = (1, 4)


def main() -> None:
    models = ModelSet.build("CIFAR", num_models=NUM_DEVICES, seed=3)
    print(
        f"{NUM_DEVICES} per-device CIFAR classifiers, "
        f"{models.num_parameters_per_model} parameters each"
    )

    manager = MultiModelManager.with_approach("update")
    initial_id = manager.save_set(models)
    print(f"initial save: {manager.total_stored_bytes() / 1e6:.2f} MB")

    # Fine-tune the classifier head (the two Linear layers, Sequential
    # indices 10 and 12) on each device's local data.
    head_only = PipelineConfig(
        loss="cross-entropy",
        optimizer="adam",
        learning_rate=1e-3,
        epochs=2,
        batch_size=32,
        shuffle_seed=11,
        trainable_layers=("10", "12"),
    )
    updated = models.copy()
    test_data = SyntheticCifarDataset(num_samples=128, seed=999)
    test_x, test_y = test_data.arrays()
    for device in FINETUNED_DEVICES:
        local_data = SyntheticCifarDataset(num_samples=192, seed=device)
        model = updated.build_model(device)
        before_acc = accuracy(predict(model, test_x), test_y)
        TrainingPipeline(head_only).train(model, local_data)
        after_acc = accuracy(predict(model, test_x), test_y)
        updated.states[device] = model.state_dict()
        print(
            f"  device {device}: head fine-tuned, accuracy "
            f"{before_acc:.2f} -> {after_acc:.2f}"
        )

    before = manager.total_stored_bytes()
    derived_id = manager.save_set(updated, base_set_id=initial_id)
    delta = manager.total_stored_bytes() - before
    print(
        f"derived save: +{delta / 1e6:.3f} MB — only the {len(FINETUNED_DEVICES)} "
        "changed heads plus hash info"
    )

    recovered = manager.recover_set(derived_id)
    assert recovered.equals(updated)
    changed = [
        device
        for device in range(NUM_DEVICES)
        if not all(
            np.array_equal(models.state(device)[k], recovered.state(device)[k])
            for k in models.state(device)
        )
    ]
    print(f"recovery is bit-exact; devices with changed parameters: {changed}")


if __name__ == "__main__":
    main()
