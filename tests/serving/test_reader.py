"""Serving read path: byte-identity, accounting, and invalidation.

The contract under test: routing recovery through the tiered cache
never changes a single byte of any result, charges *zero* simulated
store time on a tier-1 hit, mirrors the oracle's charges exactly on a
cold chunked miss, and never serves a chunk that delete/GC/scrub has
quarantined or collected.
"""

import numpy as np
import pytest

from repro.config import ArchiveConfig, ServingConfig
from repro.core.manager import MultiModelManager
from repro.core.model_set import ModelSet
from repro.core.retention import RetentionManager


def serving_manager(approach="update", dedup=True, **serving_kwargs):
    config = ArchiveConfig(
        dedup=dedup,
        serving=ServingConfig(enabled=True, **serving_kwargs),
    )
    return MultiModelManager.with_approach(approach, config)


def perturbed(model_set, model=0, layer=0, delta=1.0):
    derived = model_set.copy()
    state = derived.state(model)
    name = list(state)[layer]
    state[name] = (state[name] + np.float32(delta)).astype(np.float32)
    return derived


class TestByteIdentity:
    @pytest.mark.parametrize("approach", ["baseline", "update", "pas-delta"])
    @pytest.mark.parametrize("dedup", [False, True])
    def test_cached_recovery_matches_oracle(self, approach, dedup):
        manager = serving_manager(approach, dedup=dedup)
        base = ModelSet.build("FFNN-48", num_models=3, seed=0)
        base_id = manager.save_set(base)
        derived = perturbed(base)
        derived_id = manager.save_set(derived, base_set_id=base_id)
        for set_id in (base_id, derived_id):
            oracle = manager.approach.recover(set_id)
            cold = manager.recover_set(set_id)
            warm = manager.recover_set(set_id)
            assert cold.equals(oracle)
            assert warm.equals(oracle)

    @pytest.mark.parametrize("approach", ["baseline", "update", "pas-delta"])
    def test_cached_recover_model_matches_oracle(self, approach):
        manager = serving_manager(approach, dedup=(approach != "pas-delta"))
        base = ModelSet.build("FFNN-48", num_models=3, seed=1)
        base_id = manager.save_set(base)
        derived = perturbed(base, model=2)
        derived_id = manager.save_set(derived, base_set_id=base_id)
        oracle = manager.approach.recover_model(derived_id, 2)
        for _ in range(2):  # cold then warm
            state = manager.recover_model(derived_id, 2)
            assert set(state) == set(oracle)
            for name in oracle:
                assert state[name].tobytes() == oracle[name].tobytes()

    def test_caller_mutation_cannot_poison_the_cache(self):
        manager = serving_manager()
        base = ModelSet.build("FFNN-48", num_models=2, seed=2)
        set_id = manager.save_set(base)
        first = manager.recover_set(set_id)
        name = list(first.state(0))[0]
        first.state(0)[name][:] = 0.0  # caller scribbles over the result
        again = manager.recover_set(set_id)
        assert again.equals(base)

    def test_recover_model_slices_a_cached_full_set(self):
        manager = serving_manager()
        base = ModelSet.build("FFNN-48", num_models=3, seed=3)
        set_id = manager.save_set(base)
        manager.recover_set(set_id)  # caches the full set
        before = manager.context.file_store.stats.snapshot()
        state = manager.recover_model(set_id, 1)
        delta = manager.context.file_store.stats.delta_since(before)
        assert delta.reads == 0
        for name, values in base.state(1).items():
            assert state[name].tobytes() == values.tobytes()

    def test_out_of_range_model_index_raises(self):
        manager = serving_manager()
        set_id = manager.save_set(ModelSet.build("FFNN-48", num_models=2, seed=4))
        with pytest.raises(IndexError):
            manager.recover_model(set_id, 5)


class TestAccounting:
    def test_tier1_hit_charges_zero_store_time(self):
        manager = serving_manager()
        base = ModelSet.build("FFNN-48", num_models=2, seed=5)
        set_id = manager.save_set(base)
        manager.recover_set(set_id)
        file_before = manager.context.file_store.stats.snapshot()
        doc_before = manager.context.document_store.stats.snapshot()
        result = manager.recover_set(set_id)
        file_delta = manager.context.file_store.stats.delta_since(file_before)
        doc_delta = manager.context.document_store.stats.delta_since(doc_before)
        assert result.equals(base)
        assert file_delta.reads == 0
        assert file_delta.simulated_read_s == 0.0
        assert doc_delta.reads == 0
        counters = manager.context.serving.counters()
        assert counters["set_hits"] == 1
        # ... but the logical bytes served are still counted.
        assert counters["logical_bytes_served"] >= 2 * base.parameter_bytes

    def test_reads_do_not_drift_stored_byte_accounting(self):
        manager = serving_manager()
        base = ModelSet.build("FFNN-48", num_models=2, seed=6)
        set_id = manager.save_set(base)
        stored = dict(
            manager.context.file_store.stats.snapshot().bytes_by_category
        )
        for _ in range(3):
            manager.recover_set(set_id)
        after = dict(manager.context.file_store.stats.snapshot().bytes_by_category)
        assert after == stored

    def test_differential_recovery_fetches_only_missing_chunks(self):
        manager = serving_manager()
        base = ModelSet.build("FFNN-48", num_models=2, seed=7)
        base_id = manager.save_set(base)
        derived = perturbed(base)
        derived_id = manager.save_set(derived, base_set_id=base_id)
        manager.recover_set(base_id)  # tier 2 now holds every base chunk
        before = manager.context.serving.stats.counters()
        result = manager.recover_set(derived_id)
        after = manager.context.serving.stats.counters()
        assert result.equals(derived)
        assert after["chunk_misses"] - before["chunk_misses"] == 1
        assert after["bytes_saved"] > before["bytes_saved"]

    def test_non_chunked_update_differential(self):
        manager = serving_manager(dedup=False)
        base = ModelSet.build("FFNN-48", num_models=2, seed=8)
        base_id = manager.save_set(base)
        derived = perturbed(base, model=1)
        derived_id = manager.save_set(derived, base_set_id=base_id)
        manager.recover_set(base_id)
        before = manager.context.serving.stats.counters()
        result = manager.recover_set(derived_id)
        after = manager.context.serving.stats.counters()
        assert result.equals(manager.approach.recover(derived_id))
        assert after["chunk_misses"] - before["chunk_misses"] == 1

    def test_differential_disabled_falls_back_to_oracle_path(self):
        manager = serving_manager(dedup=False, differential=False)
        base = ModelSet.build("FFNN-48", num_models=2, seed=9)
        base_id = manager.save_set(base)
        derived_id = manager.save_set(perturbed(base), base_set_id=base_id)
        result = manager.recover_set(derived_id)
        assert result.equals(manager.approach.recover(derived_id))
        assert manager.context.serving.stats.counters()["chunk_hits"] == 0


class TestInvalidation:
    def test_gc_drops_deleted_sets_from_the_cache(self):
        manager = serving_manager()
        base = ModelSet.build("FFNN-48", num_models=2, seed=10)
        base_id = manager.save_set(base)
        derived = perturbed(base)
        derived_id = manager.save_set(derived, base_set_id=base_id)
        manager.recover_set(base_id)
        manager.recover_set(derived_id)
        RetentionManager(manager.context).collect(keep=[derived_id])
        serving = manager.context.serving
        assert (base_id, None) not in [
            key for key in serving.sets.keys() if key[0] == base_id
        ] or not serving.sets.keys()
        assert manager.recover_set(derived_id).equals(derived)

    def test_compact_invalidates_the_rewritten_set(self):
        # Non-chunked: chunked deltas compact to a no-op (and keep their
        # cache entries), so only the rewritten case must invalidate.
        manager = serving_manager(dedup=False)
        base = ModelSet.build("FFNN-48", num_models=2, seed=11)
        base_id = manager.save_set(base)
        derived = perturbed(base)
        derived_id = manager.save_set(derived, base_set_id=base_id)
        manager.recover_set(derived_id)
        RetentionManager(manager.context).compact(derived_id)
        assert all(key[0] != derived_id for key in manager.context.serving.sets.keys())
        assert manager.recover_set(derived_id).equals(derived)

    def test_quarantined_chunk_is_never_served_from_tier2(self):
        manager = serving_manager()
        base = ModelSet.build("FFNN-48", num_models=2, seed=12)
        set_id = manager.save_set(base)
        manager.recover_set(set_id)
        serving = manager.context.serving
        store = manager.context.chunk_store()
        doomed = next(iter(store._chunks))
        serving.evict()  # keep tier 2, drop tier 1
        store.quarantine([doomed])
        assert doomed not in serving.chunks
        counters = serving.counters()
        assert counters["invalidations"] >= 1

    def test_sweep_drops_collected_chunks_from_tier2(self):
        manager = serving_manager()
        base = ModelSet.build("FFNN-48", num_models=2, seed=13)
        base_id = manager.save_set(base)
        derived_id = manager.save_set(perturbed(base), base_set_id=base_id)
        manager.recover_set(base_id)
        manager.recover_set(derived_id)
        serving = manager.context.serving
        populated = len(serving.chunks)
        RetentionManager(manager.context).collect(keep=[derived_id])
        # The derived set's chunks survive; collected ones are gone.
        assert len(serving.chunks) <= populated
        store = manager.context.chunk_store()
        for digest in serving.chunks.keys():
            assert digest in store

    def test_quarantine_drops_tier1_sets_built_from_the_chunk(self):
        manager = serving_manager()
        base = ModelSet.build("FFNN-48", num_models=2, seed=14)
        set_id = manager.save_set(base)
        manager.recover_set(set_id)  # tier-1 entry remembers its digests
        store = manager.context.chunk_store()
        doomed = next(iter(store._chunks))
        store.quarantine([doomed])
        serving = manager.context.serving
        assert all(key[0] != set_id for key in serving.sets.keys())


class TestMetricsAndWarm:
    def test_counters_flow_through_metrics_registry(self):
        from repro.config import ObservabilityConfig

        config = ArchiveConfig(
            dedup=True,
            serving=ServingConfig(enabled=True),
            observability=ObservabilityConfig(metrics=True),
        )
        manager = MultiModelManager.with_approach("update", config)
        set_id = manager.save_set(ModelSet.build("FFNN-48", num_models=2, seed=15))
        manager.recover_set(set_id)
        values = manager.context.metrics.collect()
        assert values["serving_requests"] == 1
        assert values["serving_set_misses"] == 1

    def test_warm_prematerializes_and_evict_drops(self):
        manager = serving_manager()
        base = ModelSet.build("FFNN-48", num_models=2, seed=16)
        set_id = manager.save_set(base)
        serving = manager.context.serving
        summary = serving.warm([set_id], manager.approach)
        assert summary["warmed"] == [set_id]
        before = manager.context.file_store.stats.snapshot()
        manager.recover_set(set_id)  # warm: zero store reads
        assert manager.context.file_store.stats.delta_since(before).reads == 0
        dropped = serving.evict(chunks=True)
        assert dropped["evicted_sets"] == 1
        assert dropped["evicted_chunks"] > 0

    def test_trace_spans_mark_tiers(self):
        from repro.config import ObservabilityConfig

        config = ArchiveConfig(
            dedup=True,
            serving=ServingConfig(enabled=True),
            observability=ObservabilityConfig(tracing=True),
        )
        manager = MultiModelManager.with_approach("update", config)
        set_id = manager.save_set(ModelSet.build("FFNN-48", num_models=2, seed=17))
        manager.context.tracer.clear()
        manager.recover_set(set_id)  # miss: tier-2 lookup + tier-3 fetch
        manager.recover_set(set_id)  # hit
        names = {
            span.name
            for root in manager.context.tracer.roots
            for span in root.walk()
        }
        assert "tier2-lookup" in names
        assert "tier3-fetch" in names
        assert "tier1-hit" in names
