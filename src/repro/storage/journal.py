"""Write-ahead save journal: atomic multi-artifact saves with crash recovery.

Every save in this library is a *multi-artifact* operation — a parameter
blob (or several chunk packs), a descriptor document, hash-info documents,
refcount-ledger updates.  A process that dies between any two of those
writes leaves a torn set: artifacts without descriptors, refcounts without
packs, descriptors referencing bytes that were never written.  The
:class:`SaveJournal` turns each save (and each retention/GC pass) into an
atomic commit:

1. :meth:`SaveJournal.begin` durably writes a ``pending`` journal entry
   *before* the first mutation.
2. The :class:`JournaledFileStore` / :class:`JournaledDocumentStore`
   proxies log every mutation's **undo information** into the entry
   *before* applying it (write-ahead), and **defer** physical artifact
   deletes until commit so a rollback never has to resurrect bytes.
3. Commit flips the entry to ``committing``, applies the deferred
   deletes, and removes the entry.  Rollback (any in-process exception)
   undoes the logged operations in reverse.  A crash —
   :class:`~repro.errors.SimulatedCrashError` in the fault harness, a real
   ``kill -9`` in production — leaves the entry behind; the next
   :meth:`SaveJournal.recover` (run by ``MultiModelManager.open``) rolls
   ``pending`` entries back and re-applies the deferred deletes of
   ``committing`` entries, so reopening an archive always lands on a
   consistent prefix of its save history.

Journal records are management-plane bookkeeping: they are written through
the stores' uncharged ``_write_raw``/``_delete_raw`` paths, so the
benchmark accounting of every approach is byte-for-byte identical with
journaling on or off.  For the same reason the journal holds references to
the *innermost* (real) stores — its records bypass any fault-injection or
retry wrappers layered on top.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field

from repro.errors import SimulatedCrashError, StorageError
from repro.storage.hashing import hash_bytes

#: Document-store collection holding one entry per open transaction.
JOURNAL_COLLECTION = "save_journal"

#: Mirrors :data:`repro.core.approach.SETS_COLLECTION`.  Not imported:
#: the core package depends on this module, not the other way around.
_SETS_COLLECTION = "model_sets"


def innermost(store):
    """Unwrap a proxy chain (``_inner`` convention) down to the real store."""
    while hasattr(store, "_inner"):
        store = store._inner
    return store


@dataclass
class RecoveryReport:
    """What :meth:`SaveJournal.recover` found and repaired at open time."""

    #: One summary dict per torn save rolled back: ``txn``, ``kind``,
    #: ``approach``, ``set_id``, ``artifacts_removed``,
    #: ``documents_restored``.
    rolled_back: list[dict] = field(default_factory=list)
    #: Entry ids whose deferred deletes were re-applied (crash mid-commit).
    redone: list[str] = field(default_factory=list)
    #: Orphaned artifacts reclaimed across all rolled-back entries.
    artifacts_removed: list[str] = field(default_factory=list)
    #: Documents restored to their pre-transaction contents.
    documents_restored: int = 0

    @property
    def clean(self) -> bool:
        """True when the archive needed no repair."""
        return not (self.rolled_back or self.redone)


class SaveTransaction:
    """One open journal entry; used as a context manager around a save.

    Exits commit on success and roll back on failure — except for
    :class:`~repro.errors.SimulatedCrashError`, which unwinds **without**
    touching the stores: the entry stays durable and cleanup happens at
    the next open, exactly as after a real process kill.
    """

    def __init__(self, journal: "SaveJournal", txn_id: str, entry: dict) -> None:
        self._journal = journal
        self.txn_id = txn_id
        self._entry = entry
        self.closed = False

    @property
    def set_id(self) -> str | None:
        """The set id this transaction created, once known."""
        return self._entry.get("set_id")

    def log_op(self, op: dict) -> None:
        """Durably record one mutation's undo info *before* it applies."""
        if self.closed:
            raise StorageError(f"transaction {self.txn_id} already closed")
        self._entry["ops"].append(op)
        self._journal._flush(self)

    def defer_delete(self, artifact_id: str) -> None:
        """Schedule a physical artifact delete for commit time."""
        if self.closed:
            raise StorageError(f"transaction {self.txn_id} already closed")
        self._entry["deletes"].append(artifact_id)
        self._journal._flush(self)

    def note_set(self, set_id: str) -> None:
        """Tag the entry with the set id it is creating (for reports)."""
        if self._entry.get("set_id") is None:
            self._entry["set_id"] = set_id

    def __enter__(self) -> "SaveTransaction":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if self.closed:
            return False
        if exc_type is None:
            self._journal.commit(self)
        elif issubclass(exc_type, SimulatedCrashError):
            # Process "died": no in-process cleanup, entry stays on disk.
            self._journal.detach(self)
        else:
            self._journal.rollback(self)
        return False


class _NestedTransaction:
    """No-op context returned for a begin() inside an open transaction.

    The inner scope joins the outer transaction: its mutations are logged
    against the outer entry and commit/rollback happen at the outer exit.
    """

    def __enter__(self) -> "_NestedTransaction":
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> bool:
        return False


class SaveJournal:
    """Single-writer write-ahead journal over one (file, document) store pair."""

    def __init__(self, file_store, document_store) -> None:
        # Journal records must bypass fault/retry wrappers: a save's
        # durability bookkeeping cannot itself be torn by the harness.
        self._file_store = innermost(file_store)
        self._document_store = innermost(document_store)
        self._txn: SaveTransaction | None = None
        #: Called after any rollback (in-process or at recover), so the
        #: owner can drop caches rebuilt from store state (chunk index).
        self.on_rollback = None
        highest = -1
        for entry_id in self._document_store.collection_ids(JOURNAL_COLLECTION):
            if entry_id.startswith("txn-"):
                try:
                    highest = max(highest, int(entry_id[4:]))
                except ValueError:
                    pass
        self._counter = itertools.count(highest + 1)

    # -- transaction lifecycle ---------------------------------------------
    def active_txn(self) -> SaveTransaction | None:
        return self._txn

    def begin(self, kind: str = "save", approach: str | None = None):
        """Open a transaction; nested begins join the outer transaction."""
        if self._txn is not None:
            return _NestedTransaction()
        txn_id = f"txn-{next(self._counter):06d}"
        entry = {
            "status": "pending",
            "kind": kind,
            "approach": approach,
            "set_id": None,
            "ops": [],
            "deletes": [],
        }
        txn = SaveTransaction(self, txn_id, entry)
        self._flush(txn)
        self._txn = txn
        return txn

    def commit(self, txn: SaveTransaction) -> None:
        """Apply deferred deletes and retire the entry."""
        entry = txn._entry
        if entry["deletes"]:
            entry["status"] = "committing"
            self._flush(txn)
            self._apply_deletes(entry["deletes"])
        self._document_store._delete_raw(JOURNAL_COLLECTION, txn.txn_id)
        txn.closed = True
        self._txn = None

    def rollback(self, txn: SaveTransaction) -> tuple[list[str], int]:
        """Undo every logged operation in reverse; deferred deletes never ran."""
        removed, restored = self._undo(txn._entry)
        self._document_store._delete_raw(JOURNAL_COLLECTION, txn.txn_id)
        txn.closed = True
        self._txn = None
        if self.on_rollback is not None:
            self.on_rollback()
        return removed, restored

    def detach(self, txn: SaveTransaction) -> None:
        """Abandon a transaction in-process (simulated crash): no cleanup."""
        txn.closed = True
        self._txn = None

    # -- crash recovery ----------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Repair every entry a dead process left behind (run at open)."""
        report = RecoveryReport()
        entry_ids = sorted(
            self._document_store.collection_ids(JOURNAL_COLLECTION), reverse=True
        )
        for entry_id in entry_ids:
            entry = self._document_store._read_raw(JOURNAL_COLLECTION, entry_id)
            if entry is None:
                continue
            status = entry.get("status")
            if status == "committing":
                # All mutations applied; only the deferred deletes may be
                # partial.  Re-applying them is idempotent.
                self._apply_deletes(entry.get("deletes", []))
                report.redone.append(entry_id)
            elif status == "pending":
                removed, restored = self._undo(entry)
                report.artifacts_removed.extend(removed)
                report.documents_restored += restored
                report.rolled_back.append(
                    {
                        "txn": entry_id,
                        "kind": entry.get("kind"),
                        "approach": entry.get("approach"),
                        "set_id": entry.get("set_id"),
                        "artifacts_removed": removed,
                        "documents_restored": restored,
                    }
                )
            self._document_store._delete_raw(JOURNAL_COLLECTION, entry_id)
        if not report.clean and self.on_rollback is not None:
            self.on_rollback()
        return report

    def pending_entries(self) -> list[str]:
        """Ids of unretired journal entries (normally empty)."""
        return self._document_store.collection_ids(JOURNAL_COLLECTION)

    # -- internals ---------------------------------------------------------
    def _flush(self, txn: SaveTransaction) -> None:
        self._document_store._write_raw(JOURNAL_COLLECTION, txn.txn_id, txn._entry)

    def _apply_deletes(self, artifact_ids: list[str]) -> None:
        for artifact_id in artifact_ids:
            if self._file_store.exists(artifact_id):
                self._file_store.delete(artifact_id)

    def _undo(self, entry: dict) -> tuple[list[str], int]:
        artifacts_removed: list[str] = []
        documents_restored = 0
        for op in reversed(entry.get("ops", [])):
            kind = op["op"]
            if kind == "put_artifact":
                artifact_id = op["artifact_id"]
                # Absent means the crash hit before the write applied.
                if self._file_store.exists(artifact_id):
                    self._file_store.delete(artifact_id)
                    artifacts_removed.append(artifact_id)
            elif kind == "insert_doc":
                self._document_store._delete_raw(op["collection"], op["doc_id"])
            elif kind in ("replace_doc", "delete_doc"):
                self._document_store._write_raw(
                    op["collection"], op["doc_id"], op["prior"]
                )
                documents_restored += 1
        return artifacts_removed, documents_restored


class _StoreProxy:
    """Base for transparent store wrappers (``_inner`` delegation)."""

    def __init__(self, inner, journal: SaveJournal) -> None:
        self._inner = inner
        self._journal = journal

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __len__(self) -> int:
        return len(self._inner)


class _JournaledWriter:
    """Wraps an artifact writer to log content-addressed ids at close.

    A derived-id artifact's name is its SHA-256, unknown until the last
    byte — the wrapper mirrors the hash incrementally so the put intent
    can be logged *before* the inner close makes the artifact visible.
    """

    def __init__(self, writer, txn: SaveTransaction, store) -> None:
        self._writer = writer
        self._txn = txn
        self._store = store
        self._hasher = hashlib.sha256()

    def write(self, chunk: bytes) -> None:
        chunk = bytes(chunk)
        self._hasher.update(chunk)
        self._writer.write(chunk)

    def close(self) -> str:
        artifact_id = "sha256-" + self._hasher.hexdigest()
        # An id that already exists predates this transaction: re-putting
        # identical content is a no-op and must not be undone by rollback.
        if not self._store.exists(artifact_id):
            self._txn.log_op({"op": "put_artifact", "artifact_id": artifact_id})
        return self._writer.close()

    def abort(self) -> None:
        self._writer.abort()

    def __enter__(self) -> "_JournaledWriter":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is not None:
            self.abort()
        elif not self._writer._closed:
            self.close()


class JournaledFileStore(_StoreProxy):
    """File-store proxy logging put intents and deferring deletes."""

    def put(
        self,
        data: bytes,
        artifact_id: str | None = None,
        category: str = "binary",
        workers: int = 1,
        digest: str | None = None,
    ) -> str:
        txn = self._journal.active_txn()
        if txn is None:
            return self._inner.put(
                data,
                artifact_id=artifact_id,
                category=category,
                workers=workers,
                digest=digest,
            )
        if digest is None:
            digest = hash_bytes(data)
        target = artifact_id if artifact_id is not None else "sha256-" + digest
        # Only log ids this put will create: a pre-existing explicit id is
        # about to raise DuplicateArtifactError, and a pre-existing derived
        # id is an idempotent re-put — neither must be undone by rollback.
        if not self._inner.exists(target):
            txn.log_op({"op": "put_artifact", "artifact_id": target})
        return self._inner.put(
            data,
            artifact_id=artifact_id,
            category=category,
            workers=workers,
            digest=digest,
        )

    def open_writer(
        self,
        artifact_id: str | None,
        category: str = "binary",
        workers: int = 1,
    ):
        txn = self._journal.active_txn()
        if txn is None or (
            artifact_id is not None and self._inner.exists(artifact_id)
        ):
            # Pass through; the inner store raises DuplicateArtifactError.
            return self._inner.open_writer(
                artifact_id, category=category, workers=workers
            )
        if artifact_id is not None:
            # Logged at open: until close only a temp file exists, so the
            # undo (delete-if-present) is correct at every crash point.
            txn.log_op({"op": "put_artifact", "artifact_id": artifact_id})
            return self._inner.open_writer(
                artifact_id, category=category, workers=workers
            )
        return _JournaledWriter(
            self._inner.open_writer(artifact_id, category=category, workers=workers),
            txn,
            self._inner,
        )

    def delete(self, artifact_id: str) -> None:
        txn = self._journal.active_txn()
        if txn is None:
            return self._inner.delete(artifact_id)
        if not self._inner.exists(artifact_id):
            from repro.errors import ArtifactNotFoundError

            raise ArtifactNotFoundError(f"no artifact {artifact_id!r}")
        # Deferred to commit: rollback must be able to keep the bytes, and
        # bytes are far too large to stage in the journal entry.
        txn.defer_delete(artifact_id)


class JournaledDocumentStore(_StoreProxy):
    """Document-store proxy logging insert/replace/delete undo info."""

    def insert(
        self,
        collection: str,
        document: dict,
        doc_id: str | None = None,
        category: str = "metadata",
    ) -> str:
        txn = self._journal.active_txn()
        if txn is None:
            return self._inner.insert(
                collection, document, doc_id=doc_id, category=category
            )
        if doc_id is None:
            # Pre-draw the auto id from the inner counter so the intent
            # can be logged write-ahead; the inner insert then stores
            # under exactly this id.
            doc_id = f"doc-{next(self._inner._id_counter):08d}"
        if collection == _SETS_COLLECTION:
            txn.note_set(doc_id)
        txn.log_op({"op": "insert_doc", "collection": collection, "doc_id": doc_id})
        return self._inner.insert(
            collection, document, doc_id=doc_id, category=category
        )

    def replace(self, collection: str, doc_id: str, document: dict) -> None:
        txn = self._journal.active_txn()
        if txn is None:
            return self._inner.replace(collection, doc_id, document)
        prior = self._inner._read_raw(collection, doc_id)
        if prior is None:
            # Let the inner store raise its DocumentNotFoundError.
            return self._inner.replace(collection, doc_id, document)
        txn.log_op(
            {
                "op": "replace_doc",
                "collection": collection,
                "doc_id": doc_id,
                "prior": prior,
            }
        )
        return self._inner.replace(collection, doc_id, document)

    def delete(self, collection: str, doc_id: str) -> None:
        txn = self._journal.active_txn()
        if txn is None:
            return self._inner.delete(collection, doc_id)
        prior = self._inner._read_raw(collection, doc_id)
        if prior is None:
            return self._inner.delete(collection, doc_id)
        txn.log_op(
            {
                "op": "delete_doc",
                "collection": collection,
                "doc_id": doc_id,
                "prior": prior,
            }
        )
        return self._inner.delete(collection, doc_id)


def attach_journal(context) -> SaveJournal:
    """Wire a :class:`SaveJournal` into a save context's store pair.

    Idempotent.  The context's stores are wrapped in journaled proxies
    (composing with any fault/retry wrappers already present), the chunk
    index cache is invalidated on rollback, and the journal is exposed as
    ``context.journal`` for ``SaveContext.save_transaction``.
    """
    if getattr(context, "journal", None) is not None:
        return context.journal
    journal = SaveJournal(context.file_store, context.document_store)
    context.file_store = JournaledFileStore(context.file_store, journal)
    context.document_store = JournaledDocumentStore(context.document_store, journal)
    journal.on_rollback = context._invalidate_chunk_store
    context._chunk_store = None
    context.journal = journal
    return journal
