"""The paper's contribution: set-oriented model management approaches.

Module map (see DESIGN.md §3 for the full inventory):

* :mod:`~repro.core.model_set` — the :class:`ModelSet` abstraction.
* :mod:`~repro.core.save_info` — metadata and update descriptors.
* :mod:`~repro.core.approach` — the pluggable :class:`SaveApproach` API
  and the :class:`SaveContext` bundling the storage substrates.
* :mod:`~repro.core.baseline` / :mod:`~repro.core.update` /
  :mod:`~repro.core.provenance` — the three optimized approaches (§3).
* :mod:`~repro.core.mmlib_base` — the MMlib-base comparator (§2.2).
* :mod:`~repro.core.manager` — the :class:`MultiModelManager` facade.
* :mod:`~repro.core.recommender` — heuristic approach selection
  (paper's future work, §4.5).
* :mod:`~repro.core.compression` — optional blob compression
  (paper's future work, §4.5).
"""

# Compatibility re-exports: the canonical home of every exception is
# repro.errors (see that module's docstring).
from repro.config import ArchiveConfig, ObservabilityConfig
from repro.core.approach import SaveApproach, SaveContext
from repro.errors import RecoveryError, ReproError
from repro.core.baseline import BaselineApproach
from repro.core.compression import CODECS, CompressionCodec
from repro.core.export import export_models, import_models
from repro.core.lineage import LineageGraph, diff_sets, model_history
from repro.core.manager import MultiModelManager
from repro.core.mmlib_base import MMlibBaseApproach
from repro.core.model_set import ModelSet
from repro.core.pas import PasDeltaApproach
from repro.core.placement import (
    Placement,
    PlacementProblem,
    evaluate_placement,
    optimal_placement,
    optimize_archive,
)
from repro.core.provenance import ProvenanceApproach
from repro.core.recommender import ApproachRecommender, ScenarioProfile
from repro.core.retention import RetentionManager
from repro.core.save_info import ModelUpdate, SetMetadata, UpdateInfo
from repro.core.update import UpdateApproach
from repro.core.verify import ArchiveVerifier

__all__ = [
    "ApproachRecommender",
    "ArchiveConfig",
    "ArchiveVerifier",
    "BaselineApproach",
    "CODECS",
    "CompressionCodec",
    "LineageGraph",
    "MMlibBaseApproach",
    "ModelSet",
    "ModelUpdate",
    "MultiModelManager",
    "ObservabilityConfig",
    "PasDeltaApproach",
    "Placement",
    "PlacementProblem",
    "ProvenanceApproach",
    "RecoveryError",
    "ReproError",
    "RetentionManager",
    "SaveApproach",
    "SaveContext",
    "ScenarioProfile",
    "SetMetadata",
    "UpdateApproach",
    "UpdateInfo",
    "diff_sets",
    "evaluate_placement",
    "export_models",
    "import_models",
    "model_history",
    "optimal_placement",
    "optimize_archive",
]
