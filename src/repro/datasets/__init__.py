"""Datasets, data loaders, and the dataset reference registry.

The paper's Provenance approach relies on the assumption that "the
training data are saved regardless of the model management" (§3.4) —
manufacturers keep the data for analytics anyway.  The
:class:`~repro.datasets.registry.DatasetRegistry` models that external
data world: datasets are addressed by small JSON *references*, and
resolving a reference deterministically reproduces the exact samples.
"""

from repro.datasets.base import ArrayDataset, DataLoader, Dataset
from repro.datasets.battery import BatteryCellDataset, battery_dataset_ref
from repro.datasets.pack import PackCellDataset, pack_dataset_ref
from repro.datasets.registry import DatasetRef, DatasetRegistry
from repro.datasets.synthetic_cifar import SyntheticCifarDataset, cifar_dataset_ref

__all__ = [
    "ArrayDataset",
    "BatteryCellDataset",
    "DataLoader",
    "Dataset",
    "DatasetRef",
    "DatasetRegistry",
    "PackCellDataset",
    "SyntheticCifarDataset",
    "battery_dataset_ref",
    "cifar_dataset_ref",
    "pack_dataset_ref",
]
