"""A compact, deterministic deep-learning framework built on numpy.

This package stands in for PyTorch in the reproduction (see DESIGN.md,
substitution table).  It provides everything the multi-model management
approaches need from a DL framework:

* :class:`~repro.nn.module.Module` hierarchies with ordered, named
  parameter dictionaries (``state_dict`` / ``load_state_dict``),
* forward *and* backward passes for fully-connected and convolutional
  models so the Provenance approach can deterministically re-train,
* optimizers (:class:`~repro.nn.optim.SGD`, :class:`~repro.nn.optim.Adam`),
* losses (:class:`~repro.nn.loss.MSELoss`,
  :class:`~repro.nn.loss.CrossEntropyLoss`),
* seeded weight initialization, and
* a binary ``state_dict`` codec (:mod:`repro.nn.serialization`).

All computation is float32, matching the paper's 4-byte-per-parameter
storage accounting.
"""

from repro.nn.activations import ReLU, Sigmoid, Softmax, Tanh
from repro.nn.init import kaiming_uniform, xavier_uniform
from repro.nn.layers import AvgPool2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d
from repro.nn.loss import CrossEntropyLoss, Loss, MSELoss
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.serialization import (
    deserialize_state_dict,
    serialize_state_dict,
    state_dict_num_bytes,
    state_dict_num_parameters,
)

__all__ = [
    "Adam",
    "AvgPool2d",
    "Conv2d",
    "CrossEntropyLoss",
    "Dropout",
    "Flatten",
    "Linear",
    "Loss",
    "MSELoss",
    "MaxPool2d",
    "Module",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Softmax",
    "Tanh",
    "deserialize_state_dict",
    "kaiming_uniform",
    "serialize_state_dict",
    "state_dict_num_bytes",
    "state_dict_num_parameters",
    "xavier_uniform",
]
