"""Synthetic real-world-style driving discharge cycles.

Substitute for the Steinstraeter et al. IEEE-DataPort recordings (see
DESIGN.md): each cycle is a 1 Hz cell-current profile assembled from
urban, rural, and highway segments with stochastic accelerations, stops,
and regenerative-braking (negative-current) events.  Magnitudes are
scaled to a single 18650 cell inside a large pack (a few amps peak).

Cycles are fully determined by their seed, so dataset references can be
resolved to bit-identical data — a requirement for the Provenance
approach's deterministic replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

#: Segment archetypes: (mean current A, current std A, stop probability).
_SEGMENT_TYPES = {
    "urban": (1.2, 0.8, 0.25),
    "rural": (2.0, 0.9, 0.08),
    "highway": (3.2, 1.0, 0.01),
}
#: Probability of a regenerative braking burst at a segment boundary.
_REGEN_PROBABILITY = 0.35
#: Peak regenerative (charging) current in amps.
_REGEN_PEAK_A = 2.0


@dataclass(frozen=True)
class DriveCycle:
    """One discharge cycle: a current profile plus its provenance."""

    cycle_id: int
    seed: int
    current_a: np.ndarray

    @property
    def duration_s(self) -> int:
        return int(self.current_a.shape[0])

    @property
    def mean_current_a(self) -> float:
        return float(self.current_a.mean())


def _segment(
    rng: np.random.Generator, kind: str, duration_s: int
) -> np.ndarray:
    """One driving segment as a smoothed stochastic current trace."""
    mean_a, std_a, stop_prob = _SEGMENT_TYPES[kind]
    raw = rng.normal(mean_a, std_a, size=duration_s)
    # Smooth accelerations with a short moving average.
    kernel = np.ones(5) / 5.0
    smooth = np.convolve(raw, kernel, mode="same")
    # Random stops: zero-current stretches (traffic lights, congestion).
    step = 0
    while step < duration_s:
        if rng.random() < stop_prob:
            stop_len = int(rng.integers(5, 40))
            smooth[step : step + stop_len] = 0.0
            step += stop_len
        step += int(rng.integers(20, 60))
    return np.maximum(smooth, 0.0)


def generate_drive_cycle(
    cycle_id: int,
    seed: int,
    duration_s: int = 1200,
) -> DriveCycle:
    """Generate one deterministic synthetic drive cycle.

    Parameters
    ----------
    cycle_id:
        Identifier recorded in the cycle's provenance.
    seed:
        RNG seed; combined with ``cycle_id`` so equal seeds with different
        ids still yield different traffic.
    duration_s:
        Total cycle length in seconds (1 Hz sampling).
    """
    if duration_s < 60:
        raise ValueError(f"duration_s must be at least 60, got {duration_s}")
    rng = np.random.default_rng(np.random.SeedSequence([seed, cycle_id]))
    kinds = list(_SEGMENT_TYPES)
    pieces: list[np.ndarray] = []
    remaining = duration_s
    while remaining > 0:
        kind = kinds[int(rng.integers(len(kinds)))]
        seg_len = int(min(remaining, rng.integers(120, 420)))
        pieces.append(_segment(rng, kind, seg_len))
        remaining -= seg_len
        # Regenerative braking burst at segment boundaries.
        if remaining > 15 and rng.random() < _REGEN_PROBABILITY:
            burst_len = int(rng.integers(5, 15))
            ramp = np.linspace(0.0, -_REGEN_PEAK_A * rng.random(), burst_len)
            pieces.append(ramp)
            remaining -= burst_len
    current = np.concatenate(pieces)[:duration_s]
    return DriveCycle(cycle_id=cycle_id, seed=seed, current_a=current)


def generate_charge_profile(
    seed: int,
    duration_s: int = 3600,
    cc_current_a: float = 2.5,
    cv_voltage_fraction: float = 0.75,
    taper_tau_s: float = 600.0,
) -> np.ndarray:
    """A CC-CV charging current profile (negative = charging).

    Constant-current until ``cv_voltage_fraction`` of the duration, then
    an exponentially tapering constant-voltage phase — the standard
    lithium charge curve.  Small seeded ripple models charger regulation
    noise.  Combined with a drive cycle this completes a full daily
    usage pattern (drive, park, charge).
    """
    if duration_s < 60:
        raise ValueError(f"duration_s must be at least 60, got {duration_s}")
    if cc_current_a <= 0:
        raise ValueError("cc_current_a must be positive")
    if not 0.0 < cv_voltage_fraction < 1.0:
        raise ValueError("cv_voltage_fraction must be in (0, 1)")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xCCC5]))
    cc_steps = int(duration_s * cv_voltage_fraction)
    cv_steps = duration_s - cc_steps
    cc_phase = np.full(cc_steps, cc_current_a)
    taper = cc_current_a * np.exp(-np.arange(cv_steps) / taper_tau_s)
    profile = np.concatenate([cc_phase, taper])
    ripple = rng.normal(0.0, 0.01 * cc_current_a, size=duration_s)
    return -(profile + ripple)


def iter_drive_cycles(
    num_cycles: int, seed: int, duration_s: int = 1200
) -> Iterator[DriveCycle]:
    """Yield ``num_cycles`` deterministic cycles derived from one seed."""
    if num_cycles < 0:
        raise ValueError(f"num_cycles must be non-negative, got {num_cycles}")
    for cycle_id in range(num_cycles):
        yield generate_drive_cycle(cycle_id, seed, duration_s)
