"""Property-based tests (hypothesis) on core data structures and invariants."""

from collections import OrderedDict

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.compression import CODECS
from repro.nn.serialization import (
    StateSchema,
    bytes_to_parameters,
    deserialize_state_dict,
    parameters_to_bytes,
    serialize_state_dict,
)
from repro.storage.hashing import hash_array

# -- strategies -------------------------------------------------------------

layer_names = st.lists(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd"), whitelist_characters="._"),
        min_size=1,
        max_size=12,
    ),
    min_size=1,
    max_size=5,
    unique=True,
)

shapes = st.lists(st.integers(min_value=1, max_value=5), min_size=0, max_size=3).map(
    tuple
)


@st.composite
def state_dicts(draw):
    names = draw(layer_names)
    state = OrderedDict()
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    for name in names:
        shape = draw(shapes)
        state[name] = rng.normal(size=shape).astype(np.float32)
    return state


byte_payloads = st.binary(min_size=0, max_size=4096)


# -- serialization ------------------------------------------------------------

class TestSerializationProperties:
    @given(state=state_dicts())
    @settings(max_examples=60, deadline=None)
    def test_self_describing_roundtrip(self, state):
        decoded = deserialize_state_dict(serialize_state_dict(state))
        assert list(decoded) == list(state)
        for key in state:
            assert np.array_equal(decoded[key], state[key])
            assert decoded[key].shape == state[key].shape

    @given(state=state_dicts())
    @settings(max_examples=60, deadline=None)
    def test_schema_split_roundtrip(self, state):
        schema = StateSchema.from_state_dict(state)
        decoded = bytes_to_parameters(parameters_to_bytes(state), schema)
        for key in state:
            assert np.array_equal(decoded[key], state[key])

    @given(state=state_dicts())
    @settings(max_examples=40, deadline=None)
    def test_schema_json_roundtrip(self, state):
        schema = StateSchema.from_state_dict(state)
        assert StateSchema.from_json(schema.to_json()) == schema

    @given(state=state_dicts(), count=st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_concatenated_stream_slices_cleanly(self, state, count):
        schema = StateSchema.from_state_dict(state)
        stream = parameters_to_bytes(state) * count
        for index in range(count):
            decoded = bytes_to_parameters(
                stream, schema, offset=index * schema.num_bytes
            )
            for key in state:
                assert np.array_equal(decoded[key], state[key])


# -- hashing -------------------------------------------------------------------

class TestHashingProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        size=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_hash_deterministic(self, seed, size):
        values = np.random.default_rng(seed).normal(size=size).astype(np.float32)
        assert hash_array(values) == hash_array(values.copy())

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        size=st.integers(min_value=1, max_value=64),
        position=st.integers(min_value=0, max_value=63),
        delta=st.floats(
            min_value=1e-5, max_value=10.0, allow_nan=False, allow_infinity=False
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_single_change_detected(self, seed, size, position, delta):
        values = np.random.default_rng(seed).normal(size=size).astype(np.float32)
        changed = values.copy()
        changed[position % size] += np.float32(delta)
        if not np.array_equal(values, changed):
            assert hash_array(values) != hash_array(changed)


# -- compression ----------------------------------------------------------------

class TestCompressionProperties:
    @given(data=byte_payloads, codec_name=st.sampled_from(sorted(CODECS)))
    @settings(max_examples=80, deadline=None)
    def test_all_codecs_roundtrip_arbitrary_bytes(self, data, codec_name):
        codec = CODECS[codec_name]
        assert codec.decode(codec.encode(data)) == data


# -- update-plan sampling ----------------------------------------------------------

class TestUpdatePlanProperties:
    @given(
        num_models=st.integers(min_value=1, max_value=300),
        full=st.floats(min_value=0.0, max_value=0.5),
        partial=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=1000),
        cycle=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=80, deadline=None)
    def test_plans_always_disjoint_and_in_range(
        self, num_models, full, partial, seed, cycle
    ):
        from repro.workloads.update_plan import UpdatePlan

        plan = UpdatePlan.sample(num_models, full, partial, seed, cycle)
        combined = plan.full_indices + plan.partial_indices
        assert len(set(combined)) == len(combined)
        assert all(0 <= index < num_models for index in combined)
        num_full = min(round(num_models * full), num_models)
        assert len(plan.full_indices) == num_full
        # Independent rounding can overshoot a small fleet; the partial
        # sample absorbs the overflow so the plan never exceeds it.
        assert len(plan.partial_indices) == min(
            round(num_models * partial), num_models - num_full
        )


# -- delta save/recover ------------------------------------------------------------

class TestUpdateApproachProperties:
    @given(
        changes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),  # model index
                st.integers(min_value=0, max_value=7),  # layer index
            ),
            min_size=0,
            max_size=10,
        ),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_arbitrary_layer_changes_roundtrip(self, changes, seed):
        """Whatever subset of (model, layer) cells changes, Update's
        delta save must recover the derived set bit-exactly."""
        from repro.core.approach import SaveContext
        from repro.core.model_set import ModelSet
        from repro.core.update import UpdateApproach

        models = ModelSet.build("FFNN-48", num_models=6, seed=0)
        approach = UpdateApproach(SaveContext.create())
        base_id = approach.save_initial(models)
        derived = models.copy()
        rng = np.random.default_rng(seed)
        layer_names = models.schema.layer_names()
        for model_index, layer_index in changes:
            name = layer_names[layer_index]
            state = derived.state(model_index)
            state[name] = (
                state[name] + rng.normal(0, 0.1, size=state[name].shape)
            ).astype(np.float32)
        set_id = approach.save_derived(derived, base_id)
        assert approach.recover(set_id).equals(derived)
