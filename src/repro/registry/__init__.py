"""Model registry: the queryable catalog over families, versions, tags.

See :mod:`repro.registry.catalog` for the data model and
``docs/registry.md`` for the query cookbook and rebuild runbook.
"""

from repro.registry.catalog import (
    LATEST_TAG,
    Registry,
    RegistryDiff,
    RegistryModelDiff,
    VersionRecord,
    attach_registry,
    open_fleet_registry,
)
from repro.registry.records import (
    FAMILIES_COLLECTION,
    REGISTRY_COLLECTIONS,
    REGISTRY_DIR,
    TAGS_COLLECTION,
    VERSIONS_COLLECTION,
)

__all__ = [
    "FAMILIES_COLLECTION",
    "LATEST_TAG",
    "REGISTRY_COLLECTIONS",
    "REGISTRY_DIR",
    "Registry",
    "RegistryDiff",
    "RegistryModelDiff",
    "TAGS_COLLECTION",
    "VERSIONS_COLLECTION",
    "VersionRecord",
    "attach_registry",
    "open_fleet_registry",
]
