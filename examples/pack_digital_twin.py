"""Pack digital twin: per-cell models trained from pack telemetry.

The paper's deployment picture (§1) made concrete: an electric-car
battery pack of series/parallel-connected, individually aging cells is
simulated; each cell's DL model trains on the telemetry *it actually
experienced inside the pack* — including the inhomogeneity effects
(weak cells carry less current) that make per-cell models worthwhile
over one pack-level model.  Every generation is archived with the
Provenance approach and the final state is recovered by deterministic
replay.

Run with::

    python examples/pack_digital_twin.py
"""

import numpy as np

from repro import ModelSet, MultiModelManager
from repro.battery.pack import BatteryPack, PackConfig
from repro.core.save_info import ModelUpdate, UpdateInfo
from repro.datasets.pack import pack_dataset_ref, simulate_pack_cycle
from repro.training.pipeline import PipelineConfig, TrainingPipeline

PACK = PackConfig(series_groups=3, parallel_cells=2, seed=11)
CYCLES = 2
DURATION_S = 240
SOH_DECREMENT = 0.02


def main() -> None:
    num_cells = PACK.num_cells
    print(
        f"pack: {PACK.series_groups}s{PACK.parallel_cells}p = {num_cells} cells, "
        f"{CYCLES} update cycles"
    )

    # Show the inhomogeneity that motivates per-cell models.
    pack, telemetry = simulate_pack_cycle(PACK, 0, DURATION_S, SOH_DECREMENT)
    report = pack.imbalance_report(telemetry)
    print(
        f"inhomogeneity at cycle 0: current spread "
        f"{report['current_spread']:.1%}, SoC spread {report['soc_spread']:.2%}"
    )

    manager = MultiModelManager.with_approach("provenance")
    models = ModelSet.build("FFNN-48", num_models=num_cells, seed=11)
    set_ids = [manager.save_set(models)]
    print(f"U1 archived ({manager.total_stored_bytes() / 1e3:.1f} KB)")

    pipeline = PipelineConfig(
        learning_rate=0.01, momentum=0.9, epochs=2, batch_size=48, shuffle_seed=1
    )
    current = models
    for cycle in range(1, CYCLES + 1):
        # Every cell re-trains on its own telemetry from this cycle.
        derived = current.copy()
        updates = []
        for cell in range(num_cells):
            ref = pack_dataset_ref(
                cell, cycle, PACK, duration_s=DURATION_S,
                soh_decrement=SOH_DECREMENT,
            )
            model = derived.build_model(cell)
            dataset = manager.context.dataset_registry.resolve(ref)
            TrainingPipeline(pipeline).train(model, dataset)
            derived.states[cell] = model.state_dict()
            updates.append(ModelUpdate(cell, ref, "full"))
        info = UpdateInfo(pipelines={"full": pipeline}, updates=tuple(updates))
        before = manager.total_stored_bytes()
        set_ids.append(
            manager.save_set(derived, base_set_id=set_ids[-1], update_info=info)
        )
        print(
            f"U3-{cycle}: {num_cells} models re-trained, archived in "
            f"+{(manager.total_stored_bytes() - before) / 1e3:.1f} KB"
        )
        current = derived

    # Post-accident analysis: replay the full archive.
    recovered = manager.recover_set(set_ids[-1])
    assert recovered.equals(current)
    print("provenance replay of the final pack state is bit-exact")

    # How well does a cell's twin track its telemetry?
    cell = 0
    dataset = manager.context.dataset_registry.resolve(
        pack_dataset_ref(cell, CYCLES, PACK, DURATION_S, SOH_DECREMENT)
    )
    model = recovered.build_model(cell)
    inputs, targets = dataset.arrays()
    predicted_v = dataset.target_scaler.inverse_transform(model(inputs))
    actual_v = dataset.target_scaler.inverse_transform(targets)
    rmse = float(np.sqrt(np.mean((predicted_v - actual_v) ** 2)))
    print(f"cell #{cell} twin RMSE on its latest pack telemetry: {rmse:.4f} V")


if __name__ == "__main__":
    main()
