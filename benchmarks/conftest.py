"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` file regenerates one paper artifact (see DESIGN.md §4
for the experiment index).  Benchmarks run at a reduced default scale —
storage numbers are exact at any scale and the timing *trends* are
scale-free; set ``REPRO_BENCH_MODELS`` to raise the model count (e.g.
5000 for the paper's full scale).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.runner import ExperimentSettings
from repro.workloads.scenario import MultiModelScenario, UseCase

#: Default benchmark scale (models per set).
BENCH_NUM_MODELS = int(os.environ.get("REPRO_BENCH_MODELS", "100"))


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--seed",
        action="store",
        type=int,
        default=None,
        help=(
            "Fault-schedule seed for fault-injecting benchmarks "
            "(overrides the REPRO_FAULT_SEED environment variable)."
        ),
    )


@pytest.fixture(scope="session")
def fault_seed(request) -> int:
    """Effective fault seed: ``--seed`` beats ``REPRO_FAULT_SEED`` beats 0.

    Benchmarks that inject faults record this value in their results
    JSON so a failing run can be replayed exactly.
    """
    option = request.config.getoption("--seed")
    if option is not None:
        return int(option)
    return int(os.environ.get("REPRO_FAULT_SEED", "0"))


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings(num_models=BENCH_NUM_MODELS, cycles=3, runs=1)


@pytest.fixture(scope="session")
def cases(settings) -> list[UseCase]:
    """The paper's default scenario: U1 + three U3 iterations."""
    return list(MultiModelScenario(settings.scenario_config()).use_cases())


def record_series(benchmark, series: dict[str, list[float]], unit: str) -> None:
    """Attach a figure-style data series to the benchmark's extra info."""
    benchmark.extra_info["series"] = {
        name: [round(v, 6) for v in values] for name, values in series.items()
    }
    benchmark.extra_info["unit"] = unit
