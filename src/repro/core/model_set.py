"""The :class:`ModelSet` abstraction.

A model set is the unit of multi-model management: *n* models sharing one
architecture (and therefore one parameter schema) but holding different
parameter values.  The set stores parameter dictionaries, not live
modules — materializing executable models is an explicit, separate step
(:meth:`ModelSet.build_model`), mirroring how recovery works in MMlib.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.architectures.registry import get_architecture
from repro.errors import ArchitectureMismatchError
from repro.nn import Module
from repro.nn.serialization import StateSchema
from repro.training.seeds import derive_seed


class ModelSet:
    """An ordered collection of same-architecture parameter dictionaries.

    Parameters
    ----------
    architecture:
        Registered architecture name (e.g. ``"FFNN-48"``).
    states:
        One parameter dictionary per model; all must share the same
        layer names and shapes.
    """

    def __init__(
        self,
        architecture: str,
        states: "list[OrderedDict[str, np.ndarray]]",
    ) -> None:
        if not states:
            raise ValueError("a model set must contain at least one model")
        self.architecture = architecture
        self.schema = StateSchema.from_state_dict(states[0])
        expected = self.schema.entries
        for index, state in enumerate(states):
            entries = tuple((name, tuple(arr.shape)) for name, arr in state.items())
            if entries != expected:
                raise ArchitectureMismatchError(
                    f"model {index} does not match the set schema"
                )
        self.states = states

    # -- construction ------------------------------------------------------
    @classmethod
    def build(
        cls, architecture: str, num_models: int, seed: int = 0
    ) -> "ModelSet":
        """Build a fresh set of ``num_models`` independently initialized models.

        Each model gets its own derived seed, so models are distinct but
        the whole set is reproducible from (architecture, num_models, seed).
        """
        if num_models <= 0:
            raise ValueError(f"num_models must be positive, got {num_models}")
        spec = get_architecture(architecture)
        states = []
        for index in range(num_models):
            rng = np.random.default_rng(derive_seed("model-init", seed, index))
            states.append(spec.build(rng=rng).state_dict())
        return cls(architecture, states)

    @classmethod
    def from_modules(cls, architecture: str, modules: "list[Module]") -> "ModelSet":
        """Snapshot live modules into a set."""
        return cls(architecture, [module.state_dict() for module in modules])

    # -- access ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.states)

    def __iter__(self) -> Iterator["OrderedDict[str, np.ndarray]"]:
        return iter(self.states)

    def state(self, index: int) -> "OrderedDict[str, np.ndarray]":
        return self.states[index]

    def build_model(self, index: int) -> Module:
        """Materialize model ``index`` as an executable module."""
        spec = get_architecture(self.architecture)
        model = spec.build(rng=np.random.default_rng(0))
        model.load_state_dict(self.states[index])
        model.eval()
        return model

    @property
    def num_parameters_per_model(self) -> int:
        return self.schema.num_parameters

    @property
    def parameter_bytes(self) -> int:
        """Raw float32 payload of the whole set."""
        return len(self) * self.schema.num_bytes

    # -- comparison ----------------------------------------------------------
    def equals(self, other: "ModelSet", atol: float = 0.0) -> bool:
        """Whether two sets hold identical parameters (bit-exact by default)."""
        if (
            self.architecture != other.architecture
            or len(self) != len(other)
            or self.schema != other.schema
        ):
            return False
        for mine, theirs in zip(self.states, other.states):
            for name in mine:
                if atol == 0.0:
                    if not np.array_equal(mine[name], theirs[name]):
                        return False
                elif not np.allclose(mine[name], theirs[name], atol=atol):
                    return False
        return True

    def copy(self) -> "ModelSet":
        """Deep copy (parameter arrays are duplicated)."""
        states = [
            OrderedDict((name, arr.copy()) for name, arr in state.items())
            for state in self.states
        ]
        return ModelSet(self.architecture, states)
