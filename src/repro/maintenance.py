"""Background maintenance: GC, compaction, scrub, and repair under load.

A long-lived archive needs its housekeeping — retention-driven garbage
collection, chunk mark-and-sweep, delta-chain compaction, anti-entropy
scrub, replica repair-queue draining — to run *while* saves, recovers,
and serving-cache reads keep flowing.  :class:`MaintenanceScheduler`
runs those tasks per shard with three coordination rules:

* **Journal-coordinated.**  The mutating tasks of one shard pass
  (compaction, GC, chunk sweep) run as **one atomic journal
  transaction**.  The scheduler first tries the shard lock without
  blocking; an in-flight writer transaction wins — the pass records a
  *deferred-txn wait* and queues behind it instead of contending from
  inside.  A crash mid-pass (a :class:`~repro.errors.SimulatedCrashError`
  fault, or the process dying) leaves the journal entry pending, and
  reopening the shard rolls the whole pass back — committed sets are
  never half-deleted.

* **Cache-safe.**  Serving-cache invalidation only *drops* entries (it
  never inserts), and the shard lock excludes readers for the duration
  of the pass, so a rolled-back pass cannot poison the
  :class:`~repro.serving.ServingCache`: the journal's rollback hook
  clears both cache tiers along with the chunk index.  Replica work
  (repair drain, scrub) runs strictly *after* the transaction commits.

* **Rate-limited.**  Passes are paced on the shared
  :class:`~repro.simtime.SimClock`: a pass that charged ``c`` simulated
  store seconds pushes the next pass out by at least
  ``c * (1 - duty_cycle) / duty_cycle`` (and never less than
  ``interval_s``), so maintenance consumes a bounded fraction of
  simulated time no matter how expensive a pass turns out to be.

Scrubs are *rolling* in scheduled mode: each pass scrubs one shard,
round-robin, so anti-entropy cost is spread across passes instead of
spiking.  One-shot (CLI) passes scrub every shard.

The scheduler drives any of: a :class:`~repro.fleet.FleetManager`
(per-shard, placement kept in sync), a single
:class:`~repro.core.manager.MultiModelManager`, or bare
:class:`~repro.core.approach.SaveContext` shards (the CLI's offline
fleet view).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.config import MaintenanceConfig
from repro.core.approach import SETS_COLLECTION, SaveContext
from repro.simtime import SimClock

__all__ = [
    "MaintenancePassReport",
    "MaintenanceScheduler",
    "MaintenanceTarget",
    "ShardMaintenanceReport",
]


@dataclass
class MaintenanceTarget:
    """One shard the scheduler maintains.

    ``lock`` must expose ``acquire(blocking=...)``/``release`` over the
    shard context's mutex (the fleet's
    :class:`~repro.observability.metrics.TimedLock` wrappers qualify, so
    fleet lock-wait metrics see maintenance contention too).
    ``on_deleted`` is called with the ids a GC pass deleted — the fleet
    uses it to drop placement entries.
    """

    name: str
    context: SaveContext
    lock: Any
    on_deleted: "Callable[[list[str]], None] | None" = None


@dataclass
class ShardMaintenanceReport:
    """What one pass did on one shard."""

    shard: str
    #: The shard lock was busy (an in-flight writer txn) when the pass
    #: arrived; the pass waited behind it instead of starting.
    deferred: bool = False
    sets_deleted: int = 0
    sets_compacted: int = 0
    bytes_reclaimed: int = 0
    chunks_swept: int = 0
    repairs_drained: int = 0
    scrubbed: bool = False
    scrub_exit: "int | None" = None
    lost_artifacts: list[str] = field(default_factory=list)
    #: Simulated store seconds this shard's pass charged.
    sim_s: float = 0.0

    @property
    def changed(self) -> bool:
        return bool(
            self.sets_deleted
            or self.sets_compacted
            or self.chunks_swept
            or self.repairs_drained
            or (self.scrub_exit not in (None, 0))
        )


@dataclass
class MaintenancePassReport:
    """One full maintenance pass over every shard."""

    index: int
    #: Simulated clock reading when the pass started.
    started_at: float = 0.0
    shards: list[ShardMaintenanceReport] = field(default_factory=list)

    @property
    def sim_s(self) -> float:
        return sum(entry.sim_s for entry in self.shards)

    @property
    def changed(self) -> bool:
        return any(entry.changed for entry in self.shards)

    @property
    def exit_code(self) -> int:
        """CLI contract: 0 clean/no-op, 1 work done, 2 data lost."""
        if any(entry.lost_artifacts for entry in self.shards):
            return 2
        return 1 if self.changed else 0


def _shard_sim_s(context: SaveContext) -> float:
    """Simulated store seconds this shard has charged so far."""
    file_stats = context.file_store.stats
    doc_stats = context.document_store.stats
    return (
        file_stats.simulated_write_s
        + file_stats.simulated_read_s
        + doc_stats.simulated_write_s
        + doc_stats.simulated_read_s
    )


class MaintenanceScheduler:
    """Runs background maintenance passes over one or more shards.

    Deterministic driving: call :meth:`tick` from your own loop (it runs
    a pass only when the :class:`SimClock` says one is due) or
    :meth:`run_pass` to force one now.  Wall-clock driving: ``start()``
    spawns a daemon thread that ticks until ``stop()``; an error inside
    a scheduled pass (e.g. an injected crash) stops the thread and is
    kept in :attr:`error`.

    ``fault_hook(point, shard=..., pass_index=...)`` — when given — is
    invoked at named points of each shard pass (``"in-txn"`` after the
    pass's mutations, inside the open journal transaction;
    ``"post-commit"`` before replica work).  Benchmarks raise
    :class:`~repro.errors.SimulatedCrashError` from it to kill a pass
    mid-transaction.
    """

    def __init__(
        self,
        targets: "list[MaintenanceTarget]",
        config: "MaintenanceConfig | None" = None,
        clock: "SimClock | None" = None,
        metrics=None,
        fault_hook: "Callable[..., None] | None" = None,
    ) -> None:
        if not targets:
            raise ValueError("the scheduler needs at least one shard target")
        self.targets = list(targets)
        self.config = config if config is not None else MaintenanceConfig(enabled=True)
        self.clock = clock if clock is not None else SimClock()
        self.metrics = metrics
        self.fault_hook = fault_hook
        self.passes: list[MaintenancePassReport] = []
        #: First error raised by a pass run on the background thread.
        self.error: "BaseException | None" = None
        self._next_due = self.clock.now + float(self.config.interval_s)
        self._scrub_cursor = 0
        self._pass_lock = threading.Lock()
        self._thread: "threading.Thread | None" = None
        self._stop = threading.Event()
        if metrics is not None:
            counter = metrics.counter
            self._c_passes = counter(
                "maintenance_passes_total", "maintenance passes completed"
            )
            self._c_deferred = counter(
                "maintenance_deferred_txn_waits_total",
                "maintenance passes that queued behind an in-flight writer txn",
            )
            self._c_bytes = counter(
                "maintenance_bytes_reclaimed_total",
                "bytes reclaimed by maintenance GC and chunk sweeps",
            )
            self._c_deleted = counter(
                "maintenance_sets_deleted_total", "sets deleted by maintenance GC"
            )
            self._c_compacted = counter(
                "maintenance_sets_compacted_total",
                "delta sets compacted into full snapshots by maintenance",
            )
            self._c_chunks = counter(
                "maintenance_chunks_swept_total",
                "zero-reference chunks reclaimed by maintenance sweeps",
            )
            self._c_repairs = counter(
                "maintenance_repairs_drained_total",
                "replica repair-queue entries drained by maintenance",
            )

    # -- construction ------------------------------------------------------
    @classmethod
    def for_fleet(
        cls,
        fleet,
        config: "MaintenanceConfig | None" = None,
        clock: "SimClock | None" = None,
        fault_hook: "Callable[..., None] | None" = None,
    ) -> "MaintenanceScheduler":
        """A scheduler over every shard of a live ``FleetManager``.

        Uses the fleet's timed shard locks (maintenance contention shows
        up in ``fleet_shard_<i>_lock_wait_s_total``) and keeps the
        fleet's placement map in sync with what GC deletes.
        """
        targets = [
            MaintenanceTarget(
                name=f"shard-{index}",
                context=manager.context,
                lock=fleet.shard_locks[index],
                on_deleted=fleet.forget_sets,
            )
            for index, manager in enumerate(fleet.shards)
        ]
        if config is None:
            config = fleet.config.maintenance
        return cls(
            targets,
            config=config,
            clock=clock,
            metrics=fleet.metrics,
            fault_hook=fault_hook,
        )

    @classmethod
    def for_manager(
        cls,
        manager,
        config: "MaintenanceConfig | None" = None,
        clock: "SimClock | None" = None,
        fault_hook: "Callable[..., None] | None" = None,
    ) -> "MaintenanceScheduler":
        """A scheduler over one single-archive ``MultiModelManager``."""
        context = manager.context
        if config is None and context.config is not None:
            config = context.config.maintenance
        return cls(
            [MaintenanceTarget(name="archive", context=context, lock=context.mutex)],
            config=config,
            clock=clock,
            metrics=context.metrics,
            fault_hook=fault_hook,
        )

    @classmethod
    def for_contexts(
        cls,
        contexts: "list[SaveContext]",
        config: "MaintenanceConfig | None" = None,
        clock: "SimClock | None" = None,
    ) -> "MaintenanceScheduler":
        """A scheduler over bare shard contexts (the CLI's offline view)."""
        targets = [
            MaintenanceTarget(
                name=f"shard-{index}", context=context, lock=context.mutex
            )
            for index, context in enumerate(contexts)
        ]
        metrics = contexts[0].metrics if contexts else None
        return cls(targets, config=config, clock=clock, metrics=metrics)

    # -- scheduling --------------------------------------------------------
    @property
    def next_due(self) -> float:
        """Simulated time at which the next pass becomes runnable."""
        return self._next_due

    def tick(self) -> "MaintenancePassReport | None":
        """Run one pass if the clock says one is due (else ``None``)."""
        if not self.config.enabled:
            return None
        if self.clock.now < self._next_due:
            return None
        return self.run_pass(rolling=True)

    def run_pass(self, rolling: bool = False) -> MaintenancePassReport:
        """Run one maintenance pass over every shard, now.

        ``rolling`` scrubs only the round-robin cursor shard (scheduled
        mode); one-shot callers scrub every shard.  Raises whatever an
        injected fault raises — a killed pass leaves its journal entry
        pending for rollback at reopen, exactly like a killed save.
        """
        with self._pass_lock:
            index = len(self.passes)
            report = MaintenancePassReport(index=index, started_at=self.clock.now)
            scrub_shard = (
                self._scrub_cursor % len(self.targets) if rolling else None
            )
            doomed = self._fleet_doomed()
            try:
                for position, target in enumerate(self.targets):
                    scrub_here = self.config.scrub and (
                        scrub_shard is None or scrub_shard == position
                    )
                    report.shards.append(
                        self._shard_pass(target, index, doomed, scrub_here)
                    )
            finally:
                # A killed pass still consumed its slot: pacing and the
                # scrub rotation move on so a revived scheduler does not
                # immediately re-run the doomed schedule.
                self.passes.append(report)
                if rolling:
                    self._scrub_cursor += 1
                duty = float(self.config.duty_cycle)
                backoff = report.sim_s * (1.0 - duty) / duty
                self._next_due = self.clock.now + max(
                    float(self.config.interval_s), backoff
                )
                if self.metrics is not None:
                    self._c_passes.inc()
                    self._c_bytes.inc(
                        sum(entry.bytes_reclaimed for entry in report.shards)
                    )
                    self._c_deleted.inc(
                        sum(entry.sets_deleted for entry in report.shards)
                    )
                    self._c_compacted.inc(
                        sum(entry.sets_compacted for entry in report.shards)
                    )
                    self._c_chunks.inc(
                        sum(entry.chunks_swept for entry in report.shards)
                    )
                    self._c_repairs.inc(
                        sum(entry.repairs_drained for entry in report.shards)
                    )
            return report

    def _fleet_doomed(self) -> "set[str] | None":
        """Ids the retention policy condemns, decided fleet-wide.

        Fleet set ids are globally ordered, so "keep the newest N" is
        one decision over the union of every shard's listing — matching
        the fleet GC verb — not N per shard.  The decision is phrased as
        a *doomed* set (everything older than the newest N **as of pass
        start**) rather than a keep list: a save that lands between this
        snapshot and a shard's GC is newer than the cutoff by id order,
        so it must survive — and with a doomed set it does, structurally.
        """
        if self.config.gc_keep_last is None:
            return None
        all_ids: list[str] = []
        for target in self.targets:
            # Listings are management-plane reads, but the underlying
            # collections are mutated by live writers — take each shard's
            # lock (one at a time, never nested) for a consistent read.
            with target.lock:
                all_ids.extend(
                    target.context.document_store.collection_ids(SETS_COLLECTION)
                )
        all_ids.sort()
        return set(all_ids[: -int(self.config.gc_keep_last)])

    def _fault(self, point: str, shard: str, pass_index: int) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point, shard=shard, pass_index=pass_index)

    def _shard_pass(
        self,
        target: MaintenanceTarget,
        pass_index: int,
        doomed: "set[str] | None",
        scrub: bool,
    ) -> ShardMaintenanceReport:
        """One shard's slice of a pass: txn work, then replica work."""
        from repro.core.retention import RetentionManager

        context = target.context
        entry = ShardMaintenanceReport(shard=target.name)
        if not target.lock.acquire(blocking=False):
            # A writer txn is in flight: defer to it (queue behind the
            # lock) rather than contending from inside the save.
            entry.deferred = True
            if self.metrics is not None:
                self._c_deferred.inc()
            target.lock.acquire()
        sim_before = _shard_sim_s(context)
        try:
            with context.trace(
                "maintenance", shard=target.name, pass_index=pass_index
            ):
                retention = RetentionManager(context)
                # -- one atomic txn: compaction + GC + chunk sweep ----------
                with context.save_transaction("maintenance"):
                    entry.sets_compacted += self._compact_deep_chains(
                        context, retention, doomed
                    )
                    if doomed is not None:
                        self._collect(context, retention, doomed, entry, target)
                    self._fault("in-txn", target.name, pass_index)
                # -- post-commit replica work ------------------------------
                self._fault("post-commit", target.name, pass_index)
                if self.config.drain_repairs:
                    entry.repairs_drained += self._drain_repairs(context)
                if scrub:
                    self._scrub(context, entry)
        finally:
            entry.sim_s = _shard_sim_s(context) - sim_before
            target.lock.release()
        return entry

    # -- tasks -------------------------------------------------------------
    def _compact_deep_chains(
        self, context: SaveContext, retention, doomed: "set[str] | None"
    ) -> int:
        """Compact kept delta sets whose recovery chain grew too deep.

        Bounds time-to-recover for chains the retention policy retains;
        sets GC is about to delete are skipped (compacting them would be
        wasted writes inside the same transaction).
        """
        depth_limit = self.config.compact_chain_depth
        if depth_limit is None:
            return 0
        from repro.observability import trace as _trace

        store = context.document_store
        documents = store._collections.get(SETS_COLLECTION, {})
        compacted = 0
        with _trace.span("compact-chains", kind="maintenance"):
            for set_id in store.collection_ids(SETS_COLLECTION):
                if doomed is not None and set_id in doomed:
                    continue
                document = documents[set_id]
                if document.get("kind", "full") == "full":
                    continue
                if document.get("storage") == "chunked":
                    # Chunked deltas recover in one hop; compaction is a
                    # no-op for them (see RetentionManager.compact).
                    continue
                if int(document.get("chain_depth", 0)) < int(depth_limit):
                    continue
                retention.compact(set_id)
                compacted += 1
        return compacted

    def _collect(
        self,
        context: SaveContext,
        retention,
        doomed: "set[str]",
        entry: ShardMaintenanceReport,
        target: MaintenanceTarget,
    ) -> None:
        """Retention GC for one shard under the fleet-wide doomed set."""
        from repro.observability import trace as _trace

        shard_ids = context.document_store.collection_ids(SETS_COLLECTION)
        shard_keep = [set_id for set_id in shard_ids if set_id not in doomed]
        with _trace.span("gc", kind="maintenance"):
            # Cut every kept chain free of its doomed ancestors first: a
            # kept delta whose base is condemned gets compacted into a
            # full snapshot, so no doomed set has to survive for chain
            # reasons (keep_last semantics, per chain).
            documents = context.document_store._collections.get(
                SETS_COLLECTION, {}
            )
            for set_id in shard_keep:
                document = documents[set_id]
                if document.get("kind", "full") == "full":
                    continue
                base = document.get("base_set")
                if base is not None and base not in doomed:
                    continue
                retention.compact(set_id)
                if documents[set_id].get("kind", "full") == "full":
                    entry.sets_compacted += 1
            report = retention.collect(keep=shard_keep)
        entry.sets_deleted += len(report.deleted_sets)
        entry.bytes_reclaimed += report.bytes_reclaimed
        entry.chunks_swept += report.chunks_reclaimed
        if report.deleted_sets and target.on_deleted is not None:
            target.on_deleted(list(report.deleted_sets))

    def _drain_repairs(self, context: SaveContext) -> int:
        """Drain replica repair queues; returns entries resolved."""
        from repro.observability import trace as _trace
        from repro.storage.replication import replicated_stores

        file_rep, doc_rep = replicated_stores(context)
        drained = 0
        with _trace.span("repair-drain", kind="maintenance"):
            for layer in (file_rep, doc_rep):
                if layer is None:
                    continue
                report = layer.repair_pending()
                drained += sum(
                    len(report.get(key, ()))
                    for key in ("repaired", "deleted", "dropped")
                )
        return drained

    def _scrub(self, context: SaveContext, entry: ShardMaintenanceReport) -> None:
        from repro.core.fsck import scrub_archive

        report = scrub_archive(context, deep=self.config.scrub_deep)
        entry.scrubbed = True
        entry.scrub_exit = report.exit_code
        entry.repairs_drained += report.pending_flushed
        entry.lost_artifacts.extend(report.lost_artifacts)

    # -- background driving ------------------------------------------------
    def start(self, poll_s: float = 0.002) -> None:
        """Tick on a daemon thread until :meth:`stop` (wall-clock pacing).

        The thread polls the simulated clock every ``poll_s`` wall
        seconds; whoever advances the clock (the ingest queue, a
        benchmark loop) thereby controls when passes fire.
        """
        if self._thread is not None:
            raise RuntimeError("the scheduler is already running")
        self._stop.clear()
        self.error = None

        def loop() -> None:
            while not self._stop.is_set():
                try:
                    if self.tick() is None:
                        self._stop.wait(poll_s)
                except BaseException as exc:  # noqa: BLE001 - kept for the driver
                    self.error = exc
                    return

        self._thread = threading.Thread(
            target=loop, name="maintenance-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background thread (no-op when not running)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join()
        self._thread = None
