"""The stable convenience surface: ``from repro.api import ...``.

``repro``'s top-level namespace re-exports everything a power user may
touch (approach classes, verifiers, schedulers, observability).  This
module is the deliberately *small* counterpart — the handful of names a
deployment needs to save, recover, query, and serve model sets, with
the same compatibility promise as the ``repro-archive`` CLI:

* :class:`ArchiveConfig` — every archive knob, one frozen dataclass.
* :class:`MultiModelManager` — save/recover on one archive.
* :class:`FleetManager` / :class:`IngestQueue` — sharded fleets and
  their coalescing async front door.
* :class:`Registry` — the catalog: families, versions, tags, lineage,
  and layer-level diffs (``manager.context.registry`` on plain
  archives, ``fleet.registry`` on fleets).
* :class:`ModelSet` / :class:`SetMetadata` — the payload and its
  user-supplied metadata (``extra={"family": ...}`` names a family).
* :class:`ServingCache` — the tiered read cache.
* :mod:`errors <repro.errors>` — the exception taxonomy, re-exported as
  a namespace so ``except api.errors.RegistryError`` reads naturally.

Anything not importable from here may change between minor versions;
the import-surface test pins this list.
"""

from repro import errors
from repro.config import ArchiveConfig
from repro.core.manager import MultiModelManager
from repro.core.model_set import ModelSet
from repro.core.save_info import SetMetadata
from repro.fleet import FleetManager, IngestQueue
from repro.registry import Registry
from repro.serving import ServingCache

__all__ = [
    "ArchiveConfig",
    "FleetManager",
    "IngestQueue",
    "ModelSet",
    "MultiModelManager",
    "Registry",
    "ServingCache",
    "SetMetadata",
    "errors",
]
