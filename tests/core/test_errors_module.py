"""Tests pinning the exception hierarchy contract.

Callers are promised that every library failure derives from
``ReproError`` and that the documented subtype relationships hold —
refactorings must not silently break ``except`` clauses downstream.
"""

import pytest

from repro import errors


HIERARCHY = {
    errors.ConfigError: errors.ReproError,
    errors.SerializationError: errors.ReproError,
    errors.ArchitectureMismatchError: errors.ReproError,
    errors.UnknownArchitectureError: errors.ReproError,
    errors.StorageError: errors.ReproError,
    errors.ArtifactNotFoundError: errors.StorageError,
    errors.DocumentNotFoundError: errors.StorageError,
    errors.DuplicateArtifactError: errors.StorageError,
    errors.RecoveryError: errors.ReproError,
    errors.ProvenanceReplayError: errors.RecoveryError,
    errors.DatasetNotFoundError: errors.ReproError,
    errors.InvalidUpdatePlanError: errors.ReproError,
}


class TestHierarchy:
    @pytest.mark.parametrize("child,parent", sorted(
        HIERARCHY.items(), key=lambda kv: kv[0].__name__
    ))
    def test_parentage(self, child, parent):
        assert issubclass(child, parent)
        assert issubclass(child, errors.ReproError)

    def test_root_is_exception(self):
        assert issubclass(errors.ReproError, Exception)

    def test_catching_root_catches_library_failures(self):
        from repro.core.manager import MultiModelManager

        manager = MultiModelManager.with_approach("baseline")
        with pytest.raises(errors.ReproError):
            manager.recover_set("set-ghost-000000")

    def test_storage_failures_catchable_as_storage_error(self):
        from repro.storage.file_store import FileStore

        store = FileStore()
        with pytest.raises(errors.StorageError):
            store.get("missing")

    def test_provenance_failures_catchable_as_recovery_error(self):
        # ProvenanceReplayError is a RecoveryError: "recovery failed" is
        # one except-clause regardless of approach.
        assert issubclass(errors.ProvenanceReplayError, errors.RecoveryError)


class TestLegacyReExports:
    """The pre-consolidation import locations must stay importable and
    resolve to the *same* classes, so old ``except`` clauses keep
    matching new raises."""

    def test_storage_package_reexports(self):
        from repro import storage

        for name in (
            "ArtifactCorruptionError",
            "ArtifactNotFoundError",
            "DocumentNotFoundError",
            "DuplicateArtifactError",
            "QuorumError",
            "StorageError",
        ):
            assert getattr(storage, name) is getattr(errors, name)

    def test_core_package_reexports(self):
        from repro import core

        assert core.ReproError is errors.ReproError
        assert core.RecoveryError is errors.RecoveryError
