"""Tests for the MMlib-base comparator (§2.2)."""

import pytest

from repro.core.mmlib_base import MODELS_COLLECTION, MMlibBaseApproach
from repro.core.model_set import ModelSet
from repro.errors import RecoveryError


@pytest.fixture
def approach(context):
    return MMlibBaseApproach(context)


@pytest.fixture
def models():
    return ModelSet.build("FFNN-48", num_models=8, seed=0)


class TestSave:
    def test_roundtrip(self, approach, models):
        set_id = approach.save_initial(models)
        assert approach.recover(set_id).equals(models)

    def test_one_document_per_model(self, approach, models):
        approach.save_initial(models)
        assert approach.context.document_store.count(MODELS_COLLECTION) == len(models)

    def test_two_artifacts_per_model(self, approach, models):
        # Parameter blob + model code, per model (O1/O3 redundancy).
        approach.save_initial(models)
        assert approach.context.file_store.stats.writes == 2 * len(models)

    def test_write_count_scales_with_set_size(self, approach):
        # Per model: one document + two artifacts; plus one set-index doc.
        small = ModelSet.build("FFNN-48", num_models=2, seed=0)
        approach.save_initial(small)
        writes_small = (
            approach.context.document_store.stats.writes
            + approach.context.file_store.stats.writes
        )
        assert writes_small == 3 * 2 + 1
        large = ModelSet.build("FFNN-48", num_models=6, seed=0)
        approach.save_initial(large)
        writes_total = (
            approach.context.document_store.stats.writes
            + approach.context.file_store.stats.writes
        )
        assert writes_total - writes_small == 3 * 6 + 1

    def test_per_model_overhead_is_kilobytes(self, approach, models):
        # "an overhead of approximately 8 KB per model" (§4.2).
        overhead = MMlibBaseApproach.per_model_overhead_bytes(models)
        assert 2_000 < overhead < 20_000

    def test_measured_overhead_matches_estimate(self, approach, models):
        approach.save_initial(models)
        total = (
            approach.context.document_store.stats.bytes_written
            + approach.context.file_store.stats.bytes_written
        )
        params = models.parameter_bytes
        per_model = (total - params) / len(models)
        estimate = MMlibBaseApproach.per_model_overhead_bytes(models)
        assert per_model == pytest.approx(estimate, rel=0.15)

    def test_derived_save_identical_to_initial(self, approach, models):
        first = approach.save_initial(models)
        bytes_initial = (
            approach.context.document_store.stats.bytes_written
            + approach.context.file_store.stats.bytes_written
        )
        approach.save_derived(models.copy(), first)
        bytes_total = (
            approach.context.document_store.stats.bytes_written
            + approach.context.file_store.stats.bytes_written
        )
        assert bytes_total == pytest.approx(2 * bytes_initial, rel=0.01)


class TestRecover:
    def test_reads_scale_with_set_size(self, approach, models):
        set_id = approach.save_initial(models)
        approach.recover(set_id)
        # One set doc + per model: one doc read + one artifact read.
        assert approach.context.document_store.stats.reads == 1 + len(models)
        assert approach.context.file_store.stats.reads == len(models)

    def test_wrong_type_rejected(self, context, models):
        from repro.core.baseline import BaselineApproach

        baseline_id = BaselineApproach(context).save_initial(models)
        with pytest.raises(RecoveryError):
            MMlibBaseApproach(context).recover(baseline_id)

    def test_model_order_preserved(self, approach, models):
        set_id = approach.save_initial(models)
        recovered = approach.recover(set_id)
        for index in range(len(models)):
            state_a, state_b = models.state(index), recovered.state(index)
            import numpy as np

            assert all(np.array_equal(state_a[k], state_b[k]) for k in state_a)
