"""The Provenance approach (§3.4).

For derived sets, Provenance saves no parameters at all.  One document
records, **once per set**, the model metadata, the training-pipeline
variants, and the environment — and, **per updated model**, one reference
to the training data.  This is sufficient because (assumption 1) the
update training procedure differs only by the used data, and
(assumption 2) the training data is saved regardless of model management
(here: resolvable through the :class:`~repro.datasets.registry.DatasetRegistry`).

Recovery recovers the base set (recursively, like Update) and then
*re-trains* every updated model by deterministically replaying its
pipeline on the referenced dataset — the source of both the 99%+ storage
reduction and the compute-heavy staircase time-to-recover (Figure 5,
§4.4).
"""

from __future__ import annotations

import numpy as np

from repro.architectures.registry import get_architecture
from repro.core.approach import SETS_COLLECTION, SaveApproach, SaveContext
from repro.core.baseline import read_full_set, read_single_model, write_full_set
from repro.core.model_set import ModelSet
from repro.core.save_info import SetMetadata, UpdateInfo
from repro.errors import InvalidUpdatePlanError, ProvenanceReplayError
from repro.training.environment import capture_environment
from repro.training.pipeline import TrainingPipeline


class ProvenanceApproach(SaveApproach):
    """Save training provenance instead of parameters; recover by replay."""

    name = "provenance"

    def __init__(self, context: SaveContext, strict_environment: bool = False) -> None:
        super().__init__(context)
        self.strict_environment = strict_environment

    # -- save --------------------------------------------------------------
    def save_initial(
        self, model_set: ModelSet, metadata: SetMetadata | None = None
    ) -> str:
        # "For the initial model set, we save complete model
        # representations using Baseline's logic." (§3.4)
        set_id = self.context.next_set_id(self.name)
        return write_full_set(
            self.context,
            model_set,
            set_id,
            doc_type=self.name,
            metadata=metadata,
            extra_fields={"kind": "full", "chain_depth": 0},
        )

    def save_derived(
        self,
        model_set: ModelSet,
        base_set_id: str,
        update_info: UpdateInfo | None = None,
        metadata: SetMetadata | None = None,
    ) -> str:
        if update_info is None:
            raise InvalidUpdatePlanError(
                "the Provenance approach requires an UpdateInfo describing "
                "how the derived set was trained"
            )
        base_doc = self.context.set_document(base_set_id)
        self._require_type(base_doc, self.name, base_set_id)
        num_models = int(base_doc["num_models"])
        out_of_range = [
            u.model_index
            for u in update_info.updates
            if not 0 <= u.model_index < num_models
        ]
        if out_of_range:
            raise InvalidUpdatePlanError(
                f"update indices out of range for a {num_models}-model set: "
                f"{out_of_range}"
            )
        metadata = metadata if metadata is not None else SetMetadata()
        set_id = self.context.next_set_id(self.name)
        info_json = update_info.to_json()
        self.context.document_store.insert(
            SETS_COLLECTION,
            {
                "type": self.name,
                "kind": "derived",
                "base_set": base_set_id,
                "chain_depth": int(base_doc.get("chain_depth", 0)) + 1,
                "architecture": str(base_doc["architecture"]),
                "num_models": num_models,
                # Saved once per set (O2): pipeline variants + environment.
                "pipelines": info_json["pipelines"],
                "environment": capture_environment().to_json(),
                # One dataset reference per updated model.
                "updates": info_json["updates"],
                "metadata": metadata.to_json(),
            },
            doc_id=set_id,
            category="provenance",
        )
        return set_id

    # -- recover -------------------------------------------------------------
    def recover(self, set_id: str) -> ModelSet:
        chain: list[dict] = []
        current_id = set_id
        while True:
            document = self.context.set_document(current_id)
            self._require_type(document, self.name, current_id)
            if document["kind"] == "full":
                model_set = read_full_set(self.context, document, current_id)
                break
            chain.append(document)
            current_id = str(document["base_set"])

        for document in reversed(chain):
            model_set = self._replay(model_set, document)
        return model_set

    def recover_model(self, set_id: str, model_index: int):
        """Recover one model by replaying only *its* update history.

        Walks the chain back to the full snapshot, range-reads the single
        base model, then re-trains it once per cycle in which it was
        updated — skipping every other model's training entirely.
        """
        chain: list[dict] = []
        current_id = set_id
        while True:
            document = self.context.set_document(current_id)
            self._require_type(document, self.name, current_id)
            if document["kind"] == "full":
                state = read_single_model(
                    self.context, document, current_id, model_index
                )
                architecture = str(document["architecture"])
                break
            chain.append(document)
            current_id = str(document["base_set"])

        spec = get_architecture(architecture)
        for document in reversed(chain):
            info = UpdateInfo.from_json(
                {"pipelines": document["pipelines"], "updates": document["updates"]}
            )
            for update in info.updates:
                if update.model_index != model_index:
                    continue
                model = spec.build(rng=np.random.default_rng(0))
                model.load_state_dict(state)
                dataset = self.context.dataset_registry.resolve(update.dataset_ref)
                TrainingPipeline(info.pipelines[update.pipeline_key]).train(
                    model, dataset
                )
                state = model.state_dict()
        return state

    def _replay(self, base: ModelSet, document: dict) -> ModelSet:
        if self.strict_environment:
            from repro.training.environment import EnvironmentInfo

            saved = EnvironmentInfo.from_json(document["environment"])
            current = capture_environment()
            if not saved.is_compatible_with(current):
                raise ProvenanceReplayError(
                    f"environment mismatch: set was trained with numpy "
                    f"{saved.numpy_version} / python {saved.python_version}, "
                    f"replay would use numpy {current.numpy_version} / "
                    f"python {current.python_version}"
                )
        info = UpdateInfo.from_json(
            {"pipelines": document["pipelines"], "updates": document["updates"]}
        )
        derived = base.copy()
        for update in info.updates:
            model = derived.build_model(update.model_index)
            dataset = self.context.dataset_registry.resolve(update.dataset_ref)
            pipeline = TrainingPipeline(info.pipelines[update.pipeline_key])
            pipeline.train(model, dataset)
            derived.states[update.model_index] = model.state_dict()
        return derived
