"""Sharded concurrent fleet engine with a coalescing ingest front door.

Scale-out layer over the single-archive core: a
:class:`~repro.fleet.manager.FleetManager` partitions model sets across
N independent archive shards (routing by a stable hash of the set id,
chains kept shard-local), and an
:class:`~repro.fleet.ingest.IngestQueue` in front coalesces concurrent
per-model updates into set-level saves drained by a bounded,
shard-affine worker pool.

Quickstart::

    from repro import ArchiveConfig
    from repro.fleet import FleetManager, IngestQueue

    fleet = FleetManager.open("archive/", "update", ArchiveConfig(shards=4))
    set_id = fleet.save_set(models)            # routed by hash
    with IngestQueue(fleet, flush_max_updates=8) as queue:
        queue.submit(set_id, model_index=3, state=new_state)
    recovered = fleet.recover_set(fleet.list_sets()[-1])

See ``docs/operations.md`` ("Scaling out") for the on-disk layout and
how to choose shard counts and flush deadlines.
"""

from repro.fleet.deadletter import DeadLetterStore
from repro.fleet.health import DEGRADED, DOWN, HEALTHY, FleetHealthTracker
from repro.fleet.ingest import (
    IngestBackpressureError,
    IngestClosedError,
    IngestError,
    IngestQueue,
    SimClock,
)
from repro.fleet.manager import SHARD_PREFIX, FleetManager, shard_for

__all__ = [
    "DEGRADED",
    "DOWN",
    "HEALTHY",
    "SHARD_PREFIX",
    "DeadLetterStore",
    "FleetHealthTracker",
    "FleetManager",
    "IngestBackpressureError",
    "IngestClosedError",
    "IngestError",
    "IngestQueue",
    "SimClock",
    "shard_for",
]
