"""Chaos benchmark: fleet graceful degradation under a shard outage.

Drives ``REPRO_CHAOS_WRITERS`` concurrent writer chains plus Zipf-ranked
readers through FleetManager + IngestQueue while a seeded schedule takes
one shard's stores down cold mid-run, then asserts the graceful-
degradation contract (see ``repro.bench.chaos``).  Writes
``results/chaos.json``.

Claims asserted here (outage schedule deterministic per ``--seed`` /
REPRO_FAULT_SEED):

* zero accepted-update loss: flushed ∪ dead-lettered = accepted, and
  after replay the dead-letter store is empty with every batch flushed;
* byte identity: final chain heads, replayed batches, a seeded sample of
  historical flushes, and every concurrent read match the serial oracle;
* bounded queue memory: per-shard ingest load never exceeds the
  admission high watermark;
* breaker lifecycle: the victim trips DOWN and half-open save probes
  close it in-process after the revive;
* healthy shards unaffected: p99 simulated save latency on non-victim
  shards within 1.2x the no-fault baseline.

Scale knobs: ``REPRO_CHAOS_CYCLES`` (default 48), ``REPRO_CHAOS_WRITERS``
(default 32), ``REPRO_CHAOS_MODELS``, ``REPRO_CHAOS_SHARDS`` — CI's
chaos-matrix job runs a bounded variant under two seeds.
"""

import os
from pathlib import Path

from repro.bench.chaos import format_report, run_chaos_benchmark, write_report

CYCLES = int(os.environ.get("REPRO_CHAOS_CYCLES", "48"))
NUM_WRITERS = int(os.environ.get("REPRO_CHAOS_WRITERS", "32"))
NUM_MODELS = int(os.environ.get("REPRO_CHAOS_MODELS", "3"))
SHARDS = int(os.environ.get("REPRO_CHAOS_SHARDS", "4"))

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results" / "chaos.json"


def test_chaos(benchmark, fault_seed):
    report = benchmark.pedantic(
        lambda: run_chaos_benchmark(
            cycles=CYCLES,
            num_writers=NUM_WRITERS,
            num_models=NUM_MODELS,
            shards=SHARDS,
            fault_seed=fault_seed,
        ),
        rounds=1,
        iterations=1,
    )
    write_report(report, RESULTS_PATH)
    print(format_report(report))
    chaos = report["chaos"]
    books = chaos["accounting"]
    benchmark.extra_info["summary"] = {
        "schedule": report["schedule"],
        "accounting": books,
        "latency": report["latency"],
    }

    # The run behaved: no writer died, and the outage actually hit live
    # traffic (the victim is drawn from shards that own chains).
    assert chaos["writer_errors"] == []
    assert chaos["chains_on_victim"] > 0
    assert books["parked_batches"] > 0, books  # the outage dead-lettered work

    # Zero accepted-update loss: everything submit() accepted is either
    # flushed or parked — and after replay, flushed.
    accepted = books["accepted"]
    assert accepted >= CYCLES * NUM_WRITERS * NUM_MODELS
    assert (
        books["flushed_models_before_replay"]
        + books["parked_models"]
        + books["coalesced"]
        == accepted
    ), books
    assert books["replay_failed"] == [] and books["replay_skipped"] == [], books
    assert books["replayed_models"] == books["parked_models"], books
    assert books["flushed_models_total"] + books["coalesced"] == accepted, books
    assert books["dead_letters_remaining"] == 0, books

    # Byte identity against the serial oracle, live and after the fact.
    identity = chaos["identity"]
    assert identity["final_chains_checked"] == NUM_WRITERS
    assert identity["final_chain_mismatches"] == 0
    assert identity["replayed_flushes_verified"] == books["replayed_batches"]
    assert identity["replayed_mismatches"] == 0
    assert identity["sampled_flushes_verified"] > 0
    assert identity["sampled_mismatches"] == 0
    assert identity["reader_reads"] > 0
    assert identity["reader_mismatches"] == 0
    assert identity["reader_errors"] == []

    # Bounded queue memory: admission held the watermark, outage or not.
    pressure = chaos["backpressure"]
    assert max(pressure["max_shard_load"]) <= pressure["high_watermark"], pressure

    # Breaker lifecycle: the victim tripped DOWN (refused reads prove the
    # gate engaged) and came back HEALTHY in-process after the revive.
    health = chaos["health"]
    assert chaos["health"]["flush_retries"] > 0
    assert all(state == "healthy" for state in health["final_states"]), health
    victim_snapshot = health["snapshot"][report["schedule"]["victim_shard"]]
    assert victim_snapshot["breaker_trips"] >= 1, victim_snapshot
    assert victim_snapshot["refused"] > 0, victim_snapshot
    assert victim_snapshot["probes"] >= 1, victim_snapshot

    # Healthy shards stay fast: p99 within 1.2x the no-fault baseline.
    assert report["latency"]["p99_ratio"] <= 1.2, report["latency"]
