"""ArchiveConfig contract: validation, copies, shims, CLI mapping.

The legacy per-knob keyword arguments must keep producing archives that
are byte-for-byte identical to the ArchiveConfig shape — callers only
pay a DeprecationWarning, never a behaviour change.
"""

import argparse
import hashlib
from pathlib import Path

import pytest

from repro.cli import config_from_args
from repro.config import ArchiveConfig, MaintenanceConfig, ObservabilityConfig
from repro.core.approach import SaveContext
from repro.core.manager import MultiModelManager
from repro.core.model_set import ModelSet
from repro.errors import ConfigError
from repro.storage.faults import RetryPolicy
from repro.storage.hardware import LOCAL_PROFILE, SERVER_PROFILE


def build_models():
    return ModelSet.build("FFNN-48", num_models=2, seed=0)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": -1},
            {"workers": None},
            {"replicas": 0},
            {"write_quorum": 0},
            {"read_quorum": 0},
            {"replicas": 3, "write_quorum": 4},
            {"replicas": 3, "read_quorum": 5},
            {"profile": "server"},
            {"observability": {"tracing": True}},
            {"maintenance": {"enabled": True}},
            {"maintenance": MaintenanceConfig(interval_s=-1.0)},
            {"maintenance": MaintenanceConfig(duty_cycle=0.0)},
            {"maintenance": MaintenanceConfig(duty_cycle=1.5)},
            {"maintenance": MaintenanceConfig(gc_keep_last=0)},
            {"maintenance": MaintenanceConfig(compact_chain_depth=0)},
        ],
    )
    def test_bad_values_raise_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            ArchiveConfig(**kwargs)

    def test_defaults_are_valid_and_frozen(self):
        config = ArchiveConfig()
        assert config.profile is LOCAL_PROFILE
        assert (config.workers, config.dedup, config.journal) == (1, False, True)
        with pytest.raises(AttributeError):
            config.workers = 2

    def test_maintenance_defaults_and_full_duty_are_valid(self):
        assert ArchiveConfig().maintenance == MaintenanceConfig()
        assert ArchiveConfig().maintenance.enabled is False
        config = ArchiveConfig(
            maintenance=MaintenanceConfig(enabled=True, duty_cycle=1.0)
        )
        assert config.maintenance.duty_cycle == 1.0

    def test_with_replaces_and_revalidates(self):
        config = ArchiveConfig().with_(workers=4, dedup=True)
        assert (config.workers, config.dedup) == (4, True)
        with pytest.raises(ConfigError):
            config.with_(workers=-3)
        with pytest.raises(ConfigError):
            config.with_(worker_count=4)  # unknown field


class TestDeprecationShims:
    def test_with_approach_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="workers.*deprecated"):
            manager = MultiModelManager.with_approach("update", workers=4, dedup=True)
        assert manager.context.config.workers == 4
        assert manager.context.config.dedup is True

    def test_with_approach_bare_profile_positional_warns(self):
        with pytest.warns(DeprecationWarning):
            manager = MultiModelManager.with_approach("baseline", SERVER_PROFILE)
        assert manager.context.config.profile is SERVER_PROFILE

    def test_save_context_create_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning):
            context = SaveContext.create(replicas=3, write_quorum=2, read_quorum=2)
        assert context.config.replicas == 3

    def test_open_legacy_kwargs_warn(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="dedup"):
            MultiModelManager.open(str(tmp_path / "a"), "update", dedup=True)

    def test_config_path_does_not_warn(self, recwarn, tmp_path):
        MultiModelManager.with_approach("update", ArchiveConfig(workers=4))
        SaveContext.create(ArchiveConfig(replicas=3))
        MultiModelManager.open(
            str(tmp_path / "a"), "update", ArchiveConfig(dedup=True)
        )
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]

    def test_legacy_kwargs_layer_onto_explicit_config(self):
        base = ArchiveConfig(profile=SERVER_PROFILE)
        with pytest.warns(DeprecationWarning):
            manager = MultiModelManager.with_approach("update", base, workers=4)
        assert manager.context.config.profile is SERVER_PROFILE
        assert manager.context.config.workers == 4

    def test_rejects_non_config_positional(self):
        with pytest.raises(ConfigError):
            MultiModelManager.with_approach("update", {"workers": 4})


def archive_digest(directory: Path) -> dict[str, str]:
    """Relative path -> sha256 of every file under ``directory``."""
    digest = {}
    for path in sorted(directory.rglob("*")):
        if path.is_file():
            digest[str(path.relative_to(directory))] = hashlib.sha256(
                path.read_bytes()
            ).hexdigest()
    return digest


class TestLegacyEquivalence:
    def test_legacy_kwargs_produce_byte_identical_archives(self, tmp_path):
        models = build_models()

        via_config = MultiModelManager.open(
            str(tmp_path / "config"), "update", ArchiveConfig(dedup=True, workers=2)
        )
        base_id = via_config.save_set(models)
        via_config.save_set(models, base_set_id=base_id)

        with pytest.warns(DeprecationWarning):
            via_kwargs = MultiModelManager.open(
                str(tmp_path / "kwargs"), "update", dedup=True, workers=2
            )
        base_id = via_kwargs.save_set(models)
        via_kwargs.save_set(models, base_set_id=base_id)

        config_digest = archive_digest(tmp_path / "config")
        assert config_digest, "archive should not be empty"
        assert config_digest == archive_digest(tmp_path / "kwargs")


class TestConfigFromArgs:
    def make_args(self, **overrides):
        defaults = dict(
            profile_name="server",
            workers=4,
            dedup=True,
            no_journal=True,
            retries=2,
            replicas=3,
            write_quorum=2,
            read_quorum=2,
            trace=True,
            trace_json=None,
            live=False,
        )
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def test_flags_map_one_to_one(self):
        config = config_from_args(self.make_args())
        assert config == ArchiveConfig(
            profile=SERVER_PROFILE,
            workers=4,
            dedup=True,
            journal=False,
            retry=RetryPolicy(attempts=2),
            replicas=3,
            write_quorum=2,
            read_quorum=2,
            observability=ObservabilityConfig(tracing=True),
        )

    def test_defaults_map_to_default_config(self):
        args = self.make_args(
            profile_name=None,
            workers=1,
            dedup=False,
            no_journal=False,
            retries=None,
            replicas=None,
            write_quorum=None,
            read_quorum=None,
            trace=False,
        )
        assert config_from_args(args) == ArchiveConfig()

    def test_trace_json_implies_tracing(self):
        config = config_from_args(self.make_args(trace=False, trace_json="t.json"))
        assert config.observability.tracing is True
        assert config.observability.trace_path == "t.json"

    def test_live_enables_metrics(self):
        config = config_from_args(self.make_args(live=True))
        assert config.observability.metrics is True
