"""Hardware latency profiles for the simulated store connections.

The paper evaluates two setups — a Threadripper *server* and an Apple
*M1* laptop — and attributes most of the TTS/TTR difference to the speed
of the connection to the document store (§4.3, §4.4).  We reproduce that
effect with per-operation latency and throughput charges on the stores:
every document insert/fetch pays a fixed round-trip cost, and every byte
moved pays a bandwidth cost.

The simulated time is accounted separately from real compute time (see
:class:`repro.bench.metrics.Timer`), so results are deterministic and
host-independent while preserving the paper's trends: MMlib-base performs
one document write and one file write *per model* and therefore suffers
~n× the round-trip cost of the set-oriented approaches.

Latency constants are calibrated so the fixed-cost ratios between the
profiles match the paper's reported TTS numbers (server MMlib-base ≈ 4-6 s
vs. Baseline ≈ 0.45 s for 5000 models; M1 correspondingly slower).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HardwareProfile:
    """Per-operation simulated costs of a storage backend.

    Attributes
    ----------
    name:
        Human-readable profile name ("server", "M1", "local").
    doc_write_latency_s / doc_read_latency_s:
        Fixed round-trip cost of one document-store operation.
    file_write_latency_s / file_read_latency_s:
        Fixed cost of opening/creating one file artifact.
    write_bandwidth_bps / read_bandwidth_bps:
        Sustained byte throughput of the backing storage.
    """

    name: str
    doc_write_latency_s: float
    doc_read_latency_s: float
    file_write_latency_s: float
    file_read_latency_s: float
    write_bandwidth_bps: float
    read_bandwidth_bps: float

    def doc_write_cost(self, num_bytes: int) -> float:
        """Simulated seconds to write one document of ``num_bytes``."""
        return self.doc_write_latency_s + num_bytes / self.write_bandwidth_bps

    def doc_read_cost(self, num_bytes: int) -> float:
        """Simulated seconds to read one document of ``num_bytes``."""
        return self.doc_read_latency_s + num_bytes / self.read_bandwidth_bps

    def file_write_cost(self, num_bytes: int) -> float:
        """Simulated seconds to write one file artifact of ``num_bytes``."""
        return self.file_write_latency_s + num_bytes / self.write_bandwidth_bps

    def file_read_cost(self, num_bytes: int) -> float:
        """Simulated seconds to read one file artifact of ``num_bytes``."""
        return self.file_read_latency_s + num_bytes / self.read_bandwidth_bps


#: Fast server with a co-located document store (paper's default setup).
SERVER_PROFILE = HardwareProfile(
    name="server",
    doc_write_latency_s=0.4e-3,
    doc_read_latency_s=0.3e-3,
    file_write_latency_s=0.15e-3,
    file_read_latency_s=0.1e-3,
    write_bandwidth_bps=2.0e9,
    read_bandwidth_bps=2.5e9,
)

#: Laptop setup with slower store connections (paper's M1 Pro machine).
M1_PROFILE = HardwareProfile(
    name="M1",
    doc_write_latency_s=1.0e-3,
    doc_read_latency_s=0.8e-3,
    file_write_latency_s=0.4e-3,
    file_read_latency_s=0.3e-3,
    write_bandwidth_bps=1.2e9,
    read_bandwidth_bps=1.5e9,
)

#: Archival tier: object-store-like per-operation latency and modest
#: per-stream bandwidth.  Single-stream throughput is the bottleneck in
#: this regime, which is exactly where the parallel save/recover engine
#: (striped writes, vectored range reads across ``workers`` lanes) pays
#: off; ``bench_parallel_scaling.py`` uses it.
ARCHIVE_PROFILE = HardwareProfile(
    name="archive",
    doc_write_latency_s=2.0e-3,
    doc_read_latency_s=1.5e-3,
    file_write_latency_s=4.0e-3,
    file_read_latency_s=3.0e-3,
    write_bandwidth_bps=8.0e7,
    read_bandwidth_bps=1.0e8,
)

#: Zero-latency profile for unit tests and functional use.
LOCAL_PROFILE = HardwareProfile(
    name="local",
    doc_write_latency_s=0.0,
    doc_read_latency_s=0.0,
    file_write_latency_s=0.0,
    file_read_latency_s=0.0,
    write_bandwidth_bps=float("inf"),
    read_bandwidth_bps=float("inf"),
)


# ---------------------------------------------------------------------------
# concurrency-aware cost aggregation
# ---------------------------------------------------------------------------

def makespan(costs: "list[float]", workers: int = 1) -> float:
    """Simulated wall-clock seconds of running ``costs`` on parallel lanes.

    A parallel engine overlaps independent store operations, so the
    honest simulated charge for a batch is not the *sum* of per-operation
    costs but the completion time of ``workers`` concurrent lanes.  Jobs
    are assigned greedily (each to the least-loaded lane, in order),
    which is deterministic and within 4/3 of the optimal makespan.

    ``workers <= 1`` degenerates to the serial sum, keeping existing
    single-lane accounting bit-for-bit unchanged.
    """
    if workers <= 1 or len(costs) <= 1:
        return sum(costs)
    lanes = [0.0] * min(int(workers), len(costs))
    for cost in costs:
        index = lanes.index(min(lanes))
        lanes[index] += cost
    return max(lanes)


def stripe_sizes(num_bytes: int, lanes: int) -> "list[int]":
    """Split ``num_bytes`` into up to ``lanes`` near-equal stripes.

    Models a striped (multipart) artifact transfer: each stripe pays the
    per-operation latency, but the stripes move concurrently.  Always
    returns at least one stripe so zero-byte artifacts still charge one
    operation's latency.
    """
    lanes = max(1, int(lanes))
    if num_bytes <= 0 or lanes == 1:
        return [max(0, num_bytes)]
    lanes = min(lanes, num_bytes)
    base, remainder = divmod(num_bytes, lanes)
    return [base + (1 if index < remainder else 0) for index in range(lanes)]
