"""Tests for loss functions: values, gradients, and input validation."""

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, MSELoss
from tests.nn.test_layers import numerical_gradient


class TestMSELoss:
    def test_value_matches_manual(self, rng):
        loss = MSELoss()
        pred = rng.normal(size=(4, 2)).astype(np.float32)
        target = rng.normal(size=(4, 2)).astype(np.float32)
        assert np.isclose(loss(pred, target), np.mean((pred - target) ** 2), atol=1e-6)

    def test_zero_for_equal_inputs(self, rng):
        x = rng.normal(size=(3, 3)).astype(np.float32)
        assert MSELoss()(x, x.copy()) == 0.0

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            MSELoss().backward()

    def test_gradient_matches_numerical(self, rng):
        loss = MSELoss()
        pred = rng.normal(size=(3, 2)).astype(np.float32)
        target = rng.normal(size=(3, 2)).astype(np.float32)

        def value():
            return loss(pred, target)

        loss(pred, target)
        grad = loss.backward()
        numeric = numerical_gradient(value, pred)
        assert np.allclose(grad, numeric, rtol=1e-2, atol=1e-3)


class TestCrossEntropyLoss:
    def test_perfect_prediction_has_low_loss(self):
        loss = CrossEntropyLoss()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]], dtype=np.float32)
        assert loss(logits, np.array([0, 1])) < 1e-5

    def test_uniform_logits_give_log_classes(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((4, 10), dtype=np.float32)
        assert np.isclose(loss(logits, np.zeros(4, dtype=int)), np.log(10), atol=1e-5)

    def test_rejects_non_2d_logits(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(np.zeros(5), np.zeros(5, dtype=int))

    def test_rejects_target_shape_mismatch(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_rejects_out_of_range_targets(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(np.zeros((2, 3)), np.array([0, 3]))
        with pytest.raises(ValueError):
            CrossEntropyLoss()(np.zeros((2, 3)), np.array([-1, 0]))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()

    def test_gradient_matches_numerical(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(4, 5)).astype(np.float32)
        targets = np.array([0, 2, 4, 1])

        def value():
            return loss(logits, targets)

        loss(logits, targets)
        grad = loss.backward()
        numeric = numerical_gradient(value, logits)
        assert np.allclose(grad, numeric, rtol=1e-2, atol=1e-3)

    def test_gradient_rows_sum_to_zero(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(3, 4)).astype(np.float32)
        loss(logits, np.array([0, 1, 2]))
        grad = loss.backward()
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-6)

    def test_no_nan_for_extreme_logits(self):
        loss = CrossEntropyLoss()
        logits = np.array([[1e9, -1e9]], dtype=np.float32)
        value = loss(logits, np.array([1]))
        assert np.isfinite(value)
