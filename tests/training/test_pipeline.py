"""Tests for the replayable training pipeline."""

import numpy as np
import pytest

from repro.architectures import build_ffnn48
from repro.datasets.base import ArrayDataset
from repro.errors import ProvenanceReplayError
from repro.training.pipeline import PipelineConfig, TrainingPipeline


@pytest.fixture
def dataset(rng):
    inputs = rng.normal(size=(64, 4)).astype(np.float32)
    targets = rng.normal(size=(64, 1)).astype(np.float32)
    return ArrayDataset(inputs, targets)


def fresh_model(seed=0):
    return build_ffnn48(rng=np.random.default_rng(seed))


class TestPipelineConfig:
    def test_json_roundtrip(self):
        config = PipelineConfig(
            loss="mse",
            optimizer="adam",
            learning_rate=0.003,
            weight_decay=0.01,
            epochs=4,
            batch_size=16,
            shuffle_seed=99,
            trainable_layers=("2", "4"),
        )
        assert PipelineConfig.from_json(config.to_json()) == config

    def test_json_roundtrip_with_all_layers(self):
        config = PipelineConfig(trainable_layers=None)
        assert PipelineConfig.from_json(config.to_json()).trainable_layers is None

    def test_with_layers_copies_everything_else(self):
        config = PipelineConfig(learning_rate=0.5, epochs=7)
        partial = config.with_layers(("0",))
        assert partial.trainable_layers == ("0",)
        assert partial.learning_rate == 0.5
        assert partial.epochs == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(loss="hinge")
        with pytest.raises(ValueError):
            PipelineConfig(optimizer="lbfgs")
        with pytest.raises(ValueError):
            PipelineConfig(epochs=0)
        with pytest.raises(ValueError):
            PipelineConfig(batch_size=-1)


class TestTrainDeterminism:
    def test_replay_is_bit_exact(self, dataset):
        config = PipelineConfig(
            learning_rate=0.01, momentum=0.9, epochs=3, batch_size=16, shuffle_seed=5
        )
        model_a, model_b = fresh_model(), fresh_model()
        TrainingPipeline(config).train(model_a, dataset)
        TrainingPipeline(config).train(model_b, dataset)
        state_a, state_b = model_a.state_dict(), model_b.state_dict()
        assert all(np.array_equal(state_a[k], state_b[k]) for k in state_a)

    def test_replay_from_serialized_config(self, dataset):
        config = PipelineConfig(epochs=2, batch_size=8, shuffle_seed=3)
        restored = PipelineConfig.from_json(config.to_json())
        model_a, model_b = fresh_model(), fresh_model()
        TrainingPipeline(config).train(model_a, dataset)
        TrainingPipeline(restored).train(model_b, dataset)
        state_a, state_b = model_a.state_dict(), model_b.state_dict()
        assert all(np.array_equal(state_a[k], state_b[k]) for k in state_a)

    def test_different_shuffle_seeds_diverge(self, dataset):
        model_a, model_b = fresh_model(), fresh_model()
        TrainingPipeline(PipelineConfig(shuffle_seed=1, epochs=2)).train(
            model_a, dataset
        )
        TrainingPipeline(PipelineConfig(shuffle_seed=2, epochs=2)).train(
            model_b, dataset
        )
        state_a, state_b = model_a.state_dict(), model_b.state_dict()
        assert any(not np.array_equal(state_a[k], state_b[k]) for k in state_a)

    def test_adam_pipeline_deterministic(self, dataset):
        config = PipelineConfig(optimizer="adam", learning_rate=1e-3, epochs=2)
        model_a, model_b = fresh_model(), fresh_model()
        TrainingPipeline(config).train(model_a, dataset)
        TrainingPipeline(config).train(model_b, dataset)
        state_a, state_b = model_a.state_dict(), model_b.state_dict()
        assert all(np.array_equal(state_a[k], state_b[k]) for k in state_a)


class TestPartialUpdates:
    def test_only_selected_layers_change(self, dataset):
        config = PipelineConfig(epochs=1, trainable_layers=("4",))
        model = fresh_model()
        before = model.state_dict()
        TrainingPipeline(config).train(model, dataset)
        after = model.state_dict()
        for name in before:
            changed = not np.array_equal(before[name], after[name])
            assert changed == name.startswith("4."), name

    def test_prefix_matches_whole_segment_only(self, dataset):
        # Prefix "4" must not match a hypothetical layer "40.weight".
        pipeline = TrainingPipeline(PipelineConfig(trainable_layers=("4",)))
        names = pipeline.trainable_parameter_names(fresh_model())
        assert names == ["4.weight", "4.bias"]

    def test_unmatched_prefix_raises(self, dataset):
        pipeline = TrainingPipeline(PipelineConfig(trainable_layers=("99",)))
        with pytest.raises(ProvenanceReplayError):
            pipeline.train(fresh_model(), dataset)

    def test_full_update_trains_all_layers(self, dataset):
        config = PipelineConfig(epochs=1, learning_rate=0.05)
        model = fresh_model()
        before = model.state_dict()
        TrainingPipeline(config).train(model, dataset)
        after = model.state_dict()
        assert all(not np.array_equal(before[k], after[k]) for k in before)


class TestTrainingResult:
    def test_result_fields(self, dataset):
        config = PipelineConfig(epochs=3, batch_size=16)
        result = TrainingPipeline(config).train(fresh_model(), dataset)
        assert result.epochs == 3
        assert result.batches == 3 * 4  # 64 samples / 16 per batch
        assert len(result.loss_history) == 3
        assert result.final_loss == result.loss_history[-1]

    def test_loss_decreases_on_learnable_data(self, rng):
        inputs = rng.normal(size=(128, 4)).astype(np.float32)
        targets = (inputs.sum(axis=1, keepdims=True) * 0.2).astype(np.float32)
        dataset = ArrayDataset(inputs, targets)
        config = PipelineConfig(learning_rate=0.02, momentum=0.9, epochs=10)
        result = TrainingPipeline(config).train(fresh_model(), dataset)
        assert result.loss_history[-1] < result.loss_history[0] * 0.5

    def test_model_left_in_eval_mode(self, dataset):
        model = fresh_model()
        TrainingPipeline(PipelineConfig()).train(model, dataset)
        assert not model.training

    def test_cross_entropy_pipeline(self, rng):
        from repro.architectures import build_cifar_cnn
        from repro.datasets.synthetic_cifar import SyntheticCifarDataset

        dataset = SyntheticCifarDataset(num_samples=32, seed=0)
        config = PipelineConfig(
            loss="cross-entropy", optimizer="adam", learning_rate=1e-3,
            epochs=1, batch_size=16,
        )
        model = build_cifar_cnn(rng=rng)
        result = TrainingPipeline(config).train(model, dataset)
        assert np.isfinite(result.final_loss)
