"""Single-archive inspection and transformation verbs.

``info``/``lineage``/``verify``/``fsck``/``scrub`` audit one archive (or
one shard, when driven by the fleet dispatcher); ``history``/``compact``/
``export``/``migrate``/``stats`` read or rewrite its contents; ``trace``
runs the synthetic traced update cycle.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import _manager_for, config_from_args
from repro.config import ArchiveConfig, ObservabilityConfig
from repro.core.approach import SETS_COLLECTION, SaveContext
from repro.core.lineage import LineageGraph, model_history
from repro.core.manager import MultiModelManager
from repro.core.migration import migrate_archive
from repro.core.retention import RetentionManager
from repro.core.verify import ArchiveVerifier
from repro.storage.hardware import SERVER_PROFILE


def _cmd_info(context: SaveContext, args: argparse.Namespace) -> int:
    from repro.cli.common import _detect_approach
    from repro.storage.chunk_index import PACKS_COLLECTION

    lineage = LineageGraph.from_context(context)
    set_ids = context.document_store.collection_ids(SETS_COLLECTION)
    print(f"sets: {len(set_ids)}")
    print(f"stored bytes: {context.total_bytes():,}")
    print(f"approach: {_detect_approach(context) or 'mixed/empty'}")
    from repro.storage.replication import replicated_stores

    file_rep, _doc_rep = replicated_stores(context)
    if file_rep is not None:
        open_breakers = sum(
            1 for entry in file_rep.health() if entry["breaker_open"]
        )
        print(
            f"replication: {len(file_rep.replicas)} replicas, "
            f"W={file_rep.write_quorum} R={file_rep.read_quorum}, "
            f"{open_breakers} breaker(s) open"
        )
    if set_ids:
        print(f"roots: {', '.join(lineage.roots())}")
        print(f"leaves: {', '.join(lineage.leaves())}")
    if context.registry is not None and context.registry.families():
        print(f"families: {', '.join(context.registry.families())}")
    if context.document_store._collections.get(PACKS_COLLECTION):
        chunks = context.chunk_store()
        print(
            f"chunks: {len(chunks)} unique, {chunks.total_references():,} "
            f"references (dedup ratio {chunks.dedup_ratio():.1%})"
        )
        print(
            f"chunk bytes: {chunks.live_bytes():,} live, "
            f"{chunks.dead_bytes():,} reclaimable"
        )
    return 0


def _cmd_lineage(context: SaveContext, args: argparse.Namespace) -> int:
    lineage = LineageGraph.from_context(context)
    for set_id in context.document_store.collection_ids(SETS_COLLECTION):
        info = lineage.node_info(set_id)
        base = lineage.base_of(set_id)
        chain = lineage.chain_depth(set_id)
        parent = f" <- {base}" if base else ""
        print(
            f"{set_id}  [{info.get('approach')}/{info.get('kind')}] "
            f"models={info.get('num_models')} chain_depth={chain}{parent}"
        )
    return 0


def _cmd_verify(context: SaveContext, args: argparse.Namespace) -> int:
    report = ArchiveVerifier(context).verify_all(deep=args.deep)
    print(f"checked {report.sets_checked} sets")
    if report.ok:
        print("archive is clean")
        return 0
    for issue in report.issues:
        print(f"ISSUE {issue}")
    return 1


def _cmd_fsck(context: SaveContext, args: argparse.Namespace) -> int:
    from repro.core.fsck import ArchiveFsck

    report = ArchiveFsck(context).run(deep=args.deep)
    print(
        f"checked {report.sets_checked} sets, {report.artifacts_checked} "
        f"artifacts, {report.chunks_checked} chunks"
    )
    if report.ok:
        print("archive is consistent")
        return 0
    for txn in report.pending_journal:
        print(f"PENDING-TXN {txn} (reopen the archive to roll it back)")
    for entry in report.missing_artifacts:
        print(f"MISSING {entry['artifact']} (referenced by {entry['set_id']})")
    for artifact in report.orphan_artifacts:
        print(f"ORPHAN {artifact}")
    for entry in report.refcount_mismatches:
        print(
            f"REFCOUNT {entry['digest'][:16]}… expected {entry['expected']}, "
            f"ledger says {entry['actual']}"
        )
    for artifact in report.corrupt_artifacts:
        print(f"CORRUPT {artifact}")
    for digest in report.corrupt_chunks:
        print(f"CORRUPT-CHUNK {digest[:16]}…")
    for digest in report.quarantined_chunks:
        print(f"QUARANTINED {digest[:16]}…")
    for artifact in report.degraded_artifacts:
        print(f"DEGRADED {artifact} (a clean replica copy survives; run scrub)")
    for entry in report.replica_divergence:
        if entry.get("unreachable"):
            print(f"DIVERGENT {entry['replica']}: unreachable")
            continue
        print(
            f"DIVERGENT {entry['replica']}: "
            f"{len(entry['missing_artifacts'])} missing / "
            f"{len(entry['extra_artifacts'])} extra / "
            f"{len(entry['divergent_artifacts'])} divergent artifacts, "
            f"{entry['missing_documents']} missing / "
            f"{entry['extra_documents']} extra / "
            f"{entry['divergent_documents']} divergent documents"
        )
    return report.exit_code


def _cmd_scrub(context: SaveContext, args: argparse.Namespace) -> int:
    from repro.core.fsck import scrub_archive

    report = scrub_archive(context, deep=not args.shallow)
    print(report.summary())
    for replica, artifact in report.artifacts_healed:
        print(f"HEALED {replica}: {artifact}")
    for replica, artifact in report.artifacts_pruned:
        print(f"PRUNED {replica}: {artifact}")
    for artifact in report.packs_reassembled:
        print(f"REASSEMBLED {artifact}")
    for digest in report.chunks_repaired:
        print(f"CHUNK-REPAIRED {digest[:16]}…")
    for replica in report.unreachable_replicas:
        print(f"UNREACHABLE {replica} (repairs deferred to the next scrub)")
    for artifact in report.lost_artifacts:
        print(f"LOST {artifact} (no recoverable copy on any replica)")
    return report.exit_code


def _cmd_history(context: SaveContext, args: argparse.Namespace) -> int:
    manager = _manager_for(context, args.approach)
    lineage = LineageGraph.from_context(context)
    chain = lineage.recovery_chain(args.set_id)
    history = model_history(manager, chain, args.model_index)
    print(f"model {args.model_index} across {len(chain)} generations:")
    for set_id, drift in zip(history.set_ids, history.drift_from_start):
        print(f"  {set_id}  drift={drift:.6f}")
    return 0


def _cmd_compact(context: SaveContext, args: argparse.Namespace) -> int:
    RetentionManager(context).compact(args.set_id)
    print(f"compacted {args.set_id} into a full snapshot")
    return 0


def _cmd_export(context: SaveContext, args: argparse.Namespace) -> int:
    from repro.core.export import export_models

    manager = _manager_for(context, args.approach)
    indices = args.models if args.models else None
    manifest = export_models(
        manager,
        args.set_id,
        args.output_dir,
        model_indices=indices,
        salvage=args.salvage,
    )
    if args.salvage:
        import json

        bundle = json.loads(manifest.read_text())
        exported = len(bundle["models"])
        skipped = bundle.get("salvage", {}).get("skipped", [])
        print(
            f"exported {exported} models to {args.output_dir} "
            f"(manifest: {manifest})"
        )
        for entry in skipped:
            print(f"SKIPPED model {entry['model']}: {entry['reason']}")
        return 1 if skipped else 0
    count = len(indices) if indices else manager.set_info(args.set_id)["num_models"]
    print(f"exported {count} models to {args.output_dir} (manifest: {manifest})")
    return 0


def _cmd_migrate(context: SaveContext, args: argparse.Namespace) -> int:
    target = MultiModelManager.open(
        args.target_dir, args.target_approach, ArchiveConfig(dedup=args.dedup)
    )
    report = migrate_archive(context, target)
    print(f"migrated {report.sets_migrated} sets to {args.target_dir}")
    print(
        f"storage: {report.source_bytes:,} -> {report.target_bytes:,} bytes "
        f"({report.storage_ratio:.1%})"
    )
    stats = target.context.file_store.stats
    if stats.chunks_total:
        print(
            f"chunks: {stats.chunks_total:,} written, "
            f"{stats.chunks_deduped:,} deduplicated "
            f"({stats.dedup_ratio:.1%})"
        )
    for old, new in report.id_map.items():
        print(f"  {old} -> {new}")
    return 0


def _print_serving_stats(context: SaveContext) -> None:
    serving = context.serving
    if serving is None:
        return
    counters = serving.counters()
    print(
        f"serving cache: {counters['requests']} requests, "
        f"tier-1 {counters['set_hits']} hits / {counters['set_misses']} "
        f"misses ({counters['set_hit_rate']:.1%}), "
        f"tier-2 {counters['chunk_hits']} hits / "
        f"{counters['chunk_misses']} misses "
        f"({counters['chunk_hit_rate']:.1%})"
    )
    print(
        f"  tier 1: {counters['set_cache_entries']} entries, "
        f"{counters['set_cache_bytes']:,} B, "
        f"{counters['set_cache_evictions']} evictions"
    )
    print(
        f"  tier 2: {counters['chunk_cache_entries']} chunks, "
        f"{counters['chunk_cache_bytes']:,} B, "
        f"{counters['chunk_cache_evictions']} evictions"
    )
    print(
        f"  served {counters['logical_bytes_served']:,} logical B, "
        f"saved {counters['bytes_saved']:,} B of store reads, "
        f"{counters['invalidations']} invalidations"
    )


def _cmd_stats(context: SaveContext, args: argparse.Namespace) -> int:
    if args.live:
        import json

        from repro.observability import metrics_json, prometheus_text
        from repro.observability.metrics import global_registry

        registry = context.metrics or global_registry()
        if args.format == "prometheus":
            sys.stdout.write(prometheus_text(registry))
        elif args.format == "json":
            print(json.dumps(metrics_json(registry), indent=2))
        else:
            for name, value in sorted(registry.collect().items()):
                print(f"{name} = {value}")
        return 0
    for label, stats in (
        ("file_store", context.file_store.stats),
        ("document_store", context.document_store.stats),
    ):
        snap = stats.snapshot()
        print(
            f"{label}: {snap.writes} writes ({snap.bytes_written:,} B), "
            f"{snap.reads} reads ({snap.bytes_read:,} B), "
            f"{snap.deletes} deletes ({snap.bytes_deleted:,} B), "
            f"sim {snap.simulated_write_s + snap.simulated_read_s:.6f}s"
        )
        for category, count in sorted(snap.bytes_by_category.items()):
            print(f"  {category}: {count:,} B stored")
    _print_serving_stats(context)
    return 0


def _trace_report(title: str, root, simulated_s: float) -> bool:
    """Print one trace tree + phase breakdown; True when phases sum to TTS."""
    from repro.observability import phase_breakdown, render_tree

    print(f"== {title} ==")
    print(render_tree(root))
    phases = phase_breakdown(root)
    total = sum(phases.values())
    for phase, seconds in phases.items():
        print(f"  phase {phase:<12} {seconds * 1000:10.6f} ms")
    print(f"  phase sum          {total * 1000:10.6f} ms")
    print(f"  simulated total    {simulated_s * 1000:10.6f} ms")
    ok = abs(total - simulated_s) <= 1e-9
    if not ok:
        print(
            f"  MISMATCH: phases sum to {total!r}, "
            f"stats charged {simulated_s!r}"
        )
    return ok


def _cmd_trace(args: argparse.Namespace) -> int:
    """Synthetic U3 update cycle under tracing (ignores the directory).

    Builds a fresh in-memory archive from the global flags (``--profile``
    defaults to ``server`` here so store operations charge nonzero
    simulated latency), saves an initial set, perturbs one model and
    saves the derived set, recovers it — then prints both span trees and
    checks that each trace's per-phase simulated times sum exactly to the
    simulated TTS/TTR the storage stats charged.
    """
    import numpy as np

    from repro.bench.metrics import measure_recover, measure_save
    from repro.core.model_set import ModelSet
    from repro.observability import write_trace_json

    config = config_from_args(args)
    if getattr(args, "profile_name", None) is None:
        config = config.with_(profile=SERVER_PROFILE)
    config = config.with_(
        observability=ObservabilityConfig(
            tracing=True, trace_path=config.observability.trace_path
        )
    )
    if args.replica_down and (config.replicas or 1) < 2:
        print("error: --replica-down needs --replicas >= 2", file=sys.stderr)
        return 2
    manager = MultiModelManager.with_approach("update", config)
    context = manager.context
    if args.replica_down:
        from repro.storage.faults import FaultInjector, inject_replica_faults

        inject_replica_faults(
            context,
            config.replicas - 1,
            FaultInjector(down_at=0, down_mode="before"),
        )
        print(f"replica-{config.replicas - 1} is down for the whole cycle")

    models = ModelSet.build("FFNN-48", num_models=args.models, seed=0)
    base_id = manager.save_set(models)
    derived = models.copy()
    layer_names = models.schema.layer_names()
    for name in (layer_names[0], layer_names[-1]):
        derived.state(1)[name] = (derived.state(1)[name] + 0.5).astype(
            np.float32
        )

    context.tracer.clear()
    set_id, save_measurement = measure_save(
        manager, derived, base_set_id=base_id
    )
    save_root = context.tracer.last_root
    recovered, recover_measurement = measure_recover(manager, set_id)
    recover_root = context.tracer.last_root

    print(
        f"U3 update cycle: {base_id} -> {set_id} "
        f"({args.models} models, workers={config.workers}, "
        f"replicas={config.replicas or 1})"
    )
    ok = _trace_report(
        f"save_set {set_id} (TTS {save_measurement.total_s:.6f}s = "
        f"{save_measurement.real_s:.6f}s real + "
        f"{save_measurement.simulated_s:.6f}s simulated)",
        save_root,
        save_measurement.simulated_s,
    )
    ok &= _trace_report(
        f"recover_set {set_id} (TTR {recover_measurement.total_s:.6f}s = "
        f"{recover_measurement.real_s:.6f}s real + "
        f"{recover_measurement.simulated_s:.6f}s simulated)",
        recover_root,
        recover_measurement.simulated_s,
    )
    if not recovered.equals(derived):
        print("MISMATCH: recovered set differs from the saved one")
        ok = False
    if config.observability.trace_path:
        path = write_trace_json(
            config.observability.trace_path,
            context.tracer.roots,
            meta={
                "workers": config.workers,
                "replicas": config.replicas or 1,
                "replica_down": bool(args.replica_down),
                "num_models": args.models,
            },
        )
        print(f"trace written to {path}")
    return 0 if ok else 1
