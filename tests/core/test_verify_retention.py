"""Tests for archive verification and retention (compaction + GC)."""

import pytest

from repro.core.approach import SETS_COLLECTION
from repro.core.lineage import LineageGraph
from repro.core.manager import MultiModelManager
from repro.core.retention import RetentionManager
from repro.core.update import HASH_COLLECTION
from repro.core.verify import ArchiveVerifier
from repro.errors import DocumentNotFoundError
from tests.conftest import save_sequence


@pytest.fixture
def update_archive(synthetic_cases):
    manager = MultiModelManager.with_approach("update")
    set_ids = save_sequence(manager, synthetic_cases)
    return manager, set_ids


class TestVerifier:
    def test_clean_archive_passes(self, update_archive):
        manager, set_ids = update_archive
        report = ArchiveVerifier(manager.context).verify_all(deep=True)
        assert report.ok
        assert report.sets_checked == len(set_ids)

    @pytest.mark.parametrize("approach", ("baseline", "mmlib-base", "pas-delta"))
    def test_other_approaches_pass(self, approach, synthetic_cases):
        manager = MultiModelManager.with_approach(approach)
        save_sequence(manager, synthetic_cases)
        assert ArchiveVerifier(manager.context).verify_all(deep=True).ok

    def test_missing_artifact_detected(self, update_archive):
        manager, set_ids = update_archive
        document = manager.set_info(set_ids[0])
        manager.context.file_store.delete(document["params_artifact"])
        report = ArchiveVerifier(manager.context).verify_all()
        assert not report.ok
        assert any(issue.kind == "missing-artifact" for issue in report.issues)

    def test_truncated_full_artifact_detected(self, update_archive):
        manager, set_ids = update_archive
        document = manager.set_info(set_ids[0])
        artifact = document["params_artifact"]
        blobs = manager.context.file_store._blobs
        blobs[artifact] = blobs[artifact][:-100]
        report = ArchiveVerifier(manager.context).verify_all()
        assert any(issue.kind == "length-mismatch" for issue in report.issues)

    def test_delta_blob_mismatch_detected(self, update_archive):
        manager, set_ids = update_archive
        document = manager.set_info(set_ids[1])
        artifact = document["params_artifact"]
        blobs = manager.context.file_store._blobs
        blobs[artifact] = blobs[artifact] + b"\x00" * 4
        report = ArchiveVerifier(manager.context).verify_all()
        assert any(issue.kind == "diff-mismatch" for issue in report.issues)

    def test_broken_chain_detected(self, update_archive):
        manager, set_ids = update_archive
        manager.context.document_store.delete(SETS_COLLECTION, set_ids[0])
        report = ArchiveVerifier(manager.context).verify_all()
        assert any(issue.kind == "broken-chain" for issue in report.issues)

    def test_tampered_parameters_fail_deep_hash_check(self, update_archive):
        manager, set_ids = update_archive
        document = manager.set_info(set_ids[0])
        artifact = document["params_artifact"]
        blobs = manager.context.file_store._blobs
        tampered = bytearray(blobs[artifact])
        tampered[64] ^= 0xFF
        blobs[artifact] = bytes(tampered)
        report = ArchiveVerifier(manager.context).verify_all(deep=True)
        assert any(issue.kind == "hash-mismatch" for issue in report.issues)

    def test_shallow_check_misses_value_tampering(self, update_archive):
        # Documents why deep verification exists: same tampering, but the
        # shallow pass only checks structure and lengths.
        manager, set_ids = update_archive
        document = manager.set_info(set_ids[0])
        artifact = document["params_artifact"]
        blobs = manager.context.file_store._blobs
        tampered = bytearray(blobs[artifact])
        tampered[64] ^= 0xFF
        blobs[artifact] = bytes(tampered)
        assert ArchiveVerifier(manager.context).verify_all(deep=False).ok


class TestCompaction:
    def test_compacted_set_recovers_identically(self, update_archive, synthetic_cases):
        manager, set_ids = update_archive
        RetentionManager(manager.context).compact(set_ids[1])
        assert manager.recover_set(set_ids[1]).equals(synthetic_cases[1].model_set)

    def test_compaction_cuts_the_chain(self, update_archive):
        manager, set_ids = update_archive
        RetentionManager(manager.context).compact(set_ids[1])
        lineage = LineageGraph.from_context(manager.context)
        assert lineage.chain_depth(set_ids[1]) == 0
        # Descendants now chain back only to the compacted snapshot.
        assert lineage.recovery_chain(set_ids[2]) == [set_ids[1], set_ids[2]]

    def test_descendants_still_recover_after_compaction(
        self, update_archive, synthetic_cases
    ):
        manager, set_ids = update_archive
        RetentionManager(manager.context).compact(set_ids[1])
        assert manager.recover_set(set_ids[-1]).equals(
            synthetic_cases[-1].model_set
        )

    def test_derived_saves_after_compaction_diff_correctly(
        self, update_archive, synthetic_cases
    ):
        manager, set_ids = update_archive
        RetentionManager(manager.context).compact(set_ids[-1])
        derived = synthetic_cases[-1].model_set.copy()
        derived.state(0)["0.weight"][:] += 1.0
        new_id = manager.save_set(derived, base_set_id=set_ids[-1])
        assert manager.recover_set(new_id).equals(derived)

    def test_compacting_full_set_is_noop(self, update_archive):
        manager, set_ids = update_archive
        before = manager.total_stored_bytes()
        RetentionManager(manager.context).compact(set_ids[0])
        assert manager.total_stored_bytes() == before

    def test_compacting_baseline_set_is_noop(self, synthetic_cases):
        manager = MultiModelManager.with_approach("baseline")
        set_ids = save_sequence(manager, synthetic_cases[:2])
        before = manager.total_stored_bytes()
        RetentionManager(manager.context).compact(set_ids[1])
        assert manager.total_stored_bytes() == before

    def test_unknown_set_raises(self, update_archive):
        manager, _ids = update_archive
        with pytest.raises(DocumentNotFoundError):
            RetentionManager(manager.context).compact("set-ghost-000001")

    def test_pas_delta_set_compacts(self, synthetic_cases):
        manager = MultiModelManager.with_approach("pas-delta")
        set_ids = save_sequence(manager, synthetic_cases)
        RetentionManager(manager.context).compact(set_ids[-1])
        assert manager.recover_set(set_ids[-1]).equals(
            synthetic_cases[-1].model_set
        )
        lineage = LineageGraph.from_context(manager.context)
        assert lineage.chain_depth(set_ids[-1]) == 0

    def test_provenance_set_compacts(self, trained_cases):
        manager = MultiModelManager.with_approach("provenance")
        set_ids = save_sequence(manager, trained_cases)
        RetentionManager(manager.context).compact(set_ids[-1])
        assert manager.recover_set(set_ids[-1]).equals(trained_cases[-1].model_set)
        # Recovery no longer replays training: document store only.
        lineage = LineageGraph.from_context(manager.context)
        assert lineage.chain_depth(set_ids[-1]) == 0


class TestGarbageCollection:
    def test_collect_protects_chain_ancestors(self, update_archive, synthetic_cases):
        manager, set_ids = update_archive
        report = RetentionManager(manager.context).collect(keep=[set_ids[-1]])
        # Nothing can be deleted: the kept delta needs every ancestor.
        assert report.deleted_sets == []
        assert report.retained_for_chains == sorted(set_ids[:-1])
        assert manager.recover_set(set_ids[-1]).equals(
            synthetic_cases[-1].model_set
        )

    def test_keep_last_compacts_then_deletes(self, update_archive, synthetic_cases):
        manager, set_ids = update_archive
        report = RetentionManager(manager.context).keep_last(1)
        assert report.deleted_sets == sorted(set_ids[:-1])
        assert report.bytes_reclaimed > 0
        assert manager.list_sets() == [set_ids[-1]]
        assert manager.recover_set(set_ids[-1]).equals(
            synthetic_cases[-1].model_set
        )

    def test_keep_last_without_compaction_retains_chain(self, update_archive):
        manager, set_ids = update_archive
        report = RetentionManager(manager.context).keep_last(
            1, compact_oldest_kept=False
        )
        assert report.deleted_sets == []
        assert report.retained_for_chains == sorted(set_ids[:-1])

    def test_collect_removes_hash_info_and_artifacts(self, update_archive):
        manager, set_ids = update_archive
        store = manager.context.document_store
        RetentionManager(manager.context).keep_last(1)
        for old_id in set_ids[:-1]:
            assert not store.exists(SETS_COLLECTION, old_id)
            assert not store.exists(HASH_COLLECTION, old_id)

    def test_collect_mmlib_archive_removes_model_docs(self, synthetic_cases):
        manager = MultiModelManager.with_approach("mmlib-base")
        set_ids = save_sequence(manager, synthetic_cases[:2])
        report = RetentionManager(manager.context).collect(keep=[set_ids[1]])
        assert report.deleted_sets == [set_ids[0]]
        assert manager.context.document_store.count("mmlib_models") == len(
            synthetic_cases[0].model_set
        )
        assert manager.recover_set(set_ids[1]).equals(synthetic_cases[1].model_set)

    def test_unknown_keep_id_rejected(self, update_archive):
        manager, _ids = update_archive
        with pytest.raises(DocumentNotFoundError):
            RetentionManager(manager.context).collect(keep=["set-ghost-000000"])

    def test_keep_last_validation(self, update_archive):
        manager, _ids = update_archive
        with pytest.raises(ValueError):
            RetentionManager(manager.context).keep_last(0)

    def test_post_gc_archive_verifies_clean(self, update_archive):
        manager, _set_ids = update_archive
        RetentionManager(manager.context).keep_last(2)
        assert ArchiveVerifier(manager.context).verify_all(deep=True).ok

    def test_gc_on_persistent_archive(self, tmp_path, synthetic_cases):
        manager = MultiModelManager.open(str(tmp_path), "update")
        set_ids = save_sequence(manager, synthetic_cases)
        RetentionManager(manager.context).keep_last(1)
        reopened = MultiModelManager.open(str(tmp_path), "update")
        assert reopened.list_sets() == [set_ids[-1]]
        assert reopened.recover_set(set_ids[-1]).equals(
            synthetic_cases[-1].model_set
        )
