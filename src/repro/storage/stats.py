"""Byte- and operation-level accounting for the storage substrates."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.observability import trace as _trace


@dataclass
class StorageStats:
    """Mutable counters a store updates on every operation.

    ``simulated_*_s`` accumulate the latency-model time charged by the
    active :class:`~repro.storage.hardware.HardwareProfile`; the benchmark
    harness adds them to measured compute time to obtain TTS/TTR.

    Recording is guarded by a lock: the parallel save/recover engine
    issues store operations from worker threads, and the counters must
    stay exact (they back deterministic benchmark assertions).
    ``snapshot``/``delta_since`` take the same lock, so a reader never
    observes a half-applied record (e.g. ``writes`` bumped but
    ``bytes_by_category`` not yet).

    When ``traced`` is set (by
    :func:`repro.observability.trace.install_tracing`, on the
    context-level stats only — never on the per-replica backends, whose
    charges are already folded into the replicated store's quorum cost),
    every charge is also attributed to the current trace span.
    """

    writes: int = 0
    reads: int = 0
    #: Charged delete operations (GC/retention; management-plane raw
    #: deletes are not counted, mirroring raw writes).
    deletes: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    #: Bytes removed by charged deletes (also subtracted from
    #: ``bytes_by_category``, which tracks *currently stored* bytes).
    bytes_deleted: int = 0
    simulated_write_s: float = 0.0
    simulated_read_s: float = 0.0
    #: Chunk references processed by the dedup layer (one per layer tensor
    #: stored through a :class:`~repro.storage.chunk_index.ChunkStore`).
    chunks_total: int = 0
    #: References whose bytes were already present and therefore elided.
    chunks_deduped: int = 0
    #: Parameter bytes the dedup layer did not have to write.
    chunk_bytes_deduped: int = 0
    #: Store operations re-issued by the retry policy after a transient
    #: failure (each backoff sleep is charged as simulated latency).
    retries: int = 0
    simulated_retry_s: float = 0.0
    #: Reads whose simulated latency was cut by a hedged second request
    #: to another replica (the hedge won the race).
    hedged_reads: int = 0
    #: Reads that could not be served by the preferred replica and fell
    #: over to another one (outage, missing copy, or failed verification).
    read_failovers: int = 0
    #: Bytes currently stored, keyed by a caller-chosen category label
    #: (e.g. "parameters", "metadata", "hash-info") for breakdown reports.
    bytes_by_category: dict[str, int] = field(default_factory=dict)
    #: Which substrate this object accounts ("file" or "doc") — prefixes
    #: the trace charge kind so breakdowns can tell the stores apart.
    origin: str = field(default="file", compare=False)
    #: Attribute charges to the current trace span (set by
    #: :func:`~repro.observability.trace.install_tracing`).
    traced: bool = field(default=False, compare=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def record_write(self, num_bytes: int, simulated_s: float, category: str) -> None:
        with self._lock:
            self.writes += 1
            self.bytes_written += num_bytes
            self.simulated_write_s += simulated_s
            self.bytes_by_category[category] = (
                self.bytes_by_category.get(category, 0) + num_bytes
            )
        if self.traced:
            _trace.charge(f"{self.origin}-write", num_bytes, simulated_s)

    def record_read(self, num_bytes: int, simulated_s: float) -> None:
        with self._lock:
            self.reads += 1
            self.bytes_read += num_bytes
            self.simulated_read_s += simulated_s
        if self.traced:
            _trace.charge(f"{self.origin}-read", num_bytes, simulated_s)

    def record_delete(
        self, num_bytes: int, category: str, count_op: bool = True
    ) -> None:
        """Account removing ``num_bytes`` of stored data from ``category``.

        Keeps ``bytes_by_category`` an accurate *currently stored*
        breakdown on GC/retention paths; zeroed categories are dropped so
        a fully collected category disappears from reports.
        ``count_op=False`` adjusts only the byte accounting — used by
        ``replace``, which removes the overwritten document's bytes
        without being a delete operation.
        """
        with self._lock:
            if count_op:
                self.deletes += 1
            self.bytes_deleted += num_bytes
            remaining = self.bytes_by_category.get(category, 0) - num_bytes
            if remaining:
                self.bytes_by_category[category] = remaining
            else:
                self.bytes_by_category.pop(category, None)

    def record_chunks(self, total: int, deduped: int, bytes_deduped: int) -> None:
        """Account one dedup-layer ingest: references seen vs. elided."""
        with self._lock:
            self.chunks_total += total
            self.chunks_deduped += deduped
            self.chunk_bytes_deduped += bytes_deduped

    def record_retry(self, backoff_s: float) -> None:
        """Account one retried operation and its simulated backoff wait."""
        with self._lock:
            self.retries += 1
            self.simulated_retry_s += backoff_s
        if self.traced:
            _trace.charge("retry", 0, backoff_s)

    def record_hedge(self) -> None:
        """Account one read won by a hedged request to a second replica."""
        with self._lock:
            self.hedged_reads += 1

    def record_failover(self) -> None:
        """Account one read served by a non-preferred replica."""
        with self._lock:
            self.read_failovers += 1

    @property
    def dedup_ratio(self) -> float:
        """Fraction of chunk references served without storing new bytes."""
        if self.chunks_total == 0:
            return 0.0
        return self.chunks_deduped / self.chunks_total

    def snapshot(self) -> "StorageStats":
        """Copy of the current counters (for before/after deltas)."""
        with self._lock:
            return StorageStats(
                writes=self.writes,
                reads=self.reads,
                deletes=self.deletes,
                bytes_written=self.bytes_written,
                bytes_read=self.bytes_read,
                bytes_deleted=self.bytes_deleted,
                simulated_write_s=self.simulated_write_s,
                simulated_read_s=self.simulated_read_s,
                chunks_total=self.chunks_total,
                chunks_deduped=self.chunks_deduped,
                chunk_bytes_deduped=self.chunk_bytes_deduped,
                retries=self.retries,
                simulated_retry_s=self.simulated_retry_s,
                hedged_reads=self.hedged_reads,
                read_failovers=self.read_failovers,
                bytes_by_category=dict(self.bytes_by_category),
                origin=self.origin,
            )

    def delta_since(self, earlier: "StorageStats") -> "StorageStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        current = self.snapshot()
        categories = {
            key: current.bytes_by_category.get(key, 0)
            - earlier.bytes_by_category.get(key, 0)
            for key in set(current.bytes_by_category)
            | set(earlier.bytes_by_category)
        }
        return StorageStats(
            writes=current.writes - earlier.writes,
            reads=current.reads - earlier.reads,
            deletes=current.deletes - earlier.deletes,
            bytes_written=current.bytes_written - earlier.bytes_written,
            bytes_read=current.bytes_read - earlier.bytes_read,
            bytes_deleted=current.bytes_deleted - earlier.bytes_deleted,
            simulated_write_s=current.simulated_write_s
            - earlier.simulated_write_s,
            simulated_read_s=current.simulated_read_s - earlier.simulated_read_s,
            chunks_total=current.chunks_total - earlier.chunks_total,
            chunks_deduped=current.chunks_deduped - earlier.chunks_deduped,
            chunk_bytes_deduped=current.chunk_bytes_deduped
            - earlier.chunk_bytes_deduped,
            retries=current.retries - earlier.retries,
            simulated_retry_s=current.simulated_retry_s
            - earlier.simulated_retry_s,
            hedged_reads=current.hedged_reads - earlier.hedged_reads,
            read_failovers=current.read_failovers - earlier.read_failovers,
            bytes_by_category={k: v for k, v in categories.items() if v},
            origin=current.origin,
        )
