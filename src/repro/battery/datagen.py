"""Per-cell training-data generation.

Assembles the full pipeline from the paper's §4.1: a drive cycle excites
the second-order ECM of an aged, per-cell-perturbed 18650 cell; the
resulting (current, temperature, charge, SoC) → voltage samples are
corrupted with measurement noise.  Everything is keyed by explicit seeds,
so a dataset reference (cell id, update cycle, seed, sample count) fully
determines the generated samples — the property the dataset registry and
the Provenance approach build on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.battery.aging import AgingSchedule
from repro.battery.drive_cycles import generate_drive_cycle
from repro.battery.ecm import CellParameters, SecondOrderECM
from repro.battery.noise import DEFAULT_NOISE_SIGMA, add_measurement_noise

#: Feature channel order used by all battery datasets.
FEATURE_NAMES = ("current_a", "temperature_c", "charge_ah", "soc")


@dataclass(frozen=True)
class CellDataConfig:
    """Configuration of the data generator for one model set.

    Attributes
    ----------
    seed:
        Master seed for cell perturbation, cycles, and noise.
    samples_per_cell:
        Training samples generated per cell and update cycle.
    cycle_duration_s:
        Length of each generated drive cycle (1 Hz samples).
    mean_soh_decrement:
        Passed through to the :class:`AgingSchedule`.
    """

    seed: int = 0
    samples_per_cell: int = 1200
    cycle_duration_s: int = 1200
    mean_soh_decrement: float = 0.01

    def aging_schedule(self, num_cells: int) -> AgingSchedule:
        return AgingSchedule(
            num_cells=num_cells,
            seed=self.seed,
            mean_decrement=self.mean_soh_decrement,
        )


def _cell_parameters(cell_index: int, seed: int) -> CellParameters:
    """Per-cell perturbed parameters (manufacturing spread)."""
    rng = np.random.default_rng(np.random.SeedSequence([seed, cell_index, 0xCE11]))
    return CellParameters().perturbed(rng)


def generate_cell_samples(
    cell_index: int,
    update_cycle: int,
    config: CellDataConfig,
    aging: AgingSchedule,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate one cell's training data for one update cycle.

    Returns ``(features, targets)`` where ``features`` has shape
    ``(samples, 4)`` ordered as :data:`FEATURE_NAMES` and ``targets`` has
    shape ``(samples, 1)`` holding the noisy terminal voltage.

    The function is a pure function of its arguments: identical inputs
    produce bit-identical arrays, which is what makes dataset *references*
    a sufficient provenance record.
    """
    if config.samples_per_cell <= 0:
        raise ValueError("samples_per_cell must be positive")
    soh = aging.soh_at(cell_index, update_cycle)
    params = _cell_parameters(cell_index, config.seed)
    ecm = SecondOrderECM(parameters=params, soh=soh)

    cycle = generate_drive_cycle(
        cycle_id=cell_index * 10_000 + update_cycle,
        seed=config.seed,
        duration_s=max(config.cycle_duration_s, config.samples_per_cell),
    )
    result = ecm.simulate(cycle.current_a)

    keep = config.samples_per_cell
    features = np.stack(
        [
            result.current_a[:keep],
            result.temperature_c[:keep],
            result.charge_ah[:keep],
            result.soc[:keep],
        ],
        axis=1,
    )
    targets = result.voltage[:keep, None]

    noise_rng = np.random.default_rng(
        np.random.SeedSequence([config.seed, cell_index, update_cycle, 0x7015E])
    )
    feature_sigma = [
        DEFAULT_NOISE_SIGMA["current_a"],
        DEFAULT_NOISE_SIGMA["temperature_c"],
        DEFAULT_NOISE_SIGMA["charge_ah"],
        0.002,
    ]
    features = add_measurement_noise(features, noise_rng, sigma=feature_sigma)
    targets = add_measurement_noise(
        targets, noise_rng, sigma=[DEFAULT_NOISE_SIGMA["voltage"]]
    )
    return features.astype(np.float32), targets.astype(np.float32)
