"""Unit tests of the quorum replication layer.

Covers the write/read quorum math, circuit-breaker health tracking,
failover and hedged reads, repair queues, the document majority vote,
and the divergence diff that feeds the scrubber.
"""

import pytest

from repro.errors import (
    ArtifactCorruptionError,
    ArtifactNotFoundError,
    DocumentNotFoundError,
    DuplicateArtifactError,
    QuorumError,
)
from repro.storage.document_store import DocumentStore
from repro.storage.faults import FaultInjector, FaultyDocumentStore, FaultyFileStore
from repro.storage.file_store import FileStore
from repro.storage.hardware import LOCAL_PROFILE, SERVER_PROFILE
from repro.storage.hashing import hash_bytes
from repro.storage.replication import (
    ReplicatedDocumentStore,
    ReplicatedFileStore,
    ReplicationPolicy,
    default_quorums,
    replica_divergence,
)


def make_file_rep(n=3, profile=LOCAL_PROFILE, injectors=None, **kwargs):
    """N-way replicated in-memory file store, optionally fault-wrapped."""
    stores = []
    for index in range(n):
        store = FileStore(profile=profile)
        if injectors and index in injectors:
            store = FaultyFileStore(store, injectors[index])
        stores.append(store)
    return ReplicatedFileStore(stores, **kwargs)


def make_doc_rep(n=3, profile=LOCAL_PROFILE, injectors=None, **kwargs):
    """N-way replicated document store, optionally fault-wrapped."""
    stores = []
    for index in range(n):
        store = DocumentStore(profile=profile)
        if injectors and index in injectors:
            store = FaultyDocumentStore(store, injectors[index])
        stores.append(store)
    return ReplicatedDocumentStore(stores, **kwargs)


def take_down(rep, index, seed=9):
    """Trip an immediate outage on one replica of a document set."""
    down = FaultInjector(seed=seed, down_at=0, down_mode="before")
    rep.replicas[index].store = FaultyDocumentStore(
        rep.replicas[index].store, down
    )
    try:
        rep.replicas[index].store.insert("trip", {"v": 0})
    except Exception:
        pass
    return down


class TestQuorumMath:
    def test_default_quorums_overlap(self):
        for n in range(1, 8):
            w, r = default_quorums(n)
            assert w + r == n + 1  # read/write quorums always intersect
            assert 1 <= w <= n and 1 <= r <= n

    def test_invalid_quorums_rejected(self):
        with pytest.raises(ValueError):
            make_file_rep(3, write_quorum=4)
        with pytest.raises(ValueError):
            make_file_rep(3, read_quorum=0)
        with pytest.raises(ValueError):
            ReplicatedFileStore([])


class TestQuorumWrites:
    def test_put_fans_to_every_replica(self):
        rep = make_file_rep(3)
        artifact = rep.put(b"payload", artifact_id="a1")
        for state in rep.replicas:
            assert state.store.exists(artifact)
            assert state.store.get(artifact) == b"payload"
        assert rep.stats.writes == 1  # one logical write at the layer

    def test_write_charge_is_quorum_completion(self):
        rep = make_file_rep(3, profile=SERVER_PROFILE)
        rep.replicas[0].latency_factor = 1.0
        rep.replicas[1].latency_factor = 3.0
        rep.replicas[2].latency_factor = 10.0
        data = b"x" * 4096
        rep.put(data, artifact_id="a1")
        # W=2: completion is the 2nd-fastest ack, not the slowest.
        expected = rep.replicas[0].store._write_cost(len(data), 1) * 3.0
        assert rep.stats.simulated_write_s == pytest.approx(expected)

    def test_write_succeeds_with_one_replica_down(self):
        down = FaultInjector(seed=1, down_at=0, down_mode="before")
        rep = make_file_rep(3, injectors={1: down})
        artifact = rep.put(b"data", artifact_id="a1")
        assert rep.exists(artifact)
        assert rep.pending_repairs() == {"replica-1": {"a1": "put"}}

    def test_write_fails_below_quorum(self):
        injectors = {
            1: FaultInjector(seed=1, down_at=0, down_mode="before"),
            2: FaultInjector(seed=2, down_at=0, down_mode="before"),
        }
        rep = make_file_rep(3, injectors=injectors)
        with pytest.raises(QuorumError):
            rep.put(b"data", artifact_id="a1")

    def test_repair_pending_heals_revived_replica(self):
        down = FaultInjector(seed=1, down_at=0, down_mode="before")
        rep = make_file_rep(3, injectors={1: down})
        rep.put(b"data", artifact_id="a1")
        down.revive()
        report = rep.repair_pending()
        assert ("replica-1", "a1") in report["repaired"]
        assert rep.pending_repairs() == {}
        assert rep.replicas[1].store.get("a1") == b"data"

    def test_repair_still_down_is_deferred(self):
        down = FaultInjector(seed=1, down_at=0, down_mode="before")
        rep = make_file_rep(3, injectors={1: down})
        rep.put(b"data", artifact_id="a1")
        report = rep.repair_pending()
        assert ("replica-1", "a1") in report["deferred"]
        assert rep.pending_repairs() == {"replica-1": {"a1": "put"}}

    def test_duplicate_raised_only_when_committed(self):
        rep = make_file_rep(3)
        rep.put(b"data", artifact_id="a1")
        with pytest.raises(DuplicateArtifactError):
            rep.put(b"data", artifact_id="a1")

    def test_stale_divergent_copy_is_overwritten(self):
        rep = make_file_rep(3)
        # A minority leftover from a failed earlier write, different bytes.
        rep.replicas[0].store.put(b"stale", artifact_id="a1")
        rep.put(b"fresh", artifact_id="a1")
        for state in rep.replicas:
            assert state.store.get("a1") == b"fresh"

    def test_delete_queues_repair_for_down_replica(self):
        down = FaultInjector(seed=1, down_at=1, down_mode="before")
        rep = make_file_rep(3, injectors={1: down})
        rep.put(b"data", artifact_id="a1")
        rep.delete("a1")
        assert rep.pending_repairs() == {"replica-1": {"a1": "delete"}}
        down.revive()
        rep.repair_pending()
        assert not rep.replicas[1].store.exists("a1")

    def test_delete_requires_write_quorum(self):
        # Both down at their second mutating op: the delete after the put.
        injectors = {
            1: FaultInjector(seed=1, down_at=1, down_mode="before"),
            2: FaultInjector(seed=2, down_at=1, down_mode="before"),
        }
        rep = make_file_rep(3, injectors=injectors)
        rep.put(b"data", artifact_id="a1")
        with pytest.raises(QuorumError):
            rep.delete("a1")
        # A minority delete must not report success: when the outage
        # ends, the majority still serves the artifact.
        for injector in injectors.values():
            injector.revive()
        assert rep.exists("a1")
        assert rep.get("a1") == b"data"


class TestCircuitBreaker:
    def make_down_rep(self):
        down = FaultInjector(seed=1, down_at=0, down_mode="before")
        policy = ReplicationPolicy(failure_threshold=3, probe_interval_ops=4)
        rep = make_file_rep(3, injectors={1: down}, policy=policy)
        return rep, down

    def test_breaker_opens_after_consecutive_failures(self):
        rep, _down = self.make_down_rep()
        for index in range(3):
            rep.put(b"d" * (index + 1), artifact_id=f"a{index}")
        state = rep.replicas[1]
        assert state.breaker_open and state.breaker_trips == 1

    def test_open_breaker_skips_replica_without_contact(self):
        rep, down = self.make_down_rep()
        for index in range(3):
            rep.put(b"d", artifact_id=f"a{index}")
        ops_before = down.ops
        rep.put(b"d", artifact_id="skipped")
        # The downed replica was not even contacted (no op consumed).
        assert down.ops == ops_before
        assert "skipped" in rep.pending_repairs()["replica-1"]

    def test_half_open_probe_closes_breaker_on_recovery(self):
        rep, down = self.make_down_rep()
        for index in range(3):
            rep.put(b"d", artifact_id=f"a{index}")
        down.revive()
        # probe_interval_ops=4: three skips, then the probe succeeds.
        for index in range(4):
            rep.put(b"d", artifact_id=f"b{index}")
        assert not rep.replicas[1].breaker_open
        assert rep.replicas[1].store.exists("b3")


class TestFailoverReads:
    def test_read_fails_over_when_copy_missing(self):
        rep = make_file_rep(3)
        rep.put(b"data", artifact_id="a1")
        rep.replicas[0].store.delete("a1")
        assert rep.get("a1") == b"data"
        assert rep.stats.read_failovers == 1
        assert rep.pending_repairs() == {"replica-0": {"a1": "put"}}

    def test_read_fails_over_on_corrupt_copy(self):
        rep = make_file_rep(3)
        rep.put(b"data", artifact_id="a1")
        # Rot the preferred replica's bytes behind its recorded digest.
        rep.replicas[0].store._blobs["a1"] = b"rotten-bytes"
        assert rep.get("a1") == b"data"
        assert rep.stats.read_failovers == 1
        assert "a1" in rep.pending_repairs()["replica-0"]

    def test_read_raises_corruption_when_every_copy_rotten(self):
        rep = make_file_rep(3)
        rep.put(b"data", artifact_id="a1")
        for state in rep.replicas:
            state.store._blobs["a1"] = b"rotten"
        with pytest.raises(ArtifactCorruptionError):
            rep.get("a1")

    def test_missing_everywhere_raises_not_found(self):
        rep = make_file_rep(3)
        with pytest.raises(ArtifactNotFoundError):
            rep.get("nope")

    def test_get_ranges_verifies_serving_replica(self):
        rep = make_file_rep(3)
        rep.put(bytes(range(200)), artifact_id="a1")
        rep.replicas[0].store._blobs["a1"] = bytes(200)  # silent rot
        [chunk] = rep.get_ranges("a1", [(10, 5)])
        assert chunk == bytes(range(10, 15))
        assert rep.stats.read_failovers == 1


class TestHedgedReads:
    def make_hedged_rep(self, hedge_threshold_s):
        policy = ReplicationPolicy(
            hedge_threshold_s=hedge_threshold_s, hedge_delay_s=0.0001
        )
        rep = make_file_rep(3, profile=SERVER_PROFILE, policy=policy)
        # The router prefers replica 0 on believed (profile) cost, but it
        # is secretly degraded — exactly the regime hedging targets.
        rep.replicas[0].latency_factor = 50.0
        return rep

    def test_hedge_wins_against_degraded_primary(self):
        rep = self.make_hedged_rep(hedge_threshold_s=0.0)
        data = b"x" * (1 << 16)
        rep.put(data, artifact_id="a1")
        writes = rep.stats.snapshot()
        assert rep.get("a1") == data
        assert rep.stats.hedged_reads == 1
        read_s = rep.stats.simulated_read_s
        base = rep.replicas[0].store._read_cost(len(data), 1)
        assert read_s == pytest.approx(0.0001 + base)  # winner, not 50x
        assert rep.stats.reads == writes.reads + 1

    def test_hedging_disabled_by_default(self):
        rep = make_file_rep(3, profile=SERVER_PROFILE)
        rep.replicas[0].latency_factor = 50.0
        data = b"x" * (1 << 16)
        rep.put(data, artifact_id="a1")
        rep.get("a1")
        assert rep.stats.hedged_reads == 0

    def test_no_hedge_under_threshold(self):
        rep = self.make_hedged_rep(hedge_threshold_s=1e9)
        rep.put(b"x" * 1024, artifact_id="a1")
        rep.get("a1")
        assert rep.stats.hedged_reads == 0


class TestReplicatedWriter:
    def test_streamed_write_replicates(self):
        rep = make_file_rep(3)
        with rep.open_writer("a1") as writer:
            writer.write(b"part-one-")
            writer.write(b"part-two")
        for state in rep.replicas:
            assert state.store.get("a1") == b"part-one-part-two"
        assert rep.stats.writes == 1

    def test_writer_survives_mid_stream_replica_loss(self):
        down = FaultInjector(seed=1, down_at=0, down_mode="before")
        rep = make_file_rep(3, injectors={1: down})
        writer = rep.open_writer("a1")
        writer.write(b"one")
        # Replica-1 goes down between chunks; its writer dies mid-stream.
        with pytest.raises(Exception):
            rep.replicas[1].store.delete("whatever")
        assert down.down
        writer.write(b"two")
        artifact = writer.close()
        assert rep.get(artifact) == b"onetwo"
        assert "a1" in rep.pending_repairs()["replica-1"]

    def test_writer_derived_id_consistent_across_replicas(self):
        rep = make_file_rep(3)
        with rep.open_writer(None) as writer:
            writer.write(b"content")
        digest = hash_bytes(b"content")
        for state in rep.replicas:
            assert state.store.exists("sha256-" + digest)

    def test_abort_leaves_no_copies(self):
        rep = make_file_rep(3)
        writer = rep.open_writer("a1")
        writer.write(b"partial")
        writer.abort()
        for state in rep.replicas:
            assert not state.store.exists("a1")


class TestDocumentMajority:
    def test_insert_pre_draws_one_id_for_all_replicas(self):
        rep = make_doc_rep(3)
        doc_id = rep.insert("c", {"v": 1})
        for state in rep.replicas:
            assert state.store.get("c", doc_id) == {"v": 1}

    def test_stale_minority_value_is_outvoted(self):
        rep = make_doc_rep(3)
        doc_id = rep.insert("c", {"v": 1})
        rep.replicas[0].store._write_raw("c", doc_id, {"v": 999})
        assert rep.get("c", doc_id) == {"v": 1}

    def test_uncommitted_minority_write_is_invisible(self):
        rep = make_doc_rep(3)
        rep.replicas[2].store._write_raw("c", "ghost", {"v": 1})
        assert not rep.exists("c", "ghost")
        assert rep.collection_ids("c") == []
        with pytest.raises(DocumentNotFoundError):
            rep.get("c", "ghost")

    def test_replace_heals_replica_that_missed_insert(self):
        rep = make_doc_rep(3)
        doc_id = rep.insert("c", {"v": 1})
        rep.replicas[1].store._delete_raw("c", doc_id)
        rep.replace("c", doc_id, {"v": 2})
        for state in rep.replicas:
            assert state.store.get("c", doc_id) == {"v": 2}

    def test_read_quorum_enforced(self):
        rep = make_doc_rep(3, read_quorum=3)
        doc_id = rep.insert("c", {"v": 1})
        # Make one replica unreachable to the majority read.
        take_down(rep, 0)
        with pytest.raises(QuorumError):
            rep.get("c", doc_id)

    def test_collection_reads_enforce_read_quorum(self):
        rep = make_doc_rep(3, read_quorum=3)
        rep.insert("c", {"v": 1})
        take_down(rep, 0)
        # find()/collection_ids()/count() must refuse below R like get(),
        # not silently serve a single replica's possibly stale state.
        with pytest.raises(QuorumError):
            rep.find("c", v=1)
        with pytest.raises(QuorumError):
            rep.collection_ids("c")
        with pytest.raises(QuorumError):
            rep.count("c")

    def test_insert_queues_repair_for_down_replica(self):
        down = FaultInjector(seed=1, down_at=0, down_mode="before")
        rep = make_doc_rep(3, injectors={2: down})
        doc_id = rep.insert("c", {"v": 1})
        assert rep.pending_repairs() == {"replica-2": {f"c/{doc_id}": "put"}}
        down.revive()
        report = rep.repair_pending()
        assert ("replica-2", f"c/{doc_id}") in report["repaired"]
        assert rep.pending_repairs() == {}
        assert rep.replicas[2].store.get("c", doc_id) == {"v": 1}

    def test_doc_repair_still_down_is_deferred(self):
        down = FaultInjector(seed=1, down_at=0, down_mode="before")
        rep = make_doc_rep(3, injectors={2: down})
        doc_id = rep.insert("c", {"v": 1})
        report = rep.repair_pending()
        assert ("replica-2", f"c/{doc_id}") in report["deferred"]
        assert rep.pending_repairs() == {"replica-2": {f"c/{doc_id}": "put"}}

    def test_committed_doc_readable_while_one_holder_down(self):
        # Insert commits at W=2 on replicas 0 and 1 (replica 2 down)…
        down = FaultInjector(seed=1, down_at=0, down_mode="before")
        rep = make_doc_rep(3, injectors={2: down})
        doc_id = rep.insert("c", {"v": 1})
        down.revive()
        # …then replica 1 — an acker — goes down.  R=2 replicas are
        # reachable and W + R > N, so the committed document must be
        # served despite the 1-1 presence/absence tie among them.
        take_down(rep, 1)
        assert rep.get("c", doc_id) == {"v": 1}
        assert rep.exists("c", doc_id)
        assert doc_id in rep.collection_ids("c")

    def test_tie_breaks_toward_absence_only_on_majority_of_n(self):
        rep = make_doc_rep(3)
        # 1-1 tie with one replica silent: presence wins — absence is
        # not a majority of N, so a write quorum may have committed it.
        assert rep._vote([(0, {"v": 1}), (2, None)]) == {"v": 1}
        # Absence held by a majority of N proves no W=2 commit happened.
        assert rep._vote([(0, {"v": 1}), (1, None), (2, None)]) is None

    def test_id_counter_resumes_past_all_replicas(self):
        stores = [DocumentStore(profile=LOCAL_PROFILE) for _ in range(3)]
        stores[1]._write_raw("c", "doc-00000041", {"v": 1})
        rep = ReplicatedDocumentStore(stores)
        assert rep.insert("c", {"v": 2}) == "doc-00000042"


class TestDivergenceDiff:
    def test_clean_replicas_report_nothing(self):
        file_rep, doc_rep = make_file_rep(3), make_doc_rep(3)
        file_rep.put(b"data", artifact_id="a1")
        doc_rep.insert("c", {"v": 1})
        assert replica_divergence(file_rep, doc_rep, deep=True) == []

    def test_divergence_names_the_straggler(self):
        file_rep, doc_rep = make_file_rep(3), make_doc_rep(3)
        file_rep.put(b"data", artifact_id="a1")
        doc_id = doc_rep.insert("c", {"v": 1})
        file_rep.replicas[2].store.delete("a1")
        file_rep.replicas[2].store.put(b"junk", artifact_id="orphan")
        doc_rep.replicas[2].store._write_raw("c", doc_id, {"v": 9})
        [entry] = replica_divergence(file_rep, doc_rep)
        assert entry["replica"] == "replica-2"
        assert entry["missing_artifacts"] == ["a1"]
        assert entry["extra_artifacts"] == ["orphan"]
        assert entry["divergent_documents"] == 1

    def test_deep_diff_catches_torn_bytes_behind_honest_digest(self):
        file_rep = make_file_rep(3)
        file_rep.put(b"data", artifact_id="a1")
        store = file_rep.replicas[1].store
        store._blobs["a1"] = b"da"  # torn: digest record still intact
        assert replica_divergence(file_rep, None) == []
        [entry] = replica_divergence(file_rep, None, deep=True)
        assert entry["divergent_artifacts"] == ["a1"]
