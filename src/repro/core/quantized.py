"""A lossy float16 storage tier (ModelHub's design point, §2.2).

ModelHub's PAS optimizes "the storage footprint ... with a minimal loss
of accuracy" — an explicitly *lossy* design point none of the paper's
approaches occupy.  This approach fills that corner of the design space
for comparison: Baseline's set-oriented layout with parameters stored as
IEEE-754 half precision.

* storage: exactly half of Baseline's parameter payload,
* recovery: float16 values widened back to float32 — **not** bit-exact;
  the relative error is bounded by half-precision's ~1e-3 epsilon, and
  ablation A8 measures the end-to-end effect on model quality,
* derived saves are full snapshots, like Baseline.

Registered under the approach name ``"baseline-fp16"``.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.architectures.registry import get_architecture
from repro.core.approach import SETS_COLLECTION, SaveApproach
from repro.core.model_set import ModelSet
from repro.core.save_info import SetMetadata, UpdateInfo
from repro.errors import RecoveryError
from repro.nn.serialization import StateSchema

_ITEM_BYTES = 2  # float16


class QuantizedBaselineApproach(SaveApproach):
    """Set-oriented full snapshots at half precision (lossy)."""

    name = "baseline-fp16"

    # -- save --------------------------------------------------------------
    def _save(
        self,
        model_set: ModelSet,
        metadata: SetMetadata | None,
        base_set_id: str | None,
    ) -> str:
        metadata = metadata if metadata is not None else SetMetadata()
        set_id = self.context.next_set_id(self.name)
        if self.context.dedup:
            # Chunks are the half-precision layer tensors, keyed by the
            # SHA-256 of their fp16 bytes (fp32 and fp16 encodings of the
            # same layer never collide — different bytes, different key).
            from repro.core.baseline import write_chunked_set

            extra = {"base_set": base_set_id} if base_set_id is not None else None
            write_chunked_set(
                self.context,
                model_set.states,
                model_set.architecture,
                len(model_set),
                set_id,
                doc_type=self.name,
                metadata=metadata,
                extra_fields=extra,
                dtype="float16",
            )
            return set_id
        payload = b"".join(
            np.asarray(arr, dtype=np.float32).astype(np.float16).tobytes()
            for state in model_set.states
            for arr in state.values()
        )
        params_artifact = self.context.file_store.put(
            payload, artifact_id=f"{set_id}-params-fp16", category="parameters"
        )
        spec = get_architecture(model_set.architecture)
        document = {
            "type": self.name,
            "architecture": model_set.architecture,
            "architecture_code": spec.source_code,
            "num_models": len(model_set),
            "schema": model_set.schema.to_json(),
            "param_dtype": "float16",
            "params_artifact": params_artifact,
            "metadata": metadata.to_json(),
        }
        if base_set_id is not None:
            document["base_set"] = base_set_id
        self.context.document_store.insert(SETS_COLLECTION, document, doc_id=set_id)
        return set_id

    def save_initial(
        self, model_set: ModelSet, metadata: SetMetadata | None = None
    ) -> str:
        return self._save(model_set, metadata, base_set_id=None)

    def save_derived(
        self,
        model_set: ModelSet,
        base_set_id: str,
        update_info: UpdateInfo | None = None,
        metadata: SetMetadata | None = None,
    ) -> str:
        return self._save(model_set, metadata, base_set_id=base_set_id)

    # -- recover -------------------------------------------------------------
    def _decode_model(
        self, payload: bytes, schema: StateSchema, model_index: int
    ) -> "OrderedDict[str, np.ndarray]":
        offset = model_index * schema.num_parameters * _ITEM_BYTES
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, shape in schema.entries:
            size = int(np.prod(shape)) if shape else 1
            values = np.frombuffer(
                payload, dtype=np.float16, count=size, offset=offset
            )
            state[name] = values.astype(np.float32).reshape(shape)
            offset += size * _ITEM_BYTES
        return state

    def recover(self, set_id: str) -> ModelSet:
        document = self.context.set_document(set_id)
        self._require_type(document, self.name, set_id)
        if document.get("storage") == "chunked":
            from repro.core.baseline import read_chunked_set

            return read_chunked_set(self.context, document, set_id)
        schema = StateSchema.from_json(document["schema"])
        num_models = int(document["num_models"])
        payload = self.context.file_store.get(document["params_artifact"])
        expected = num_models * schema.num_parameters * _ITEM_BYTES
        if len(payload) != expected:
            raise RecoveryError(
                f"set {set_id!r}: fp16 artifact has {len(payload)} bytes, "
                f"expected {expected}"
            )
        states = [
            self._decode_model(payload, schema, index)
            for index in range(num_models)
        ]
        return ModelSet(str(document["architecture"]), states)

    def recover_model(self, set_id: str, model_index: int):
        document = self.context.set_document(set_id)
        self._require_type(document, self.name, set_id)
        if document.get("storage") == "chunked":
            from repro.core.baseline import read_chunked_model

            return read_chunked_model(
                self.context, document, set_id, model_index
            )
        num_models = int(document["num_models"])
        if not 0 <= model_index < num_models:
            raise IndexError(
                f"model index {model_index} out of range for set {set_id!r}"
            )
        schema = StateSchema.from_json(document["schema"])
        model_bytes = schema.num_parameters * _ITEM_BYTES
        payload = self.context.file_store.get_range(
            document["params_artifact"],
            offset=model_index * model_bytes,
            length=model_bytes,
        )
        return self._decode_model(payload, schema, 0)
