"""``repro-archive`` — operate a durable model archive from the shell.

Subcommands cover the operator loop demonstrated in
``examples/archive_operations.py``:

.. code-block:: text

    repro-archive <dir> info                 # sets, sizes, lineage summary
    repro-archive <dir> lineage              # the derivation chains
    repro-archive <dir> verify [--deep]      # integrity audit
    repro-archive <dir> fsck [--deep]        # consistency audit + bitrot scan
    repro-archive <dir> scrub [--shallow]    # converge replicas (anti-entropy)
    repro-archive <dir> history SET_ID IDX   # one model's drift
    repro-archive <dir> compact SET_ID       # delta -> full snapshot
    repro-archive <dir> gc --keep-last K     # retention policy
    repro-archive <dir> maintain --cycles N  # background-maintenance passes
    repro-archive <dir> migrate TARGET_DIR --approach update
    repro-archive <dir> stats --live         # metrics registry export
    repro-archive <dir> warm SET_ID [...]    # pre-materialize into the cache
    repro-archive <dir> evict [--chunks]     # drop serving-cache entries
    repro-archive <dir> trace --workers 4    # traced demo update cycle

The archive's approach is auto-detected from the stored set descriptors;
mixed-approach archives are supported for read-only commands.  A
replicated layout (``replica-<i>/`` subtrees) is likewise auto-detected;
``--replicas``/``--write-quorum``/``--read-quorum`` create or override
the topology.  ``fsck`` and ``scrub`` exit 0 when clean, 1 when issues
were found that are repairable (or were repaired), and 2 on
unrecoverable data loss.

A sharded fleet layout (``shard-<i>/`` subtrees, written by
:class:`~repro.fleet.FleetManager`) is auto-detected the same way — or
created with ``--shards N``.  Every verb then iterates the shards:
``info``/``fsck``/``scrub``/``verify``/``lineage``/``stats`` aggregate
per-shard output (exit code = worst shard, keeping the 0/1/2 contract),
``gc --keep-last`` applies the retention policy fleet-wide,
``maintain`` runs scheduler passes (one atomic journal txn per shard,
exit code = worst shard), and set-addressed verbs (``history``,
``compact``, ``export``) route to the shard owning the set.

Every global flag maps 1:1 onto an :class:`~repro.config.ArchiveConfig`
field (see :func:`config_from_args`); ``--trace``/``--trace-json`` turn
on span recording for whichever command runs, and ``trace`` runs a
synthetic U3 update cycle on an in-memory archive and prints the span
tree with its per-phase simulated-time breakdown.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import ArchiveConfig, ObservabilityConfig, ServingConfig
from repro.core.approach import SETS_COLLECTION, SaveContext
from repro.core.lineage import LineageGraph, model_history
from repro.core.manager import APPROACHES, MultiModelManager
from repro.core.migration import migrate_archive
from repro.core.retention import RetentionManager
from repro.core.verify import ArchiveVerifier
from repro.errors import ReproError
from repro.storage.hardware import (
    ARCHIVE_PROFILE,
    LOCAL_PROFILE,
    M1_PROFILE,
    SERVER_PROFILE,
)
from repro.storage.persistent import open_context

#: ``--profile`` choices → the latency model charged per store operation.
PROFILES = {
    "local": LOCAL_PROFILE,
    "server": SERVER_PROFILE,
    "m1": M1_PROFILE,
    "archive": ARCHIVE_PROFILE,
}


def config_from_args(args: argparse.Namespace) -> ArchiveConfig:
    """The :class:`ArchiveConfig` described by the global CLI flags.

    Each flag maps onto exactly one config field: ``--profile`` →
    ``profile``, ``--workers`` → ``workers``, ``--dedup`` → ``dedup``,
    ``--no-journal`` → ``journal=False``, ``--retries`` → ``retry``,
    ``--replicas``/``--write-quorum``/``--read-quorum`` → the replication
    topology, ``--serve-cache``/``--set-cache-bytes``/
    ``--chunk-cache-bytes`` → ``serving`` (the ``warm`` and ``evict``
    verbs imply ``--serve-cache``), and ``--trace``/``--trace-json`` →
    ``observability``.
    """
    retry = None
    if getattr(args, "retries", None):
        from repro.storage.faults import RetryPolicy

        retry = RetryPolicy(attempts=args.retries)
    trace_path = getattr(args, "trace_json", None)
    # warm/evict operate on the serving cache, so they imply it.
    serve = bool(
        getattr(args, "serve_cache", False)
        or getattr(args, "command", None) in ("warm", "evict")
    )
    serving = ServingConfig(
        enabled=serve,
        set_cache_bytes=getattr(args, "set_cache_bytes", None)
        or ServingConfig.set_cache_bytes,
        chunk_cache_bytes=getattr(args, "chunk_cache_bytes", None)
        or ServingConfig.chunk_cache_bytes,
    )
    return ArchiveConfig(
        profile=PROFILES[getattr(args, "profile_name", None) or "local"],
        workers=args.workers,
        dedup=getattr(args, "dedup", False),
        journal=not getattr(args, "no_journal", False),
        retry=retry,
        shards=getattr(args, "shards", None),
        replicas=args.replicas,
        write_quorum=args.write_quorum,
        read_quorum=args.read_quorum,
        serving=serving,
        observability=ObservabilityConfig(
            tracing=bool(getattr(args, "trace", False) or trace_path),
            metrics=bool(getattr(args, "live", False)),
            trace_path=trace_path,
        ),
    )


def _detect_approach(context: SaveContext) -> str | None:
    """The single approach used by the archive, or None if empty/mixed."""
    types = {
        str(doc.get("type"))
        for doc in context.document_store._collections.get(
            SETS_COLLECTION, {}
        ).values()
    }
    return types.pop() if len(types) == 1 else None


def _manager_for(context: SaveContext, approach: str | None) -> MultiModelManager:
    detected = _detect_approach(context)
    name = approach or detected
    if name is None:
        raise ReproError(
            "archive is empty or mixes approaches; pass --approach explicitly"
        )
    if name not in APPROACHES:
        raise ReproError(f"unknown approach {name!r}; known: {sorted(APPROACHES)}")
    return MultiModelManager.with_approach(name, context=context)


# -- subcommands ----------------------------------------------------------------

def _cmd_info(context: SaveContext, args: argparse.Namespace) -> int:
    from repro.storage.chunk_index import PACKS_COLLECTION

    lineage = LineageGraph.from_context(context)
    set_ids = context.document_store.collection_ids(SETS_COLLECTION)
    print(f"sets: {len(set_ids)}")
    print(f"stored bytes: {context.total_bytes():,}")
    print(f"approach: {_detect_approach(context) or 'mixed/empty'}")
    from repro.storage.replication import replicated_stores

    file_rep, _doc_rep = replicated_stores(context)
    if file_rep is not None:
        open_breakers = sum(
            1 for entry in file_rep.health() if entry["breaker_open"]
        )
        print(
            f"replication: {len(file_rep.replicas)} replicas, "
            f"W={file_rep.write_quorum} R={file_rep.read_quorum}, "
            f"{open_breakers} breaker(s) open"
        )
    if set_ids:
        print(f"roots: {', '.join(lineage.roots())}")
        print(f"leaves: {', '.join(lineage.leaves())}")
    if context.document_store._collections.get(PACKS_COLLECTION):
        chunks = context.chunk_store()
        print(
            f"chunks: {len(chunks)} unique, {chunks.total_references():,} "
            f"references (dedup ratio {chunks.dedup_ratio():.1%})"
        )
        print(
            f"chunk bytes: {chunks.live_bytes():,} live, "
            f"{chunks.dead_bytes():,} reclaimable"
        )
    return 0


def _cmd_lineage(context: SaveContext, args: argparse.Namespace) -> int:
    lineage = LineageGraph.from_context(context)
    for set_id in context.document_store.collection_ids(SETS_COLLECTION):
        info = lineage.node_info(set_id)
        base = lineage.base_of(set_id)
        chain = lineage.chain_depth(set_id)
        parent = f" <- {base}" if base else ""
        print(
            f"{set_id}  [{info.get('approach')}/{info.get('kind')}] "
            f"models={info.get('num_models')} chain_depth={chain}{parent}"
        )
    return 0


def _cmd_verify(context: SaveContext, args: argparse.Namespace) -> int:
    report = ArchiveVerifier(context).verify_all(deep=args.deep)
    print(f"checked {report.sets_checked} sets")
    if report.ok:
        print("archive is clean")
        return 0
    for issue in report.issues:
        print(f"ISSUE {issue}")
    return 1


def _cmd_fsck(context: SaveContext, args: argparse.Namespace) -> int:
    from repro.core.fsck import ArchiveFsck

    report = ArchiveFsck(context).run(deep=args.deep)
    print(
        f"checked {report.sets_checked} sets, {report.artifacts_checked} "
        f"artifacts, {report.chunks_checked} chunks"
    )
    if report.ok:
        print("archive is consistent")
        return 0
    for txn in report.pending_journal:
        print(f"PENDING-TXN {txn} (reopen the archive to roll it back)")
    for entry in report.missing_artifacts:
        print(f"MISSING {entry['artifact']} (referenced by {entry['set_id']})")
    for artifact in report.orphan_artifacts:
        print(f"ORPHAN {artifact}")
    for entry in report.refcount_mismatches:
        print(
            f"REFCOUNT {entry['digest'][:16]}… expected {entry['expected']}, "
            f"ledger says {entry['actual']}"
        )
    for artifact in report.corrupt_artifacts:
        print(f"CORRUPT {artifact}")
    for digest in report.corrupt_chunks:
        print(f"CORRUPT-CHUNK {digest[:16]}…")
    for digest in report.quarantined_chunks:
        print(f"QUARANTINED {digest[:16]}…")
    for artifact in report.degraded_artifacts:
        print(f"DEGRADED {artifact} (a clean replica copy survives; run scrub)")
    for entry in report.replica_divergence:
        if entry.get("unreachable"):
            print(f"DIVERGENT {entry['replica']}: unreachable")
            continue
        print(
            f"DIVERGENT {entry['replica']}: "
            f"{len(entry['missing_artifacts'])} missing / "
            f"{len(entry['extra_artifacts'])} extra / "
            f"{len(entry['divergent_artifacts'])} divergent artifacts, "
            f"{entry['missing_documents']} missing / "
            f"{entry['extra_documents']} extra / "
            f"{entry['divergent_documents']} divergent documents"
        )
    return report.exit_code


def _cmd_scrub(context: SaveContext, args: argparse.Namespace) -> int:
    from repro.core.fsck import scrub_archive

    report = scrub_archive(context, deep=not args.shallow)
    print(report.summary())
    for replica, artifact in report.artifacts_healed:
        print(f"HEALED {replica}: {artifact}")
    for replica, artifact in report.artifacts_pruned:
        print(f"PRUNED {replica}: {artifact}")
    for artifact in report.packs_reassembled:
        print(f"REASSEMBLED {artifact}")
    for digest in report.chunks_repaired:
        print(f"CHUNK-REPAIRED {digest[:16]}…")
    for replica in report.unreachable_replicas:
        print(f"UNREACHABLE {replica} (repairs deferred to the next scrub)")
    for artifact in report.lost_artifacts:
        print(f"LOST {artifact} (no recoverable copy on any replica)")
    return report.exit_code


def _cmd_history(context: SaveContext, args: argparse.Namespace) -> int:
    manager = _manager_for(context, args.approach)
    lineage = LineageGraph.from_context(context)
    chain = lineage.recovery_chain(args.set_id)
    history = model_history(manager, chain, args.model_index)
    print(f"model {args.model_index} across {len(chain)} generations:")
    for set_id, drift in zip(history.set_ids, history.drift_from_start):
        print(f"  {set_id}  drift={drift:.6f}")
    return 0


def _cmd_compact(context: SaveContext, args: argparse.Namespace) -> int:
    RetentionManager(context).compact(args.set_id)
    print(f"compacted {args.set_id} into a full snapshot")
    return 0


def _cmd_gc(context: SaveContext, args: argparse.Namespace) -> int:
    retention = RetentionManager(context)
    if args.keep_last is not None:
        report = retention.keep_last(args.keep_last)
    else:
        report = retention.collect(keep=args.keep or [])
    print(f"deleted {len(report.deleted_sets)} sets")
    for set_id in report.deleted_sets:
        print(f"  - {set_id}")
    if report.retained_for_chains:
        print(f"retained for recovery chains: {report.retained_for_chains}")
    if report.chunks_reclaimed:
        print(f"swept {report.chunks_reclaimed} zero-reference chunks")
    print(f"reclaimed {report.bytes_reclaimed:,} bytes")
    return 0


def _maintain(contexts: list[SaveContext], args: argparse.Namespace) -> int:
    """Run ``--cycles`` maintenance passes over the given shard contexts.

    Each pass runs every shard's mutating tasks (compaction, GC, chunk
    sweep) as one atomic journal transaction, then drains replica repair
    queues and scrubs.  Exit follows the 0/1/2 contract across all
    cycles: 0 — nothing needed doing, 1 — maintenance did work
    (reclaimed, compacted, healed), 2 — a scrub found unrecoverable
    data.
    """
    from repro.config import MaintenanceConfig
    from repro.maintenance import MaintenanceScheduler

    config = MaintenanceConfig(
        enabled=True,
        gc_keep_last=args.keep_last,
        compact_chain_depth=args.compact_depth,
        scrub=not args.no_scrub,
        scrub_deep=bool(args.deep),
    )
    scheduler = MaintenanceScheduler.for_contexts(contexts, config=config)
    worst = 0
    for cycle in range(args.cycles):
        report = scheduler.run_pass()
        worst = max(worst, report.exit_code)
        for entry in report.shards:
            line = (
                f"pass {cycle} {entry.shard}: "
                f"deleted {entry.sets_deleted} set(s), "
                f"compacted {entry.sets_compacted}, "
                f"reclaimed {entry.bytes_reclaimed:,} bytes"
            )
            if entry.chunks_swept:
                line += f", swept {entry.chunks_swept} chunk(s)"
            if entry.repairs_drained:
                line += f", drained {entry.repairs_drained} repair(s)"
            if entry.scrubbed:
                line += f", scrub exit {entry.scrub_exit}"
            print(line)
            for artifact in entry.lost_artifacts:
                print(f"  LOST: {artifact}")
    return worst


def _cmd_maintain(context: SaveContext, args: argparse.Namespace) -> int:
    return _maintain([context], args)


def _cmd_export(context: SaveContext, args: argparse.Namespace) -> int:
    from repro.core.export import export_models

    manager = _manager_for(context, args.approach)
    indices = args.models if args.models else None
    manifest = export_models(
        manager,
        args.set_id,
        args.output_dir,
        model_indices=indices,
        salvage=args.salvage,
    )
    if args.salvage:
        import json

        bundle = json.loads(manifest.read_text())
        exported = len(bundle["models"])
        skipped = bundle.get("salvage", {}).get("skipped", [])
        print(
            f"exported {exported} models to {args.output_dir} "
            f"(manifest: {manifest})"
        )
        for entry in skipped:
            print(f"SKIPPED model {entry['model']}: {entry['reason']}")
        return 1 if skipped else 0
    count = len(indices) if indices else manager.set_info(args.set_id)["num_models"]
    print(f"exported {count} models to {args.output_dir} (manifest: {manifest})")
    return 0


def _cmd_migrate(context: SaveContext, args: argparse.Namespace) -> int:
    target = MultiModelManager.open(
        args.target_dir, args.target_approach, ArchiveConfig(dedup=args.dedup)
    )
    report = migrate_archive(context, target)
    print(f"migrated {report.sets_migrated} sets to {args.target_dir}")
    print(
        f"storage: {report.source_bytes:,} -> {report.target_bytes:,} bytes "
        f"({report.storage_ratio:.1%})"
    )
    stats = target.context.file_store.stats
    if stats.chunks_total:
        print(
            f"chunks: {stats.chunks_total:,} written, "
            f"{stats.chunks_deduped:,} deduplicated "
            f"({stats.dedup_ratio:.1%})"
        )
    for old, new in report.id_map.items():
        print(f"  {old} -> {new}")
    return 0


def _cmd_warm(context: SaveContext, args: argparse.Namespace) -> int:
    manager = _manager_for(context, args.approach)
    serving = context.serving
    if serving is None:  # pragma: no cover - warm implies --serve-cache
        raise ReproError("serving cache is disabled; pass --serve-cache")
    if args.all:
        set_ids = context.document_store.collection_ids(SETS_COLLECTION)
    else:
        set_ids = args.set_ids
    summary = serving.warm(set_ids, manager.approach)
    print(f"warmed {len(summary['warmed'])} sets into the serving cache")
    for set_id in summary["warmed"]:
        print(f"  - {set_id}")
    print(
        f"tier 1 now holds {summary['set_cache_entries']} entries "
        f"({summary['set_cache_bytes']:,} B), tier 2 "
        f"{summary['chunk_cache_entries']} chunks "
        f"({summary['chunk_cache_bytes']:,} B)"
    )
    return 0


def _cmd_evict(context: SaveContext, args: argparse.Namespace) -> int:
    serving = context.serving
    if serving is None:  # pragma: no cover - evict implies --serve-cache
        raise ReproError("serving cache is disabled; pass --serve-cache")
    summary = serving.evict(
        set_ids=args.set_ids or None, chunks=args.chunks
    )
    print(f"evicted {summary['evicted_sets']} set entries")
    if args.chunks:
        print(f"evicted {summary['evicted_chunks']} cached chunks")
    return 0


def _print_serving_stats(context: SaveContext) -> None:
    serving = context.serving
    if serving is None:
        return
    counters = serving.counters()
    print(
        f"serving cache: {counters['requests']} requests, "
        f"tier-1 {counters['set_hits']} hits / {counters['set_misses']} "
        f"misses ({counters['set_hit_rate']:.1%}), "
        f"tier-2 {counters['chunk_hits']} hits / "
        f"{counters['chunk_misses']} misses "
        f"({counters['chunk_hit_rate']:.1%})"
    )
    print(
        f"  tier 1: {counters['set_cache_entries']} entries, "
        f"{counters['set_cache_bytes']:,} B, "
        f"{counters['set_cache_evictions']} evictions"
    )
    print(
        f"  tier 2: {counters['chunk_cache_entries']} chunks, "
        f"{counters['chunk_cache_bytes']:,} B, "
        f"{counters['chunk_cache_evictions']} evictions"
    )
    print(
        f"  served {counters['logical_bytes_served']:,} logical B, "
        f"saved {counters['bytes_saved']:,} B of store reads, "
        f"{counters['invalidations']} invalidations"
    )


def _cmd_stats(context: SaveContext, args: argparse.Namespace) -> int:
    if args.live:
        import json

        from repro.observability import metrics_json, prometheus_text
        from repro.observability.metrics import global_registry

        registry = context.metrics or global_registry()
        if args.format == "prometheus":
            sys.stdout.write(prometheus_text(registry))
        elif args.format == "json":
            print(json.dumps(metrics_json(registry), indent=2))
        else:
            for name, value in sorted(registry.collect().items()):
                print(f"{name} = {value}")
        return 0
    for label, stats in (
        ("file_store", context.file_store.stats),
        ("document_store", context.document_store.stats),
    ):
        snap = stats.snapshot()
        print(
            f"{label}: {snap.writes} writes ({snap.bytes_written:,} B), "
            f"{snap.reads} reads ({snap.bytes_read:,} B), "
            f"{snap.deletes} deletes ({snap.bytes_deleted:,} B), "
            f"sim {snap.simulated_write_s + snap.simulated_read_s:.6f}s"
        )
        for category, count in sorted(snap.bytes_by_category.items()):
            print(f"  {category}: {count:,} B stored")
    _print_serving_stats(context)
    return 0


def _trace_report(title: str, root, simulated_s: float) -> bool:
    """Print one trace tree + phase breakdown; True when phases sum to TTS."""
    from repro.observability import phase_breakdown, render_tree

    print(f"== {title} ==")
    print(render_tree(root))
    phases = phase_breakdown(root)
    total = sum(phases.values())
    for phase, seconds in phases.items():
        print(f"  phase {phase:<12} {seconds * 1000:10.6f} ms")
    print(f"  phase sum          {total * 1000:10.6f} ms")
    print(f"  simulated total    {simulated_s * 1000:10.6f} ms")
    ok = abs(total - simulated_s) <= 1e-9
    if not ok:
        print(
            f"  MISMATCH: phases sum to {total!r}, "
            f"stats charged {simulated_s!r}"
        )
    return ok


def _cmd_trace(args: argparse.Namespace) -> int:
    """Synthetic U3 update cycle under tracing (ignores the directory).

    Builds a fresh in-memory archive from the global flags (``--profile``
    defaults to ``server`` here so store operations charge nonzero
    simulated latency), saves an initial set, perturbs one model and
    saves the derived set, recovers it — then prints both span trees and
    checks that each trace's per-phase simulated times sum exactly to the
    simulated TTS/TTR the storage stats charged.
    """
    import numpy as np

    from repro.bench.metrics import measure_recover, measure_save
    from repro.core.model_set import ModelSet
    from repro.observability import write_trace_json

    config = config_from_args(args)
    if getattr(args, "profile_name", None) is None:
        config = config.with_(profile=SERVER_PROFILE)
    config = config.with_(
        observability=ObservabilityConfig(
            tracing=True, trace_path=config.observability.trace_path
        )
    )
    if args.replica_down and (config.replicas or 1) < 2:
        print("error: --replica-down needs --replicas >= 2", file=sys.stderr)
        return 2
    manager = MultiModelManager.with_approach("update", config)
    context = manager.context
    if args.replica_down:
        from repro.storage.faults import FaultInjector, inject_replica_faults

        inject_replica_faults(
            context,
            config.replicas - 1,
            FaultInjector(down_at=0, down_mode="before"),
        )
        print(f"replica-{config.replicas - 1} is down for the whole cycle")

    models = ModelSet.build("FFNN-48", num_models=args.models, seed=0)
    base_id = manager.save_set(models)
    derived = models.copy()
    layer_names = models.schema.layer_names()
    for name in (layer_names[0], layer_names[-1]):
        derived.state(1)[name] = (derived.state(1)[name] + 0.5).astype(
            np.float32
        )

    context.tracer.clear()
    set_id, save_measurement = measure_save(
        manager, derived, base_set_id=base_id
    )
    save_root = context.tracer.last_root
    recovered, recover_measurement = measure_recover(manager, set_id)
    recover_root = context.tracer.last_root

    print(
        f"U3 update cycle: {base_id} -> {set_id} "
        f"({args.models} models, workers={config.workers}, "
        f"replicas={config.replicas or 1})"
    )
    ok = _trace_report(
        f"save_set {set_id} (TTS {save_measurement.total_s:.6f}s = "
        f"{save_measurement.real_s:.6f}s real + "
        f"{save_measurement.simulated_s:.6f}s simulated)",
        save_root,
        save_measurement.simulated_s,
    )
    ok &= _trace_report(
        f"recover_set {set_id} (TTR {recover_measurement.total_s:.6f}s = "
        f"{recover_measurement.real_s:.6f}s real + "
        f"{recover_measurement.simulated_s:.6f}s simulated)",
        recover_root,
        recover_measurement.simulated_s,
    )
    if not recovered.equals(derived):
        print("MISMATCH: recovered set differs from the saved one")
        ok = False
    if config.observability.trace_path:
        path = write_trace_json(
            config.observability.trace_path,
            context.tracer.roots,
            meta={
                "workers": config.workers,
                "replicas": config.replicas or 1,
                "replica_down": bool(args.replica_down),
                "num_models": args.models,
            },
        )
        print(f"trace written to {path}")
    return 0 if ok else 1


# -- fleet (sharded) archives ---------------------------------------------------

#: Verbs that run once per shard and aggregate the worst exit code.
_FLEET_ITERATED = {"info", "lineage", "verify", "fsck", "scrub", "stats"}
#: Verbs addressed by set id, routed to the shard owning the set.
_FLEET_ROUTED = {"history", "compact", "export"}


def _fleet_shard_count(directory: str, config: ArchiveConfig) -> int:
    """Shards to open: detected layout, ``--shards``, or their agreement."""
    from repro.storage.persistent import detect_shards

    detected = detect_shards(directory)
    if config.shards is None:
        return detected
    num = int(config.shards)
    if detected and detected != num:
        raise ReproError(
            f"archive at {directory} has {detected} shard(s) but "
            f"--shards {num} was requested; resharding an existing fleet "
            "is not supported"
        )
    from pathlib import Path

    root = Path(directory)
    if not detected and ((root / "artifacts").is_dir() or (root / "documents").is_dir()):
        raise ReproError(
            f"{directory} holds a plain single archive; move its contents "
            "into shard-0/ to adopt the fleet layout (or drop --shards)"
        )
    return num


def _open_fleet_contexts(
    directory: str, indices: "list[int]", config: ArchiveConfig
) -> list[SaveContext]:
    """Open the given ``shard-<i>/`` contexts, with fleet observability.

    ``indices`` is normally ``range(num)``; a degraded fleet (some shard
    directory missing) passes only the present shards so the others are
    reported DOWN instead of being silently recreated empty.  Tracing
    shares one recorder across shards (concurrent fleet traces stay one
    stream); metrics register each shard's stats under a
    ``fleet_shard_<i>_`` prefix instead of the colliding single-archive
    names.
    """
    from pathlib import Path

    shard_config = config.with_(shards=None, observability=ObservabilityConfig())
    contexts = [
        open_context(str(Path(directory) / f"shard-{index}"), config=shard_config)
        for index in indices
    ]
    settings = config.observability
    if settings.tracing:
        from repro.observability.trace import TraceRecorder, install_tracing

        recorder = TraceRecorder()
        for context in contexts:
            install_tracing(context, recorder)
    if settings.metrics:
        from repro.observability.metrics import global_registry

        registry = global_registry()
        for index, context in zip(indices, contexts):
            registry.register_stats(
                f"fleet_shard_{index}_file_store", context.file_store.stats
            )
            registry.register_stats(
                f"fleet_shard_{index}_document_store",
                context.document_store.stats,
            )
            context.metrics = registry
    return contexts


def _owning_context(contexts: list[SaveContext], set_id: str) -> SaveContext:
    for context in contexts:
        if context.document_store.exists(SETS_COLLECTION, set_id):
            return context
    raise ReproError(
        f"set {set_id!r} not found on any of the {len(contexts)} shard(s)"
    )


def _cmd_fleet_gc(contexts: list[SaveContext], args: argparse.Namespace) -> int:
    """Fleet-wide retention: one policy decision, one pass per shard.

    ``--keep-last K`` keeps the newest K sets *across the whole fleet*
    (ids are fleet-ordered), compacting each shard's oldest kept set so
    no older ancestors need to survive — matching single-archive
    ``keep_last`` semantics shard by shard.
    """
    per_shard_ids = [
        context.document_store.collection_ids(SETS_COLLECTION)
        for context in contexts
    ]
    if args.keep_last is not None:
        if args.keep_last <= 0:
            raise ReproError("--keep-last must be positive")
        all_ids = sorted(set_id for ids in per_shard_ids for set_id in ids)
        keep = set(all_ids[-args.keep_last :])
    else:
        keep = set(args.keep or [])
    deleted: list[str] = []
    retained: list[str] = []
    chunks = 0
    reclaimed = 0
    for context, shard_ids in zip(contexts, per_shard_ids):
        retention = RetentionManager(context)
        shard_keep = [set_id for set_id in shard_ids if set_id in keep]
        if args.keep_last is not None and shard_keep:
            retention.compact(shard_keep[0])
        report = retention.collect(keep=shard_keep)
        deleted.extend(report.deleted_sets)
        retained.extend(report.retained_for_chains)
        chunks += report.chunks_reclaimed
        reclaimed += report.bytes_reclaimed
    print(f"deleted {len(deleted)} sets")
    for set_id in sorted(deleted):
        print(f"  - {set_id}")
    if retained:
        print(f"retained for recovery chains: {sorted(retained)}")
    if chunks:
        print(f"swept {chunks} zero-reference chunks")
    print(f"reclaimed {reclaimed:,} bytes")
    return 0


def _cmd_fleet_warm(contexts: list[SaveContext], args: argparse.Namespace) -> int:
    """Warm each set on the shard that owns it (``--all``: every shard)."""
    codes: list[int] = []
    if args.all:
        for index, context in enumerate(contexts):
            print(f"== shard-{index} ==")
            codes.append(_cmd_warm(context, args))
        return max(codes) if codes else 0
    routed: dict[int, tuple[SaveContext, list[str]]] = {}
    for set_id in args.set_ids:
        context = _owning_context(contexts, set_id)
        routed.setdefault(id(context), (context, []))[1].append(set_id)
    for context, set_ids in routed.values():
        shard_args = argparse.Namespace(**{**vars(args), "set_ids": set_ids})
        codes.append(_cmd_warm(context, shard_args))
    return max(codes) if codes else 0


def _cmd_deadletter(
    args: argparse.Namespace, config: ArchiveConfig, num: int
) -> int:
    """``deadletter list|replay|purge`` on a fleet's parked ingest batches.

    Exit codes follow the degraded-archive convention: 0 when nothing is
    pending (or everything replayed), 1 when entries remain parked,
    skipped, or failed, 2 on operational errors.
    """
    from pathlib import Path

    from repro.fleet.deadletter import DEADLETTER_DIR, DeadLetterStore

    if num <= 0:
        raise ReproError(
            "deadletter operates on fleet archives (no shard-<i>/ layout "
            f"found at {args.directory})"
        )
    root = Path(args.directory)
    store_dir = root / DEADLETTER_DIR
    if args.action == "list":
        if not store_dir.is_dir():
            print("0 dead-letter entries")
            return 0
        entries = DeadLetterStore(store_dir).entries(shard=args.shard)
        print(f"{len(entries)} dead-letter entries")
        for entry in entries:
            print(
                f"  {entry['id']}  shard={entry['shard']}  "
                f"root={entry['root']}  models={len(entry['models'])}  "
                f"updates={entry['updates']}  error={entry['error']}"
            )
        return 1 if entries else 0
    if args.action == "purge":
        if not store_dir.is_dir():
            print("purged 0 dead-letter entries")
            return 0
        count = DeadLetterStore(store_dir).purge(
            entry_ids=args.ids, shard=args.shard
        )
        print(f"purged {count} dead-letter entries")
        return 0
    # replay: re-submit parked batches through the normal ingest path so
    # lineage and byte-identity of the recovered chains are preserved.
    if not store_dir.is_dir():
        print("0 dead-letter entries to replay")
        return 0
    approach = args.approach
    if approach is None:
        shard_config = config.with_(
            shards=None, observability=ObservabilityConfig()
        )
        for index in range(num):
            shard_dir = root / f"shard-{index}"
            if not shard_dir.is_dir():
                continue
            approach = _detect_approach(
                open_context(str(shard_dir), config=shard_config)
            )
            if approach is not None:
                break
    if approach is None:
        raise ReproError(
            "could not detect the fleet's approach; pass --approach"
        )
    from repro.errors import IngestError
    from repro.fleet import FleetManager, IngestQueue

    fleet = FleetManager.open(args.directory, approach, config)
    if fleet.deadletter.count == 0:
        print("0 dead-letter entries to replay")
        return 0
    queue = IngestQueue(fleet, flush_max_updates=10**9, workers=0)
    try:
        summary = queue.replay_dead_letters(shard=args.shard)
    finally:
        try:
            queue.close()
        except IngestError:
            pass
    for entry_id in summary["replayed"]:
        print(f"replayed {entry_id}")
    for entry_id in summary["skipped"]:
        print(f"skipped {entry_id} (shard still down)")
    for failure in summary["failed"]:
        print(
            f"failed {failure['id']}: {failure['error']} "
            f"(re-parked as {', '.join(failure['reparked'])})"
        )
    print(
        f"replayed {len(summary['replayed'])} entries, "
        f"{len(summary['skipped'])} skipped, {len(summary['failed'])} failed"
    )
    return 0 if not summary["skipped"] and not summary["failed"] else 1


def _run_fleet(
    args: argparse.Namespace, config: ArchiveConfig, num: int, commands: dict
) -> int:
    from pathlib import Path

    command = args.command
    missing = [
        index
        for index in range(num)
        if not (Path(args.directory) / f"shard-{index}").is_dir()
    ]
    if missing and command not in _FLEET_ITERATED:
        names = ", ".join(f"shard-{index}" for index in missing)
        raise ReproError(
            f"fleet at {args.directory} is degraded: {names} missing; only "
            "per-shard inspection verbs (info/lineage/verify/fsck/scrub/"
            "stats) run against a degraded fleet — restore the missing "
            "shard directories first"
        )
    present = [index for index in range(num) if index not in missing]
    contexts = _open_fleet_contexts(args.directory, present, config)
    if command == "gc":
        result = _cmd_fleet_gc(contexts, args)
    elif command == "maintain":
        # Maintenance is inherently fleet-aware: one scheduler, one
        # retention decision, per-shard atomic passes.
        result = _maintain(contexts, args)
    elif command == "warm":
        result = _cmd_fleet_warm(contexts, args)
    elif command == "evict":
        # Eviction is fleet-wide: every shard drops its entries.
        codes = []
        for index, context in enumerate(contexts):
            print(f"== shard-{index} ==")
            codes.append(commands[command](context, args))
        result = max(codes) if codes else 0
    elif command == "stats" and getattr(args, "live", False):
        # The registry is process-wide; one export covers every shard.
        result = _cmd_stats(contexts[0], args)
    elif command in _FLEET_ITERATED:
        total_sets = sum(
            len(context.document_store.collection_ids(SETS_COLLECTION))
            for context in contexts
        )
        total_bytes = sum(context.total_bytes() for context in contexts)
        if command == "info":
            print(f"fleet: {num} shards")
            if missing:
                print(f"fleet shards DOWN: {len(missing)}")
            print(f"fleet sets: {total_sets}")
            print(f"fleet stored bytes: {total_bytes:,}")
        # A missing shard floors the exit at 1 (degraded, like a missing
        # replica) but never blocks inspecting the healthy shards.
        codes = [1] if missing else []
        by_index = dict(zip(present, contexts))
        for index in range(num):
            print(f"== shard-{index} ==")
            if index in by_index:
                codes.append(commands[command](by_index[index], args))
            else:
                print("DOWN: shard directory missing")
        result = max(codes) if codes else 0
    elif command in _FLEET_ROUTED:
        result = commands[command](_owning_context(contexts, args.set_id), args)
    elif command == "migrate":
        # Merge every shard into one target archive: fleet ids are
        # unique, so sequential per-shard migration cannot collide.
        codes = [commands[command](context, args) for context in contexts]
        result = max(codes) if codes else 0
    else:  # pragma: no cover - argparse restricts the verb set
        raise ReproError(f"command {command!r} does not support fleet archives")
    trace_path = config.observability.trace_path
    tracer = contexts[0].tracer if contexts else None
    if trace_path and tracer is not None and tracer.roots:
        from repro.observability import write_trace_json

        path = write_trace_json(
            trace_path,
            tracer.roots,
            meta={"command": args.command, "shards": num},
        )
        print(f"trace written to {path}")
    return result


# -- entry point --------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-archive", description="Operate a durable model archive."
    )
    parser.add_argument("directory", help="archive root directory")
    parser.add_argument(
        "--approach",
        default=None,
        help="override the auto-detected approach (needed for mixed archives)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallelism of the save/recover engine (1 serial, 0 = one "
        "lane per CPU); results are byte-identical at any setting",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition the archive across N independent shard subtrees "
        "operated as one fleet (default: auto-detect the existing "
        "shard-<i>/ topology)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=None,
        help="replicate the archive across N backend subtrees (default: "
        "auto-detect the existing topology); composes under sharding — "
        "each shard carries its own replicas",
    )
    parser.add_argument(
        "--write-quorum",
        type=int,
        default=None,
        help="replica acknowledgements a write needs (default: majority)",
    )
    parser.add_argument(
        "--read-quorum",
        type=int,
        default=None,
        help="replicas a consistent document read polls (default: N-W+1)",
    )
    parser.add_argument(
        "--profile",
        dest="profile_name",
        choices=sorted(PROFILES),
        default=None,
        help="simulated-latency hardware profile charged per store "
        "operation (default: local, which charges zero)",
    )
    parser.add_argument(
        "--dedup",
        action="store_true",
        help="route parameter writes through the content-addressed chunk "
        "layer",
    )
    parser.add_argument(
        "--no-journal",
        action="store_true",
        help="skip the write-ahead save journal (saves are no longer "
        "atomic under crashes)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry transiently failing store operations up to N times "
        "with exponential backoff",
    )
    parser.add_argument(
        "--serve-cache",
        action="store_true",
        help="serve reads through the tiered recovery cache (implied by "
        "the warm and evict verbs)",
    )
    parser.add_argument(
        "--set-cache-bytes",
        type=int,
        default=None,
        metavar="N",
        help="tier-1 budget: bytes of materialized model sets kept hot",
    )
    parser.add_argument(
        "--chunk-cache-bytes",
        type=int,
        default=None,
        metavar="N",
        help="tier-2 budget: bytes of decoded chunks shared across sets",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record hierarchical spans for whatever command runs",
    )
    parser.add_argument(
        "--trace-json",
        default=None,
        metavar="PATH",
        help="write the recorded trace as a schema-validated JSON "
        "document (implies --trace)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("info", help="summarize the archive")
    subparsers.add_parser("lineage", help="print the derivation chains")

    verify = subparsers.add_parser("verify", help="audit archive integrity")
    verify.add_argument(
        "--deep", action="store_true", help="also recover sets and recheck hashes"
    )

    fsck = subparsers.add_parser(
        "fsck", help="audit archive consistency (journal, orphans, refcounts)"
    )
    fsck.add_argument(
        "--deep",
        action="store_true",
        help="also re-hash every artifact and chunk against its checksum",
    )

    scrub = subparsers.add_parser(
        "scrub",
        help="anti-entropy pass: converge every replica onto the majority "
        "state and heal missing/corrupt copies",
    )
    scrub.add_argument(
        "--shallow",
        action="store_true",
        help="trust recorded digests instead of re-hashing every copy "
        "(misses torn writes)",
    )

    history = subparsers.add_parser("history", help="one model's drift over time")
    history.add_argument("set_id")
    history.add_argument("model_index", type=int)

    compact = subparsers.add_parser(
        "compact", help="rewrite a derived set as a full snapshot"
    )
    compact.add_argument("set_id")

    gc = subparsers.add_parser("gc", help="garbage-collect old sets")
    group = gc.add_mutually_exclusive_group(required=True)
    group.add_argument("--keep-last", type=int, default=None)
    group.add_argument("--keep", nargs="+", default=None, metavar="SET_ID")

    maintain = subparsers.add_parser(
        "maintain",
        help="run background-maintenance passes: retention GC, chunk "
        "sweep, and delta-chain compaction as one atomic journal txn "
        "per shard, then repair-queue draining and an anti-entropy "
        "scrub",
    )
    maintain.add_argument(
        "--cycles",
        type=int,
        default=1,
        metavar="N",
        help="maintenance passes to run (default: one)",
    )
    maintain.add_argument(
        "--keep-last",
        type=int,
        default=None,
        metavar="K",
        help="retention policy: keep the newest K sets fleet-wide "
        "(default: no GC)",
    )
    maintain.add_argument(
        "--compact-depth",
        type=int,
        default=None,
        metavar="D",
        help="compact kept delta chains at or beyond this recovery depth "
        "(default: only the retention policy's oldest-kept compaction)",
    )
    maintain.add_argument(
        "--no-scrub",
        action="store_true",
        help="skip the anti-entropy scrub passes",
    )
    maintain.add_argument(
        "--deep",
        action="store_true",
        help="re-hash every replica copy during the scrub (catches torn "
        "writes; default trusts recorded digests)",
    )

    export = subparsers.add_parser(
        "export", help="write models as a self-contained deployment bundle"
    )
    export.add_argument("set_id")
    export.add_argument("output_dir")
    export.add_argument(
        "--models", nargs="+", type=int, default=None, metavar="INDEX"
    )
    export.add_argument(
        "--salvage",
        action="store_true",
        help="tolerate corruption: export every model that still verifies "
        "and record the skipped ones in the manifest",
    )

    migrate = subparsers.add_parser(
        "migrate", help="re-encode the archive under another approach"
    )
    migrate.add_argument("target_dir")
    migrate.add_argument(
        "--target-approach",
        default="update",
        choices=[n for n in sorted(APPROACHES) if n != "provenance"],
    )
    migrate.add_argument(
        "--dedup",
        action="store_true",
        help="store the target archive through the content-addressed "
        "chunk layer (identical layer tensors stored once)",
    )

    warm = subparsers.add_parser(
        "warm", help="pre-materialize sets into the serving cache"
    )
    warm.add_argument("set_ids", nargs="*", metavar="SET_ID")
    warm.add_argument(
        "--all", action="store_true", help="warm every set in the archive"
    )

    evict = subparsers.add_parser(
        "evict", help="drop serving-cache entries"
    )
    evict.add_argument(
        "set_ids",
        nargs="*",
        metavar="SET_ID",
        help="sets to drop from tier 1 (default: all of them)",
    )
    evict.add_argument(
        "--chunks",
        action="store_true",
        help="also empty the tier-2 decoded-chunk cache",
    )

    stats = subparsers.add_parser(
        "stats", help="storage accounting and metrics-registry export"
    )
    stats.add_argument(
        "--live",
        action="store_true",
        help="export through the process-wide metrics registry instead "
        "of printing a static storage summary",
    )
    stats.add_argument(
        "--format",
        choices=["human", "json", "prometheus"],
        default="human",
        help="registry export format for --live",
    )

    deadletter = subparsers.add_parser(
        "deadletter",
        help="inspect, replay, or purge dead-lettered ingest batches "
        "(fleet archives only)",
    )
    deadletter.add_argument(
        "action",
        choices=["list", "replay", "purge"],
        help="list parked batches, replay them through the normal ingest "
        "path, or drop them",
    )
    deadletter.add_argument(
        "--shard",
        type=int,
        default=None,
        metavar="I",
        help="restrict to entries parked for shard I",
    )
    deadletter.add_argument(
        "--ids",
        nargs="+",
        default=None,
        metavar="ENTRY_ID",
        help="purge only these entry ids",
    )

    trace = subparsers.add_parser(
        "trace",
        help="run a traced synthetic U3 update cycle in memory and print "
        "the span tree (the archive directory is not touched)",
    )
    trace.add_argument(
        "--models",
        type=int,
        default=4,
        metavar="N",
        help="models in the synthetic set",
    )
    trace.add_argument(
        "--replica-down",
        action="store_true",
        help="take the last replica down for the whole cycle (needs "
        "--replicas >= 2) to show degraded-mode traces",
    )

    args = parser.parse_args(argv)
    if args.command == "trace":
        try:
            return _cmd_trace(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    commands = {
        "info": _cmd_info,
        "lineage": _cmd_lineage,
        "verify": _cmd_verify,
        "fsck": _cmd_fsck,
        "scrub": _cmd_scrub,
        "history": _cmd_history,
        "compact": _cmd_compact,
        "gc": _cmd_gc,
        "export": _cmd_export,
        "migrate": _cmd_migrate,
        "stats": _cmd_stats,
        "warm": _cmd_warm,
        "evict": _cmd_evict,
        "maintain": _cmd_maintain,
    }
    try:
        config = config_from_args(args)
        num_shards = _fleet_shard_count(args.directory, config)
        if args.command == "deadletter":
            return _cmd_deadletter(args, config, num_shards)
        if num_shards > 0:
            return _run_fleet(args, config, num_shards, commands)
        context = open_context(args.directory, config=config)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        result = commands[args.command](context, args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trace_path = context.config.observability.trace_path if context.config else None
    if trace_path and context.tracer is not None and context.tracer.roots:
        from repro.observability import write_trace_json

        path = write_trace_json(
            trace_path, context.tracer.roots, meta={"command": args.command}
        )
        print(f"trace written to {path}")
    return result


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
