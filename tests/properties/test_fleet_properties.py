"""Property-based tests over the fleet engine: routing stability and
the shards=1 byte-identity guarantee against the plain manager."""

import hashlib
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ArchiveConfig
from repro.core.manager import MultiModelManager
from repro.core.model_set import ModelSet
from repro.fleet import FleetManager, shard_for

set_ids = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=40,
)

#: A save script: each entry is None for an initial save, or an index
#: into the earlier saves to derive from (taken modulo position).
save_scripts = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=30)),
    min_size=1,
    max_size=6,
)


def digest_dir(root: Path) -> str:
    """Content digest over every file: relative path + exact bytes."""
    acc = hashlib.sha256()
    for path in sorted(root.rglob("*")):
        if path.is_file():
            acc.update(str(path.relative_to(root)).encode())
            acc.update(b"\0")
            acc.update(path.read_bytes())
            acc.update(b"\0")
    return acc.hexdigest()


def build_sets():
    base = ModelSet.build("FFNN-48", num_models=2, seed=7)
    variant = base.copy()
    for name in variant.states[0]:
        variant.states[0][name] = (variant.states[0][name] * 1.5).astype(
            variant.states[0][name].dtype
        )
    return base, variant


def run_script(save, script, base, variant):
    ids = []
    for op in script:
        if op is None or not ids:
            ids.append(save(base, None))
        else:
            ids.append(save(variant, ids[op % len(ids)]))
    return ids


class TestRoutingStability:
    @given(set_id=set_ids, shards=st.integers(min_value=1, max_value=64))
    @settings(max_examples=200, deadline=None)
    def test_shard_for_is_pure_and_in_range(self, set_id, shards):
        first = shard_for(set_id, shards)
        assert first == shard_for(set_id, shards)  # no hidden state
        assert 0 <= first < shards
        # Documented definition: first 8 bytes of sha256, big-endian.
        digest = hashlib.sha256(set_id.encode("utf-8")).digest()
        assert first == int.from_bytes(digest[:8], "big") % shards

    @given(script=save_scripts, shards=st.integers(min_value=1, max_value=4))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_placement_survives_reopen(self, script, shards):
        base, variant = build_sets()
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "fleet"
            fleet = FleetManager.open(root, "update", ArchiveConfig(shards=shards))
            ids = run_script(
                lambda ms, b: fleet.save_set(ms, base_set_id=b),
                script,
                base,
                variant,
            )
            placement = {set_id: fleet.shard_of(set_id) for set_id in ids}

            reopened = FleetManager.open(root, "update")
            assert reopened.num_shards == shards
            assert {s: reopened.shard_of(s) for s in ids} == placement
            # Derived chains resolve to the same roots after reopen.
            for set_id in ids:
                assert reopened.root_of(set_id) == fleet.root_of(set_id)
                assert reopened.recover_set(set_id) is not None


class TestSingleShardIdentity:
    @given(script=save_scripts)
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_shards_1_fleet_is_byte_identical_to_plain_manager(self, script):
        """A one-shard fleet must be a transparent wrapper: the same save
        sequence yields bit-identical archive bytes under ``shard-0/``."""
        base, variant = build_sets()
        with tempfile.TemporaryDirectory() as tmp:
            plain_root = Path(tmp) / "plain"
            fleet_root = Path(tmp) / "fleet"
            # registry=False: a fleet keeps its catalog at the fleet root
            # (outside shard-0/), so the byte-identity invariant covers
            # the data plane — compare against a catalog-less plain archive.
            plain = MultiModelManager.open(
                str(plain_root), "update", ArchiveConfig(registry=False)
            )
            fleet = FleetManager.open(
                fleet_root, "update", ArchiveConfig(shards=1)
            )
            plain_ids = run_script(
                lambda ms, b: plain.save_set(ms, base_set_id=b),
                script,
                base,
                variant,
            )
            fleet_ids = run_script(
                lambda ms, b: fleet.save_set(ms, base_set_id=b),
                script,
                base,
                variant,
            )
            assert fleet_ids == plain_ids  # same id sequence
            assert digest_dir(fleet_root / "shard-0") == digest_dir(plain_root)
