"""Tests for the battery and synthetic-CIFAR datasets."""

import numpy as np
import pytest

from repro.architectures.cifar import CIFAR_INPUT_SHAPE, CIFAR_NUM_CLASSES
from repro.battery.datagen import CellDataConfig
from repro.datasets.battery import BatteryCellDataset, battery_dataset_ref
from repro.datasets.synthetic_cifar import SyntheticCifarDataset, cifar_dataset_ref


@pytest.fixture(scope="module")
def config():
    return CellDataConfig(seed=2, samples_per_cell=96, cycle_duration_s=96)


class TestBatteryCellDataset:
    def test_features_and_targets_standardized(self, config):
        dataset = BatteryCellDataset(0, 0, config)
        inputs, targets = dataset.arrays()
        assert np.allclose(inputs.mean(axis=0), 0.0, atol=1e-4)
        assert np.allclose(targets.mean(), 0.0, atol=1e-4)
        assert np.allclose(targets.std(), 1.0, atol=1e-3)

    def test_voltage_from_normalized_roundtrip(self, config):
        dataset = BatteryCellDataset(0, 0, config)
        _inputs, targets = dataset.arrays()
        volts = dataset.voltage_from_normalized(targets)
        assert 2.5 < volts.mean() < 4.5

    def test_deterministic_construction(self, config):
        a = BatteryCellDataset(1, 2, config)
        b = BatteryCellDataset(1, 2, config)
        assert np.array_equal(a.inputs, b.inputs)
        assert np.array_equal(a.targets, b.targets)

    def test_ref_json_fully_determines_dataset(self, config):
        from repro.datasets.battery import resolve_battery_ref
        from repro.datasets.registry import DatasetRef

        ref = battery_dataset_ref(3, 1, config)
        rebuilt = resolve_battery_ref(DatasetRef.from_json(ref.to_json()).params)
        direct = BatteryCellDataset(3, 1, config)
        assert np.array_equal(rebuilt.inputs, direct.inputs)
        assert np.array_equal(rebuilt.targets, direct.targets)

    def test_ref_is_compact(self, config):
        # Provenance saves one reference per model — the paper's storage
        # win requires them to be tiny compared to the 20 KB of params.
        ref = battery_dataset_ref(4999, 3, config)
        assert len(ref.canonical()) < 300


class TestSyntheticCifar:
    def test_geometry_and_labels(self):
        dataset = SyntheticCifarDataset(num_samples=32, seed=0)
        assert dataset.inputs.shape == (32, *CIFAR_INPUT_SHAPE)
        assert dataset.targets.shape == (32,)
        assert dataset.targets.min() >= 0
        assert dataset.targets.max() < CIFAR_NUM_CLASSES

    def test_pixels_in_unit_range(self):
        dataset = SyntheticCifarDataset(num_samples=16, seed=0)
        assert dataset.inputs.min() >= 0.0
        assert dataset.inputs.max() <= 1.0

    def test_deterministic_per_seed(self):
        a = SyntheticCifarDataset(num_samples=8, seed=5)
        b = SyntheticCifarDataset(num_samples=8, seed=5)
        assert np.array_equal(a.inputs, b.inputs)
        assert np.array_equal(a.targets, b.targets)

    def test_seeds_differ(self):
        a = SyntheticCifarDataset(num_samples=8, seed=1)
        b = SyntheticCifarDataset(num_samples=8, seed=2)
        assert not np.array_equal(a.inputs, b.inputs)

    def test_rejects_nonpositive_samples(self):
        with pytest.raises(ValueError):
            SyntheticCifarDataset(num_samples=0)

    def test_classes_are_learnable(self):
        # A CNN trained briefly must beat random guessing by a wide
        # margin — the classes carry real structure.
        from repro.architectures import build_cifar_cnn
        from repro.datasets.base import DataLoader
        from repro.nn import Adam, CrossEntropyLoss
        from repro.nn.functional import accuracy, predict

        train = SyntheticCifarDataset(num_samples=192, seed=0)
        test = SyntheticCifarDataset(num_samples=96, seed=1)
        model = build_cifar_cnn(rng=np.random.default_rng(0))
        loss = CrossEntropyLoss()
        optimizer = Adam(model, lr=3e-3)
        loader = DataLoader(train, batch_size=32, seed=0)
        for _epoch in range(10):
            for inputs, targets in loader:
                value = loss(model(inputs), targets.reshape(-1))
                model.zero_grad()
                model.backward(loss.backward())
                optimizer.step()
        test_x, test_y = test.arrays()
        # Fully seeded run; well above the 0.10 random-guess rate.
        assert accuracy(predict(model, test_x), test_y) > 0.45

    def test_ref_roundtrip(self):
        from repro.datasets.registry import DatasetRef
        from repro.datasets.synthetic_cifar import resolve_cifar_ref

        ref = cifar_dataset_ref(num_samples=8, seed=3)
        rebuilt = resolve_cifar_ref(DatasetRef.from_json(ref.to_json()).params)
        direct = SyntheticCifarDataset(num_samples=8, seed=3)
        assert np.array_equal(rebuilt.inputs, direct.inputs)
